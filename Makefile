# Convenience targets for the same/different fault dictionary reproduction.

PYTHON ?= python

.PHONY: install test bench bench-report profile table6 examples full-sweep clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ -s

bench-report:
	$(PYTHON) tools/bench_report.py

profile:
	$(PYTHON) tools/profile_hotpaths.py

table6:
	$(PYTHON) examples/reproduce_table6.py

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/custom_circuit.py
	$(PYTHON) examples/sequential_dictionary.py
	$(PYTHON) examples/diagnose_failing_chip.py
	$(PYTHON) examples/dictionary_tradeoffs.py

full-sweep:
	REPRO_FULL_SWEEP=1 $(PYTHON) examples/reproduce_table6.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
