"""Shared benchmark configuration: the sweep and the ``bench`` recorder.

Every suite takes the module-scoped ``bench`` fixture — a
:class:`repro.obs.BenchRecorder` — and records its measurements through
``bench.case(...)``.  At module teardown the recorder writes
``BENCH_<area>.json`` (area = the suite filename minus ``test_``) into
``$REPRO_BENCH_OUT`` (default: the current directory), which is what
``tools/bench_report.py`` diffs against ``benchmarks/baselines/``.

The Table 6 benches sweep ``DEFAULT_CIRCUITS`` by default; set
``REPRO_FULL_SWEEP=1`` to include the large proxies (p641 … p9234) as the
paper does, or ``REPRO_BENCH_QUICK=1`` (the CI setting) to shrink every
suite to a seconds-sized run.  Test-set generation per (circuit, type)
cell is cached within the pytest process, so each cell's generation cost
is paid once even though several benches touch it.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import DEFAULT_CIRCUITS, EXTENDED_CIRCUITS
from repro.obs import BenchRecorder

from benchmarks.util import full_sweep, quick_mode


def sweep_circuits():
    if quick_mode():
        return [DEFAULT_CIRCUITS[0]]
    circuits = list(DEFAULT_CIRCUITS)
    if full_sweep():
        circuits += list(EXTENDED_CIRCUITS)
    return circuits


def bench_area(module_name: str) -> str:
    """``benchmarks.test_kernel_speedup`` -> ``kernel_speedup``."""
    name = module_name.rsplit(".", 1)[-1]
    if name.startswith("test_"):
        name = name[len("test_"):]
    return name


def bench_out_dir() -> Path:
    return Path(os.environ.get("REPRO_BENCH_OUT", "."))


@pytest.fixture(scope="module")
def bench(request):
    """The suite's :class:`BenchRecorder`; emits BENCH_<area>.json."""
    recorder = BenchRecorder(
        bench_area(request.module.__name__), quick=quick_mode()
    )
    yield recorder
    if len(recorder):  # all-skipped modules leave no (empty) result behind
        recorder.write(bench_out_dir())


@pytest.fixture(scope="session")
def table6_rows():
    """Accumulator: benches append their Table6Row here; the final
    rendering bench prints the assembled table."""
    return []
