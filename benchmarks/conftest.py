"""Shared benchmark configuration.

The Table 6 benches sweep ``DEFAULT_CIRCUITS`` by default; set
``REPRO_FULL_SWEEP=1`` to include the large proxies (p641 … p9234) as the
paper does.  Test-set generation per (circuit, type) cell is cached within
the pytest process, so each cell's generation cost is paid once even
though several benches touch it.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import DEFAULT_CIRCUITS, EXTENDED_CIRCUITS


def sweep_circuits():
    circuits = list(DEFAULT_CIRCUITS)
    if os.environ.get("REPRO_FULL_SWEEP"):
        circuits += list(EXTENDED_CIRCUITS)
    return circuits


@pytest.fixture(scope="session")
def table6_rows():
    """Accumulator: benches append their Table6Row here; the final
    rendering bench prints the assembled table."""
    return []
