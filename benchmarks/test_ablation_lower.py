"""Ablation bench E7: the LOWER early-termination constant.

Benchmarks one Procedure 1 call at several LOWER values and records the
resolution each achieves — quantifying the paper's observation that the
best dist(z) appears among the first few candidates of Z_j.
"""

import pytest

from repro.api import DictionaryConfig
from repro.dictionaries import select_baselines
from repro.experiments.table6 import response_table_for

LOWERS = (1, 5, 10, 10**9)


@pytest.mark.parametrize("lower", LOWERS)
def test_lower_cutoff(bench, lower):
    _, table = response_table_for("p208", "diag", seed=0)
    label = lower if lower < 10**9 else "inf"
    case = bench.case(f"lower_cutoff[{label}]", LOWER=label)

    _, _, distinguished = case.run(
        lambda: select_baselines(table, config=DictionaryConfig(lower=lower))
    )
    case.info(distinguished=distinguished)


def test_lower_cutoff_costs_little_resolution(bench):
    _, table = response_table_for("p208", "diag", seed=0)
    _, _, with_cutoff = select_baselines(table, config=DictionaryConfig(lower=10))
    _, _, exhaustive = select_baselines(
        table, config=DictionaryConfig(lower=10**9)
    )
    bench.case("cutoff_resolution_cost").info(
        with_cutoff=with_cutoff, exhaustive=exhaustive
    )
    assert with_cutoff >= 0.98 * exhaustive
