"""Ablation bench E10: mixed fault-free/baseline storage (Section 2 remark)."""

from benchmarks.util import build_sd
from repro.experiments.table6 import response_table_for


def test_mixed_storage_accounting(bench):
    _, table = response_table_for("p208", "diag", seed=0)
    case = bench.case("mixed_storage")

    dictionary, _ = case.run(lambda: build_sd(table, calls=20, seed=0))
    from repro.sim import PASS

    fault_free = sum(1 for b in dictionary.baselines if b == PASS)
    case.info(
        plain_bits=dictionary.size_bits,
        mixed_bits=dictionary.mixed_size_bits(),
        fault_free_baselines=fault_free,
        tests=table.n_tests,
    )
    assert dictionary.mixed_size_bits() <= dictionary.size_bits + table.n_tests
