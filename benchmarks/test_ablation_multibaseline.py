"""Ablation bench E9: several baseline vectors per test (Section 2 remark)."""

import pytest

from repro.dictionaries import add_secondary_baselines
from benchmarks.util import build_sd
from repro.experiments.table6 import response_table_for


@pytest.mark.parametrize("extra", (1, 2))
def test_secondary_baselines(bench, extra):
    _, table = response_table_for("p208", "diag", seed=0)
    single, _ = build_sd(table, calls=20, seed=0)
    case = bench.case(f"secondary_baselines[{extra}]", extra=extra)

    multi = case.run(
        lambda: add_secondary_baselines(table, single, extra_per_test=extra)
    )
    case.info(
        baselines_per_test=1 + extra,
        size_bits=multi.size_bits,
        indistinguished=multi.indistinguished_pairs(),
        single_baseline_indistinguished=single.indistinguished_pairs(),
    )
    assert multi.indistinguished_pairs() <= single.indistinguished_pairs()
