"""Ablation bench E8: the Procedure 1 random-restart budget (CALLS1)."""

import pytest

from benchmarks.util import build_sd
from repro.experiments.table6 import response_table_for

BUDGETS = (1, 5, 20, 100)


@pytest.mark.parametrize("calls", BUDGETS)
def test_restart_budget(bench, calls):
    _, table = response_table_for("p208", "diag", seed=0)
    case = bench.case(f"restart_budget[{calls}]", CALLS1=calls)

    _, report = case.run(
        lambda: build_sd(table, calls=calls, replace=False, seed=0)
    )
    case.info(
        distinguished=report.distinguished_procedure1,
        calls_run=report.procedure1_calls,
    )


def test_restarts_monotone():
    _, table = response_table_for("p208", "diag", seed=0)
    results = [
        build_sd(table, calls=calls, replace=False, seed=0)[1]
        for calls in BUDGETS
    ]
    values = [r.distinguished_procedure1 for r in results]
    assert values == sorted(values)
