"""Benchmark for the build cache: cached rebuild vs cold build.

The build→serve split exists so the expensive part — fault simulation
plus Procedures 1/2 — runs once.  This bench measures the claim: a
second ``api.build`` with the same inputs and ``cache_dir`` must come
back at least 10× faster than the cold build, because all it does is
read and validate one artifact.

The cold build here enters through the ``netlist`` path so the cache hit
skips the fault simulation too (the table path would hide that saving).
Rounds keep the per-side minimum like the kernel bench; the cold side is
re-run against a fresh cache directory each round so it never
accidentally warms itself.  ``REPRO_BENCH_QUICK=1`` (the CI setting)
drops to p208/diag with fewer restarts; full mode uses the paper's cell
sizes on p298 as well.
"""

from __future__ import annotations

import math

from benchmarks.util import pick
from repro.api import DictionaryConfig, build
from repro.experiments.table6 import prepared_experiment
from repro.faults import collapse
from repro.obs import scoped_registry

ROUNDS = pick(3, 2)
#: Enough restarts that the cold build does representative Procedure 1
#: work; the cached side is a constant-time artifact load either way.
CALLS = pick(50, 25)
CELLS = pick([("p208", "diag"), ("p298", "diag")], [("p208", "diag")])
MIN_SPEEDUP = 10.0


def _inputs(circuit, ttype):
    netlist, tests = prepared_experiment(circuit, ttype, 0)
    faults = collapse(netlist)
    return netlist, faults, tests


def test_cached_rebuild_speedup(bench, tmp_path):
    for circuit, ttype in CELLS:
        netlist, faults, tests = _inputs(circuit, ttype)
        config = DictionaryConfig(seed=0, calls1=CALLS)
        cold_case = bench.case(f"cold[{circuit}-{ttype}]", circuit=circuit,
                               ttype=ttype, calls1=CALLS)
        warm_case = bench.case(f"cached[{circuit}-{ttype}]", circuit=circuit,
                               ttype=ttype, calls1=CALLS)

        for round_no in range(ROUNDS):
            cache_dir = tmp_path / f"{circuit}-{ttype}-{round_no}"
            with cold_case.measure():
                cold = build(
                    netlist=netlist, faults=faults, tests=tests,
                    config=config, cache_dir=cache_dir,
                )

            with scoped_registry() as registry:
                with warm_case.measure():
                    warm = build(
                        netlist=netlist, faults=faults, tests=tests,
                        config=config, cache_dir=cache_dir,
                    )
                # The warm build must be a pure artifact load.
                assert registry.counter("faultsim.faults_simulated").value == 0
                assert registry.counter("store.cache_hits").value == 1
            assert warm.dictionary.baselines == cold.dictionary.baselines

        cold_best = cold_case.wall_seconds
        warm_best = warm_case.wall_seconds
        ratio = cold_best / warm_best if warm_best else math.inf
        warm_case.gate("speedup_vs_cold", ratio, higher_is_better=True,
                       tolerance=0.5)
        print(
            f"\n[artifact-bench] {circuit} {ttype}: cold={cold_best * 1e3:.1f}ms "
            f"cached={warm_best * 1e3:.1f}ms speedup={ratio:.1f}x "
            f"(calls1={CALLS})"
        )
        assert ratio >= MIN_SPEEDUP, (
            f"{circuit} {ttype}: cached rebuild only {ratio:.1f}x faster than "
            f"cold build (floor {MIN_SPEEDUP}x)"
        )


def test_artifact_load_does_not_recompute_interning(tmp_path):
    """The stored interned view must be adopted, not re-derived."""
    netlist, faults, tests = _inputs(*CELLS[0])
    config = DictionaryConfig(seed=0, calls1=CALLS)
    cache_dir = tmp_path / "intern-check"
    build(netlist=netlist, faults=faults, tests=tests, config=config,
          cache_dir=cache_dir)
    with scoped_registry() as registry:
        warm = build(netlist=netlist, faults=faults, tests=tests,
                     config=config, cache_dir=cache_dir)
        warm.table.interned  # would pack a table if one were missing
        assert registry.counter("kernel.tables_packed").value == 0
