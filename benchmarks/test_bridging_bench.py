"""Benchmark E14: diagnosing bridging defects with stuck-at dictionaries.

The experiment of the paper's reference [7] (Millman/McCluskey/Acken):
inject wired-AND/OR bridging defects — which the stuck-at dictionaries do
NOT model — and check how often the ranked candidates point at one of the
bridged nets.  Records per-policy hit rates for the full dictionary's
response data via the matching module.
"""

import pytest

from benchmarks.util import pick
from repro.diagnosis import observe_defect
from repro.diagnosis.matching import Policy, rank_candidates
from repro.experiments.table6 import response_table_for
from repro.faults.bridging import enumerate_bridges, inject_bridge

SAMPLE = pick(20, 8)


@pytest.mark.parametrize("policy", list(Policy))
def test_bridging_diagnosis(bench, policy):
    netlist, table = response_table_for("p208", "diag", seed=0)
    bridges = enumerate_bridges(netlist, count=SAMPLE, seed=7)
    case = bench.case(f"bridging[{policy.value}]", policy=policy.value)

    def run():
        hits = 0
        diagnosable = 0
        for bridge in bridges:
            defective = inject_bridge(netlist, bridge)
            if defective.outputs != netlist.outputs:
                continue  # PI-as-PO corner: interface changed, skip
            observed = observe_defect(netlist, defective, table.tests)
            if not any(tuple(sig) for sig in observed):
                continue  # bridge not excited by this test set
            diagnosable += 1
            ranked = rank_candidates(table, observed, policy=policy, limit=10)
            nets = {bridge.net_a, bridge.net_b}
            if any(fault.line in nets for fault, _ in ranked):
                hits += 1
        return hits, diagnosable

    hits, diagnosable = case.run(run)
    case.iterations(SAMPLE)
    case.info(
        bridges_injected=SAMPLE,
        bridges_excited=diagnosable,
        top10_net_hits=hits,
    )
    if diagnosable:
        # Stuck-at dictionaries must localise a reasonable share of
        # bridges (ref [7]'s premise).
        assert hits >= diagnosable // 3
