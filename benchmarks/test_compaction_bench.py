"""Ablation bench E13: dictionaries under output response compaction.

Section 2: "If test response compaction is used, the number of outputs
will be significantly smaller" — which shrinks the same/different
dictionary's k·m overhead.  This bench builds the p208 dictionaries with
the outputs compacted to parity signatures of several widths and records
the size/resolution trade-off.
"""

import pytest

from repro.circuit.compactor import parity_compactor
from repro.dictionaries import (
    DictionarySizes,
    FullDictionary,
    PassFailDictionary,
)
from benchmarks.util import build_sd
from repro.experiments.table6 import prepared_experiment
from repro.faults import collapse
from repro.sim import FaultSimulator, ResponseTable

WIDTHS = (4, 2, 1)


@pytest.mark.parametrize("width", WIDTHS)
def test_compacted_dictionary(bench, width):
    netlist, tests = prepared_experiment("p208", "diag", 0)
    compacted = parity_compactor(netlist, width)
    faults = collapse(netlist)
    case = bench.case(f"compaction[{width}]", signature_width=width)

    def build():
        simulator = FaultSimulator(compacted, tests)
        detected = [f for f in faults if simulator.detection_word(f)]
        table = ResponseTable.build(compacted, detected, tests)
        samediff, _ = build_sd(table, calls=20, seed=0)
        return table, samediff

    table, samediff = case.run(build)
    sizes = DictionarySizes.of(table)
    case.info(
        faults_detected=table.n_faults,
        size_full=sizes.full,
        size_sd=sizes.same_different,
        ind_full=FullDictionary(table).indistinguished_pairs(),
        ind_pf=PassFailDictionary(table).indistinguished_pairs(),
        ind_sd=samediff.indistinguished_pairs(),
    )
    # The organisational ordering survives compaction.
    assert (
        FullDictionary(table).indistinguished_pairs()
        <= samediff.indistinguished_pairs()
        <= PassFailDictionary(table).indistinguished_pairs()
    )
