"""Benchmark for the asyncio daemon: sustained RPS and tail latency.

The daemon's claim is that the HTTP front end adds a bounded, small cost
over the in-process serve layer: a handful of persistent keep-alive
clients must sustain at least ``MIN_RPS`` requests per second against a
warm artifact over a real localhost socket, with a p99 latency below
``MAX_P99_MS``.

Every response is cross-checked against a directly-constructed
``Diagnoser`` on the same build before any timing is trusted, so the
numbers can never come from a daemon that is fast because it is wrong.
``REPRO_BENCH_QUICK=1`` (the CI setting) shrinks the request count;
per-round minimum over ``ROUNDS`` keeps the usual noise discipline.
"""

from __future__ import annotations

import http.client
import json
import math
import threading
import time

import pytest

from benchmarks.util import pick
from repro.api import DictionaryConfig, build
from repro.diagnosis.engine import Diagnoser
from repro.experiments.table6 import response_table_for
from repro.serve import ServeConfig
from repro.serve.daemon import DaemonConfig, start_in_thread
from repro.store import save_artifact

ROUNDS = pick(3, 2)
REQUESTS = pick(240, 48)
CLIENTS = pick(4, 2)
CALLS = 5
#: Sustained-throughput floor (requests/second) and tail-latency ceiling
#: for the hard asserts below; the recorded gates track the real numbers
#: against the committed baseline with their own tolerances.
MIN_RPS = 40.0
MAX_P99_MS = 250.0


@pytest.fixture(scope="module")
def daemon_cell(tmp_path_factory):
    """A packed p208 cell plus a running daemon warmed on it."""
    _, table = response_table_for("p208", "diag", 0)
    built = build(table, config=DictionaryConfig(seed=0, calls1=CALLS))
    path = tmp_path_factory.mktemp("daemon-bench") / "p208.rfd"
    save_artifact(built, path)
    handle = start_in_thread(DaemonConfig(
        port=0,
        default_artifact=str(path),
        serve=ServeConfig(workers=4, pool_size=2),
        max_inflight=2 * CLIENTS,
    ))
    try:
        yield handle, built
    finally:
        handle.stop()


def payloads(built):
    """Pre-encoded request bodies: fault-mode lookups over the catalogue."""
    n_faults = built.table.n_faults
    bodies = []
    for i in range(REQUESTS):
        name = str(built.table.faults[(i * 13) % n_faults])
        bodies.append((name, json.dumps(
            {"id": f"r{i}", "fault": name}
        ).encode("ascii")))
    return bodies


def drive(handle, bodies):
    """One sustained round: ``CLIENTS`` persistent keep-alive connections.

    Each client thread owns one ``http.client.HTTPConnection`` and posts
    its share of ``bodies`` back to back.  Returns the merged per-request
    latencies (seconds) and ``(fault, code, exact)`` result rows.
    """
    latencies = [[] for _ in range(CLIENTS)]
    results = [[] for _ in range(CLIENTS)]
    errors = []

    def client(slot):
        conn = http.client.HTTPConnection(
            handle.host, handle.port, timeout=30
        )
        try:
            for name, body in bodies[slot::CLIENTS]:
                begin = time.perf_counter()
                conn.request("POST", "/v1/diagnose", body=body)
                response = conn.getresponse()
                doc = json.loads(response.read().decode("utf-8"))
                latencies[slot].append(time.perf_counter() - begin)
                if response.status != 200:
                    raise AssertionError(f"HTTP {response.status}: {doc}")
                results[slot].append((name, doc["code"], doc["exact"]))
        except BaseException as exc:  # surfaced to the caller below
            errors.append(exc)
        finally:
            conn.close()

    threads = [
        threading.Thread(target=client, args=(slot,))
        for slot in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return (
        [sample for per_client in latencies for sample in per_client],
        [row for per_client in results for row in per_client],
    )


def p99_ms(latencies):
    ordered = sorted(latencies)
    index = max(0, math.ceil(0.99 * len(ordered)) - 1)
    return ordered[index] * 1e3


def test_daemon_sustained_throughput(bench, daemon_cell):
    handle, built = daemon_cell
    bodies = payloads(built)

    # Correctness before speed: every response over the socket must equal
    # the direct in-memory diagnosis for its injected fault.
    diagnoser = Diagnoser(built.dictionary)
    names = [str(f) for f in built.table.faults]
    _, rows = drive(handle, bodies)  # also warms the pool for the timing
    assert len(rows) == REQUESTS
    for name, code, exact in rows:
        assert code == "ok", (name, code)
        want = diagnoser.diagnose(
            list(built.table.full_row(names.index(name))), limit=10
        )
        assert exact == [str(f) for f in want.exact], name

    case = bench.case("daemon_sustained", requests=REQUESTS, clients=CLIENTS)
    case.iterations(REQUESTS)
    best_p99 = math.inf
    for _ in range(ROUNDS):
        with case.measure():
            latencies, rows = drive(handle, bodies)
        assert all(code == "ok" for _, code, _ in rows)
        best_p99 = min(best_p99, p99_ms(latencies))

    wall = case.wall_seconds
    rps = REQUESTS / wall if wall else math.inf
    case.info(p99_ms=round(best_p99, 2))
    case.gate("rps", rps, higher_is_better=True, tolerance=0.6)
    case.gate("p99_ms", best_p99, higher_is_better=False, tolerance=1.5)
    print(
        f"\n[daemon-bench] p208 diag x{REQUESTS} over {CLIENTS} clients: "
        f"wall={wall * 1e3:.1f}ms rps={rps:.0f} p99={best_p99:.1f}ms"
    )
    assert rps >= MIN_RPS, (
        f"daemon sustained only {rps:.0f} req/s (floor {MIN_RPS})"
    )
    assert best_p99 <= MAX_P99_MS, (
        f"daemon p99 {best_p99:.1f}ms above ceiling {MAX_P99_MS}ms"
    )
