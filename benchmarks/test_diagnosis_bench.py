"""Benchmark E11: diagnosis quality downstream of dictionary resolution.

Runs defect-injection campaigns against all three dictionaries and records
the realized candidate-set sizes — the practical payoff of the resolution
numbers in Table 6.
"""

import pytest

from benchmarks.util import build_sd, pick
from repro.diagnosis import single_fault_campaign
from repro.dictionaries import FullDictionary, PassFailDictionary
from repro.experiments.table6 import response_table_for

SAMPLE = pick(30, 12)


@pytest.fixture(scope="module")
def setup():
    netlist, table = response_table_for("p208", "diag", seed=0)
    samediff, _ = build_sd(table, calls=20, seed=0)
    dictionaries = [FullDictionary(table), PassFailDictionary(table), samediff]
    return netlist, table, dictionaries


def test_single_fault_campaign(bench, setup):
    netlist, table, dictionaries = setup
    case = bench.case("single_fault_campaign", sample=SAMPLE)

    results = case.run(
        lambda: single_fault_campaign(
            netlist, table.tests, dictionaries, sample=SAMPLE, seed=0
        )
    )
    case.iterations(SAMPLE)
    case.info({
        kind: {
            "mean_candidates": round(result.mean_candidates, 3),
            "unique_fraction": round(result.unique_fraction, 3),
            "top1": round(result.top1_accuracy, 3),
        }
        for kind, result in results.items()
    })
    assert (
        results["full"].mean_candidates
        <= results["same/different"].mean_candidates
        <= results["pass/fail"].mean_candidates
    )


def test_dictionary_lookup_speed(bench, setup):
    """Raw per-chip lookup latency of the same/different dictionary."""
    netlist, table, dictionaries = setup
    samediff = dictionaries[2]
    from repro.diagnosis import Diagnoser, observe_fault

    observed = observe_fault(netlist, table.tests, table.faults[0])
    diagnoser = Diagnoser(samediff)
    case = bench.case("dictionary_lookup")
    diagnosis = case.run(lambda: diagnoser.diagnose(observed), rounds=3)
    assert table.faults[0] in diagnosis.exact
