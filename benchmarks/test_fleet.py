"""Benchmark E12: fleet diagnosis campaigns — resolution vs tests applied.

Drives synthetic defective-unit populations through adaptive diagnosis
sessions against all three dictionary organisations and records how many
tests each needs to resolve a unit.  The headline gate is the paper's
fleet-scale claim: on noisy double-fault populations the same/different
dictionary resolves units in measurably fewer tests than pass/fail.
"""

import pytest

from benchmarks.util import pick
from repro.experiments.fleet import FleetConfig, run_campaign

UNITS = pick(100, 30)
FAULTS = pick(120, 60)
TESTS = pick(48, 32)

KINDS = ("pass-fail", "same-different", "full")


def _campaign(**overrides):
    config = FleetConfig(
        n_faults=FAULTS,
        n_tests=TESTS,
        n_outputs=6,
        density=0.85,
        units=UNITS,
        seed=0,
        **overrides,
    )
    return config, run_campaign(config, kinds=KINDS, strategies=("greedy",))


def _cell_info(report):
    return {
        cell.kind: {
            "tests_to_resolution": round(cell.mean_tests_to_resolution, 3),
            "final_candidates": round(cell.mean_final_candidates, 3),
            "resolved_rate": round(cell.resolved_rate, 3),
            "hit_rate": round(cell.hit_rate, 3),
        }
        for cell in report.cells
        if cell.strategy == "greedy"
    }


def test_fleet_clean_singles(bench):
    """Single-fault, noiseless units: the organisations' baseline ordering."""
    case = bench.case("fleet_clean_singles", units=UNITS)
    with case.measure():
        _, report = _campaign()
    case.iterations(UNITS * len(KINDS))
    case.info(_cell_info(report))

    pf = report.cell("pass-fail", "greedy")
    sd = report.cell("same-different", "greedy")
    full = report.cell("full", "greedy")
    assert (
        full.mean_tests_to_resolution
        <= sd.mean_tests_to_resolution
        <= pf.mean_tests_to_resolution
    )
    assert sd.hit_rate == 1.0 and pf.hit_rate == 1.0


def test_fleet_noisy_doubles(bench):
    """The headline fleet claim: noisy double-fault units resolve in
    measurably fewer tests under same/different than under pass/fail."""
    case = bench.case(
        "fleet_noisy_doubles", units=UNITS, doubles=0.3, noise=0.05
    )
    with case.measure():
        _, report = _campaign(
            double_fraction=0.3, noise=0.05, flip_budget=2
        )
    case.iterations(UNITS * len(KINDS))
    case.info(_cell_info(report))

    pf = report.cell("pass-fail", "greedy")
    sd = report.cell("same-different", "greedy")
    full = report.cell("full", "greedy")
    advantage = pf.mean_tests_to_resolution / sd.mean_tests_to_resolution
    case.gate("sd_advantage", advantage, higher_is_better=True,
              tolerance=0.25)
    assert advantage > 1.05, (
        f"same/different needed {sd.mean_tests_to_resolution:.2f} tests vs "
        f"pass/fail {pf.mean_tests_to_resolution:.2f} — no measurable "
        "advantage on noisy doubles"
    )
    assert full.mean_tests_to_resolution <= sd.mean_tests_to_resolution


def test_fleet_entropy_strategy(bench):
    """Entropy suggestion never does worse than greedy on the full
    dictionary (the one organisation with multi-valued columns)."""
    config = FleetConfig(
        n_faults=FAULTS, n_tests=TESTS, n_outputs=6, density=0.85,
        units=UNITS, seed=0,
    )
    case = bench.case("fleet_entropy_full", units=UNITS)
    with case.measure():
        report = run_campaign(
            config, kinds=("full",), strategies=("greedy", "entropy")
        )
    case.iterations(UNITS * 2)
    greedy = report.cell("full", "greedy")
    entropy = report.cell("full", "entropy")
    case.info({
        "greedy_tests": round(greedy.mean_tests_to_resolution, 3),
        "entropy_tests": round(entropy.mean_tests_to_resolution, 3),
    })
    # Small synthetic tables can tie; entropy must not be meaningfully worse.
    assert (
        entropy.mean_tests_to_resolution
        <= greedy.mean_tests_to_resolution + 0.5
    )
