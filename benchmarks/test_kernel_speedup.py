"""Speedup benchmark for the packed kernel backend.

Times the candidate-scoring inner loop of Procedure 1 — the part the
packed backend exists to accelerate — on the 10-detect cells of the
sweep, naive vs packed, proving along the way that both backends return
bit-identical :class:`Procedure1Run` results.  Scoring time is taken
from the ``timings`` hook both backends expose: each accumulates the
wall-clock of its dist(z) computation under ``timings["scoring"]``, so
the comparison excludes the (shared) selection/cutoff bookkeeping and
the packed backend's one-off interning cost, which is reported
separately via the ``kernel.pack_seconds`` / ``kernel.tables_packed``
metrics.

Rounds are interleaved (naive, packed, naive, packed, …) and the
per-backend minimum is kept, so background CPU drift hits both sides
alike.  Full mode sweeps the first five circuits of the default sweep
(all of them with ``REPRO_FULL_SWEEP=1``) and asserts a geometric-mean
speedup of ≥3× with every circuit ≥1.5×; ``REPRO_BENCH_QUICK=1`` (the
CI setting) times only p208 and asserts ≥1.5×.  The measured per-circuit
ratio is regression-gated against the committed baseline through
``BENCH_kernel_speedup.json``.

The second half benches the **vector** backend against packed on large
synthetic tables (``tests.util.random_table``), where its batched
word-array sweep pays off — the bundled circuits are too small for it
(see docs/kernels.md).  Here the timer wraps the *whole*
``procedure1`` call rather than ``timings["scoring"]``: packed's
scoring timer excludes the per-split partition bookkeeping that the
vector sweep folds into its batched counting, so whole-call wall time
is the only honest common denominator.  Quick mode runs one 4 000-fault
workload with a ≥3× floor; full mode adds 8 000- and 24 000-fault
workloads, the largest carrying the ≥10× target from the kernel
roadmap (floored at 7× to absorb machine variance, with the measured
ratio regression-gated).  Skipped entirely when numpy is not
importable — the fallback path trades speed for portability and is
differential-tested, not raced.
"""

from __future__ import annotations

import math
import time

import pytest

from benchmarks.util import full_sweep, pick, quick_mode
from repro.experiments.table6 import DEFAULT_CIRCUITS, response_table_for
from repro.kernels import get_backend
from repro.kernels.interning import intern_response_table
from repro.obs import scoped_registry

ROUNDS = pick(3, 2)
LOWER = 10
#: Per-circuit floor and sweep-wide geometric-mean floor (full mode).
MIN_EACH = 1.5
MIN_GEOMEAN = 3.0

#: Synthetic vector-vs-packed workloads:
#: (name, n_faults, n_tests, n_outputs, density, speedup floor).
#: The quick workload floors at the 3x acceptance bound; the full-mode
#: largest workload floors at 7x and records the 10x target.
VECTOR_WORKLOADS_QUICK = [("rand4000", 4000, 100, 4, 0.10, 3.0)]
VECTOR_WORKLOADS_FULL = [
    ("rand4000", 4000, 100, 4, 0.10, 3.0),
    ("rand8000", 8000, 160, 4, 0.06, 4.0),
    ("rand24000", 24000, 200, 4, 0.05, 7.0),
]
#: The full-mode target on the largest workload (recorded, not floored).
VECTOR_TARGET = 10.0


def _bench_circuits():
    if quick_mode():
        return ["p208"]
    if full_sweep():
        return list(DEFAULT_CIRCUITS)
    return list(DEFAULT_CIRCUITS)[:5]


@pytest.fixture(scope="module", params=_bench_circuits())
def tenDetect_table(request):
    _, table = response_table_for(request.param, "10det", 0)
    return request.param, table


def _run_tuple(run):
    return (run.baselines, run.distinguished, run.evaluated, run.cutoffs,
            run.winners)


def _scoring_seconds(backend, table):
    timings = {}
    run = backend.procedure1(table, range(table.n_tests), LOWER, timings)
    return timings["scoring"], run


def test_kernel_scoring_speedup(bench, tenDetect_table):
    circuit, table = tenDetect_table
    naive = get_backend("naive")
    packed = get_backend("packed")

    # Pay (and measure) the packed backend's interning overhead outside
    # the timed rounds; it is a per-table one-off, not a scoring cost.
    with scoped_registry() as registry:
        intern_response_table(table)
        table.interned  # materialise the cache used by the timed runs
        snapshot = registry.snapshot()
    pack_seconds = snapshot["timers"]["kernel.pack_seconds"]["total"]
    tables_packed = snapshot["counters"]["kernel.tables_packed"]

    naive_case = bench.case(f"naive[{circuit}]", circuit=circuit, backend="naive")
    packed_case = bench.case(f"packed[{circuit}]", circuit=circuit,
                             backend="packed")
    naive_best = math.inf
    packed_best = math.inf
    for _ in range(ROUNDS):
        naive_seconds, naive_run = _scoring_seconds(naive, table)
        packed_seconds, packed_run = _scoring_seconds(packed, table)
        # The differential half of the claim: identical output, always.
        assert _run_tuple(packed_run) == _run_tuple(naive_run)
        naive_case.record(naive_seconds)
        packed_case.record(packed_seconds)
        naive_best = min(naive_best, naive_seconds)
        packed_best = min(packed_best, packed_seconds)

    ratio = naive_best / packed_best if packed_best else math.inf
    _RATIOS[circuit] = ratio
    packed_case.info(
        pack_seconds=pack_seconds, tables_packed=tables_packed,
        faults=table.n_faults, tests=table.n_tests,
    )
    packed_case.gate("speedup_vs_naive", ratio, higher_is_better=True,
                     tolerance=0.35)
    print(
        f"\n[kernel-speedup] {circuit} 10det: naive={naive_best * 1e3:.1f}ms "
        f"packed={packed_best * 1e3:.1f}ms speedup={ratio:.2f}x "
        f"(pack={pack_seconds * 1e3:.1f}ms tables_packed={tables_packed}, "
        f"faults={table.n_faults}, tests={table.n_tests})"
    )

    floor = MIN_EACH
    assert ratio >= floor, (
        f"{circuit}: packed scoring only {ratio:.2f}x faster than naive "
        f"(floor {floor}x)"
    )


#: circuit -> measured ratio, filled per-param and summarised at the end.
_RATIOS = {}


def test_kernel_speedup_geomean(bench):
    """Full mode only: the sweep-wide claim of the kernel layer is ≥3×."""
    if quick_mode():
        pytest.skip("quick mode times a single circuit; no geomean to assert")
    assert _RATIOS, "per-circuit bench must run first"
    geomean = math.exp(
        sum(math.log(r) for r in _RATIOS.values()) / len(_RATIOS)
    )
    case = bench.case("geomean", circuits=len(_RATIOS))
    case.info({c: round(r, 3) for c, r in sorted(_RATIOS.items())})
    case.gate("geomean_speedup", geomean, higher_is_better=True, tolerance=0.35)
    print(
        f"\n[kernel-speedup] geomean over {len(_RATIOS)} circuits: "
        f"{geomean:.2f}x "
        + " ".join(f"{c}={r:.2f}x" for c, r in sorted(_RATIOS.items()))
    )
    assert geomean >= MIN_GEOMEAN, (
        f"geomean speedup {geomean:.2f}x below the {MIN_GEOMEAN}x floor"
    )


def _vector_workloads():
    if quick_mode():
        return VECTOR_WORKLOADS_QUICK
    return VECTOR_WORKLOADS_FULL


@pytest.fixture(scope="module", params=_vector_workloads(),
                ids=lambda spec: spec[0])
def synthetic_table(request):
    from tests.util import random_table

    name, n_faults, n_tests, n_outputs, density, floor = request.param
    table = random_table(n_faults, n_tests, n_outputs, seed=0,
                         density=density)
    return name, table, floor


def test_vector_speedup_vs_packed(bench, synthetic_table):
    pytest.importorskip(
        "numpy", reason="the vector speedup claim is about the numpy path"
    )
    name, table, floor = synthetic_table
    packed = get_backend("packed")
    vector = get_backend("vector")
    assert vector.uses_numpy

    # Both backends' one-off preparation (interning, word-array packing)
    # happens outside the timed rounds; the vector layout cost is still
    # reported so a packing regression shows up in the trajectory.
    with scoped_registry() as registry:
        packed.prepare(table)
        vector.prepare(table)
        snapshot = registry.snapshot()
    vector_pack_seconds = snapshot["timers"][
        "kernel.vector_pack_seconds"]["total"]

    packed_case = bench.case(f"packed[{name}]", workload=name,
                             backend="packed")
    vector_case = bench.case(f"vector[{name}]", workload=name,
                             backend="vector")
    order = range(table.n_tests)
    packed_best = math.inf
    vector_best = math.inf
    for _ in range(ROUNDS):
        start = time.perf_counter()
        packed_run = packed.procedure1(table, order, LOWER)
        packed_seconds = time.perf_counter() - start
        start = time.perf_counter()
        vector_run = vector.procedure1(table, order, LOWER)
        vector_seconds = time.perf_counter() - start
        # The differential half of the claim: identical output, always.
        assert _run_tuple(vector_run) == _run_tuple(packed_run)
        packed_case.record(packed_seconds)
        vector_case.record(vector_seconds)
        packed_best = min(packed_best, packed_seconds)
        vector_best = min(vector_best, vector_seconds)

    ratio = packed_best / vector_best if vector_best else math.inf
    vector_case.info(
        vector_pack_seconds=vector_pack_seconds,
        faults=table.n_faults, tests=table.n_tests, floor=floor,
    )
    if name == "rand24000":
        vector_case.info(target_speedup=VECTOR_TARGET,
                         target_reached=ratio >= VECTOR_TARGET)
    vector_case.gate("speedup_vs_packed", ratio, higher_is_better=True,
                     tolerance=0.35)
    print(
        f"\n[kernel-speedup] {name}: packed={packed_best * 1e3:.1f}ms "
        f"vector={vector_best * 1e3:.1f}ms speedup={ratio:.2f}x "
        f"(floor {floor}x, vector_pack={vector_pack_seconds * 1e3:.1f}ms, "
        f"faults={table.n_faults}, tests={table.n_tests})"
    )
    assert ratio >= floor, (
        f"{name}: vector procedure1 only {ratio:.2f}x faster than packed "
        f"(floor {floor}x)"
    )
