"""Overhead bound for the always-on instrumentation.

The acceptance contract of the observability layer: with no exporters
attached (the default no-op tracer and the plain in-memory registry),
the same/different build must stay within 5% of its un-instrumented wall
time.  The un-instrumented reference is the same code under a
:class:`~repro.obs.NullRegistry`, whose instruments discard everything —
the only difference between the two runs is the registry flush work the
instrumentation adds.

Runs are interleaved and the per-mode minimum is compared, which washes
out machine noise far better than single-shot timing.
"""

from benchmarks.util import build_sd
from repro.experiments.table6 import response_table_for
from repro.obs import disabled, scoped_registry

# Not shrunk in quick mode: the 5% bound needs the full min-of-5 rounds
# to wash out scheduler noise.
ROUNDS = 5
CALLS = 20
TOLERANCE = 1.05


def test_instrumentation_overhead_is_bounded(bench):
    _, table = response_table_for("p208", "diag", 0)
    # Warm-up outside the measurement: first-touch costs (caches) hit
    # whichever mode runs first otherwise.
    build_sd(table, calls=CALLS, seed=0)

    instrumented_case = bench.case("instrumented", calls1=CALLS)
    plain_case = bench.case("null_registry", calls1=CALLS)
    for _ in range(ROUNDS):
        with scoped_registry():
            with instrumented_case.measure():
                build_sd(table, calls=CALLS, seed=0)
        with disabled():
            with plain_case.measure():
                build_sd(table, calls=CALLS, seed=0)

    best_instrumented = instrumented_case.wall_seconds
    best_plain = plain_case.wall_seconds
    ratio = best_instrumented / best_plain
    instrumented_case.info(overhead_ratio=round(ratio, 4))
    instrumented_case.gate("overhead_ratio", ratio, higher_is_better=False,
                           tolerance=0.1)
    print(
        f"\nobs overhead: instrumented {best_instrumented:.4f}s "
        f"vs plain {best_plain:.4f}s (ratio {ratio:.3f})"
    )
    assert ratio <= TOLERANCE, (
        f"instrumentation overhead {100 * (ratio - 1):.1f}% exceeds "
        f"{100 * (TOLERANCE - 1):.0f}%"
    )
