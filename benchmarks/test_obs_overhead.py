"""Overhead bound for the always-on instrumentation.

The acceptance contract of the observability layer: with no exporters
attached (the default no-op tracer and the plain in-memory registry),
the same/different build must stay within 5% of its un-instrumented wall
time.  The un-instrumented reference is the same code under a
:class:`~repro.obs.NullRegistry`, whose instruments discard everything —
the only difference between the two runs is the registry flush work the
instrumentation adds.

Runs are interleaved and the per-mode minimum is compared, which washes
out machine noise far better than single-shot timing.
"""

import time

from benchmarks.util import build_sd
from repro.experiments.table6 import response_table_for
from repro.obs import disabled, scoped_registry

ROUNDS = 5
CALLS = 20
TOLERANCE = 1.05


def _build_seconds(table):
    start = time.perf_counter()
    build_sd(table, calls=CALLS, seed=0)
    return time.perf_counter() - start


def test_instrumentation_overhead_is_bounded():
    _, table = response_table_for("p208", "diag", 0)
    # Warm-up outside the measurement: first-touch costs (caches) hit
    # whichever mode runs first otherwise.
    _build_seconds(table)

    instrumented = []
    plain = []
    for _ in range(ROUNDS):
        with scoped_registry():
            instrumented.append(_build_seconds(table))
        with disabled():
            plain.append(_build_seconds(table))

    best_instrumented = min(instrumented)
    best_plain = min(plain)
    ratio = best_instrumented / best_plain
    print(
        f"\nobs overhead: instrumented {best_instrumented:.4f}s "
        f"vs plain {best_plain:.4f}s (ratio {ratio:.3f})"
    )
    assert ratio <= TOLERANCE, (
        f"instrumentation overhead {100 * (ratio - 1):.1f}% exceeds "
        f"{100 * (TOLERANCE - 1):.0f}%"
    )
