"""Speedup benchmark for the parallel restart engine.

Times the restarted Procedure 1 loop of the largest circuit in the
sweep (``p526`` by default, ``p9234`` with ``REPRO_FULL_SWEEP=1``)
serially and with ``jobs=4``, proving along the way that both runs
produce identical baselines and counts — the speedup claim is only
meaningful because the result is bit-for-bit the same.

The ≥2× assertion needs hardware that can actually run 4 workers:
it is enforced only when ``os.cpu_count() >= 4`` and the bench is not
in quick mode.  ``REPRO_BENCH_QUICK=1`` (the CI setting) shrinks the
restart budget and reports the measured ratio without failing on it.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.util import build_sd, pick, quick_mode
from repro.experiments.table6 import response_table_for
from repro.obs import scoped_registry

from benchmarks.conftest import sweep_circuits

JOBS = 4
#: Stale budget: large enough that the restart loop, not test
#: generation, is what gets timed.
CALLS = pick(400, 60)


@pytest.fixture(scope="module")
def largest_table():
    circuit = sweep_circuits()[-1]
    _, table = response_table_for(circuit, "diag", 0)
    return circuit, table


def _timed_build(case, table, jobs):
    with scoped_registry():
        with case.measure():
            dictionary, report = build_sd(
                table, calls=CALLS, seed=0, replace=False, jobs=jobs
            )
    return case.wall_seconds, dictionary, report


def test_parallel_speedup(bench, largest_table):
    circuit, table = largest_table
    serial_case = bench.case(f"serial[{circuit}]", circuit=circuit, jobs=1)
    parallel_case = bench.case(f"jobs{JOBS}[{circuit}]", circuit=circuit,
                               jobs=JOBS)
    serial_seconds, serial_dict, serial_report = _timed_build(
        serial_case, table, jobs=1
    )
    parallel_seconds, parallel_dict, parallel_report = _timed_build(
        parallel_case, table, jobs=JOBS
    )

    # The differential half of the claim: identical output, always.
    assert parallel_dict.baselines == serial_dict.baselines
    assert (
        parallel_report.distinguished_procedure1
        == serial_report.distinguished_procedure1
    )
    assert parallel_report.procedure1_calls == serial_report.procedure1_calls

    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    parallel_case.info(
        calls=CALLS, restarts=serial_report.procedure1_calls,
        cpus=os.cpu_count(), speedup=round(speedup, 3),
    )
    print(
        f"\n[parallel-speedup] {circuit}: serial={serial_seconds:.2f}s "
        f"jobs={JOBS}={parallel_seconds:.2f}s speedup={speedup:.2f}x "
        f"(calls={CALLS}, restarts={serial_report.procedure1_calls}, "
        f"cpus={os.cpu_count()})"
    )

    if not quick_mode() and (os.cpu_count() or 1) >= JOBS:
        # Only gate the ratio where it is enforced at all: quick CI
        # runners have too few cores for the number to be meaningful.
        parallel_case.gate("speedup_vs_serial", speedup,
                           higher_is_better=True, tolerance=0.35)
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {JOBS} workers on "
            f"{os.cpu_count()} CPUs, measured {speedup:.2f}x"
        )
