"""Benchmark E15: the size/resolution landscape of all organisations.

Places the same/different dictionary among every other organisation the
library implements and verifies the paper's headline geometrically: the
s/d point is on the Pareto frontier, a hair above pass/fail in size.
"""

from repro.experiments.pareto import dominated_points, render_frontier, size_resolution_frontier


def test_size_resolution_frontier(bench):
    case = bench.case("frontier[p208]")
    points = case.run(
        lambda: size_resolution_frontier("p208", "diag", calls=20)
    )
    print()
    print(render_frontier("p208", points))
    case.info({
        p.kind: {"size_bits": p.size_bits, "indistinguished": p.indistinguished}
        for p in points
    })
    by_kind = {p.kind: p for p in points}
    dominated = {p.kind for p in dominated_points(points)}
    assert "same/different" not in dominated
    assert by_kind["same/different"].size_bits < by_kind["pass/fail"].size_bits * 1.1
