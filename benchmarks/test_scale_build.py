"""Benchmark: ITC-99-scale builds on the partition-refinement core.

Three cases, all recorded in ``BENCH_scale_build.json``:

* ``pair_state_memory`` — peak memory of the class-based
  :class:`~repro.partition.FaultPartition` vs the pair-materialising
  :class:`~repro.partition.reference.MaterializedPairPartition` under
  the *same* refinement stream (the seed path's O(F^2) shape).  The
  ``memory_ratio`` gate holds the >= 5x drop the scale work promised.
* ``proxy_build_10k`` — a full same/different build on the 10k-fault
  b14-class proxy (10k faults even in quick mode; tests and restart
  budget shrink).  Records the build's peak memory and wall clock, and
  gates the peak against the measured pair-set footprint extrapolated
  quadratically to 10k faults — the memory the seed path would need.
* ``kill_resume`` — a subprocess build SIGKILL'd mid-restart-loop, then
  resumed from its RFDC checkpoint; the resumed artifact must be
  byte-identical (file bytes and semantic digest) to an uninterrupted
  build.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
import tracemalloc
from pathlib import Path

from benchmarks.util import pick
from repro.api import DictionaryConfig, build
from repro.circuit.generate import proxy_response_table
from repro.partition import FaultPartition
from repro.partition.reference import MaterializedPairPartition
from repro.store import load_artifact, save_artifact, semantic_digest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Fault count of the representation comparison (both legs run the same
#: stream, so the ratio is apples to apples; the materialised leg is the
#: reason this is not 10k — its pair set alone would be gigabytes).
RATIO_FAULTS = pick(2500, 1200)
RATIO_TESTS = 24

#: The scale case proper: 10k collapsed faults in quick mode too.
PROXY_FAULTS = 10_000
PROXY_TESTS = pick(160, 48)
PROXY_CALLS = pick(8, 2)

KILL_FAULTS = pick(4000, 2000)
KILL_TESTS = pick(64, 48)
KILL_CALLS = pick(6, 4)
MIN_MEMORY_RATIO = 5.0


def _refinement_stream(n_faults, n_tests):
    """Deterministic split streams: per test, members per failing value."""
    table = proxy_response_table("b14p", n_faults=n_faults, n_tests=n_tests)
    cols = table.interned.cols
    stream = []
    for j in range(n_tests):
        by_value = {}
        for i, value in enumerate(cols[j]):
            by_value.setdefault(value, []).append(i)
        stream.append([members for members in by_value.values()])
    return stream


def _peak_bytes(make_partition, stream) -> int:
    """tracemalloc peak of constructing + fully refining one representation."""
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        partition = make_partition()
        for splits in stream:
            for members in splits:
                partition.split(members)
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    assert partition.indistinguished() >= 0
    return peak


def test_pair_state_memory(bench):
    case = bench.case(
        "pair_state_memory", n_faults=RATIO_FAULTS, n_tests=RATIO_TESTS
    )
    stream = _refinement_stream(RATIO_FAULTS, RATIO_TESTS)
    with case.measure():
        partition_peak = _peak_bytes(
            lambda: FaultPartition(range(RATIO_FAULTS)), stream
        )
        pairs_peak = _peak_bytes(
            lambda: MaterializedPairPartition(range(RATIO_FAULTS)), stream
        )
    ratio = pairs_peak / max(1, partition_peak)
    case.info(
        partition_peak_kib=round(partition_peak / 1024, 1),
        pairs_peak_kib=round(pairs_peak / 1024, 1),
    )
    case.gate("memory_ratio", ratio, higher_is_better=True, tolerance=0.5)
    assert ratio >= MIN_MEMORY_RATIO, (
        f"class-based pair state is only {ratio:.1f}x smaller than the "
        f"materialised pair set (floor {MIN_MEMORY_RATIO}x)"
    )
    # Stash for the 10k extrapolation below (module runs in file order).
    test_pair_state_memory.pairs_peak = pairs_peak


def test_proxy_build_10k(bench):
    case = bench.case(
        "proxy_build_10k",
        n_faults=PROXY_FAULTS,
        n_tests=PROXY_TESTS,
        calls=PROXY_CALLS,
    )
    table = proxy_response_table(
        "b14p", n_faults=PROXY_FAULTS, n_tests=PROXY_TESTS
    )
    table.interned  # pre-intern: measure the build, not table setup
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        started = time.perf_counter()
        built = build(
            table, config=DictionaryConfig(seed=0, calls1=PROXY_CALLS)
        )
        wall = time.perf_counter() - started
        build_peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    case.record(wall)
    # What the seed path's pair set would cost at this fault count: the
    # measured footprint at RATIO_FAULTS scaled by (F/F_ratio)^2.
    seed_estimate = test_pair_state_memory.pairs_peak * (
        PROXY_FAULTS / RATIO_FAULTS
    ) ** 2
    ratio = seed_estimate / max(1, build_peak)
    case.info(
        build_peak_mib=round(build_peak / 2**20, 2),
        seed_path_estimate_mib=round(seed_estimate / 2**20, 2),
        procedure1_calls=built.report.procedure1_calls,
        classes_after_procedure2=built.report.classes_after_procedure2,
        indistinguished=built.report.indistinguished_procedure2,
    )
    case.gate(
        "peak_memory_ratio_vs_seed_path",
        ratio,
        higher_is_better=True,
        tolerance=0.5,
    )
    assert ratio >= MIN_MEMORY_RATIO


_KILL_DRIVER = """
import sys, time
sys.path.insert(0, {src!r})
from repro.api import DictionaryConfig, build
from repro.circuit.generate import proxy_response_table

class SlowProgress:
    # Widens the kill window: the checkpoint observer has already
    # persisted the fold state by the time progress is reported.
    def report(self, stage, done, total=None, **info):
        if stage == "build.procedure1":
            time.sleep(0.25)

table = proxy_response_table("b14p", n_faults={faults}, n_tests={tests})
build(
    table,
    config=DictionaryConfig(seed=0, calls1={calls}),
    checkpoint_dir={ckpt!r},
    progress=SlowProgress(),
)
"""


def test_kill_resume_identical_artifact(bench, tmp_path):
    case = bench.case(
        "kill_resume", n_faults=KILL_FAULTS, n_tests=KILL_TESTS, calls=KILL_CALLS
    )
    table = proxy_response_table(
        "b14p", n_faults=KILL_FAULTS, n_tests=KILL_TESTS
    )
    config = DictionaryConfig(seed=0, calls1=KILL_CALLS)
    reference = build(table, config=config)

    ckpt_dir = tmp_path / "ckpt"
    driver = _KILL_DRIVER.format(
        src=str(REPO_ROOT / "src"),
        faults=KILL_FAULTS,
        tests=KILL_TESTS,
        calls=KILL_CALLS,
        ckpt=str(ckpt_dir),
    )
    child = subprocess.Popen(
        [sys.executable, "-c", driver],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    try:
        deadline = time.monotonic() + 120
        while not list(ckpt_dir.glob("*.rfdc")):
            if child.poll() is not None:
                raise AssertionError(
                    "driver exited before writing a checkpoint:\n"
                    + child.stderr.read().decode()
                )
            if time.monotonic() > deadline:
                raise AssertionError("no checkpoint appeared within 120s")
            time.sleep(0.01)
        os.kill(child.pid, signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)
    assert child.returncode == -signal.SIGKILL
    assert list(ckpt_dir.glob("*.rfdc")), "the kill must leave the cursor behind"

    with case.measure():
        resumed = build(
            table, config=config, checkpoint_dir=ckpt_dir, resume=True
        )
    assert not list(ckpt_dir.glob("*.rfdc")), "completion removes the cursor"
    assert semantic_digest(resumed) == semantic_digest(reference)

    resumed_path = tmp_path / "resumed.rfd"
    reference_path = tmp_path / "reference.rfd"
    resumed_hash = save_artifact(resumed, resumed_path)
    reference_hash = save_artifact(reference, reference_path)
    assert resumed_hash == reference_hash
    # The artifact files differ only in wall-clock fields of the embedded
    # report; everything semantic must round-trip identically.
    assert semantic_digest(load_artifact(resumed_path)) == semantic_digest(
        load_artifact(reference_path)
    )
    case.info(
        content_hash=resumed_hash[:12],
        procedure1_calls=resumed.report.procedure1_calls,
    )
