"""Benchmark E16: pipeline cost scaling across circuit sizes."""

from benchmarks.util import pick
from repro.experiments.scaling import scaling_study

CIRCUITS = pick(("p208", "p344", "p641"), ("p208", "p344"))


def test_scaling_study(bench):
    case = bench.case("scaling_study", circuits=list(CIRCUITS))
    points = case.run(
        lambda: scaling_study(circuits=CIRCUITS, tests_per_circuit=96)
    )
    for point in points:
        case.info({point.circuit: {
            "gates": point.gates,
            "faults": point.faults,
            "build_table_s": round(point.build_table_seconds, 4),
            "procedure1_s": round(point.procedure1_seconds, 4),
            "procedure2_s": round(point.procedure2_seconds, 4),
        }})
    # Near-linear growth: 6x the gates must not cost 50x the time.
    small, large = points[0], points[-1]
    size_ratio = large.faults / max(1, small.faults)
    time_ratio = (large.procedure1_seconds + 1e-9) / (small.procedure1_seconds + 1e-9)
    assert time_ratio < size_ratio * 8
