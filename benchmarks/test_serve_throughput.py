"""Benchmark for the serve layer: warm-pool batches vs one-shot diagnosis.

The serving layer exists so a stream of failing-chip lookups does not pay
the artifact load per request.  This bench measures the claim: a batch
driven through a warm :class:`DiagnosisServer` must process requests at
least ``MIN_SPEEDUP``× faster than the one-shot flow — where each request
constructs its own ``Diagnoser.from_artifact`` the way the ``diagnose``
CLI command does.

Both sides serve the identical request list against the identical
artifact bytes, and the outcomes are cross-checked against the one-shot
results before any timing is trusted.  ``REPRO_BENCH_QUICK=1`` (the CI
setting) shrinks the batch; per-side minimum over ``ROUNDS`` keeps the
usual noise discipline.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.util import pick
from repro.api import DictionaryConfig, build
from repro.diagnosis.engine import Diagnoser
from repro.experiments.table6 import response_table_for
from repro.obs import scoped_registry
from repro.serve import DiagnosisRequest, DiagnosisServer, ServeConfig
from repro.store import save_artifact

ROUNDS = pick(3, 2)
REQUESTS = pick(200, 40)
CALLS = 5
MIN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def packed_cell(tmp_path_factory):
    _, table = response_table_for("p208", "diag", 0)
    built = build(table, config=DictionaryConfig(seed=0, calls1=CALLS))
    path = tmp_path_factory.mktemp("serve-bench") / "p208.rfd"
    save_artifact(built, path)
    return path, built


def request_list(built):
    n_faults = built.table.n_faults
    return [
        DiagnosisRequest(
            request_id=f"r{i}",
            fault=str(built.table.faults[(i * 13) % n_faults]),
        )
        for i in range(REQUESTS)
    ]


def one_shot_results(path, built, requests):
    """The CLI-style flow: every request loads its own diagnoser."""
    results = []
    for request in requests:
        diagnoser = Diagnoser.from_artifact(path)
        index = [str(f) for f in built.table.faults].index(request.fault)
        observed = list(built.table.full_row(index))
        diagnosis = diagnoser.diagnose(observed, limit=request.limit)
        results.append((request.request_id, [str(f) for f in diagnosis.exact]))
    return results


def test_warm_pool_batch_throughput(bench, packed_cell):
    path, built = packed_cell
    requests = request_list(built)

    with scoped_registry():
        server = DiagnosisServer(
            ServeConfig(workers=4, pool_size=2),
            default_artifact=str(path),
        )
        server.pool.get(path)  # warm the pool: steady-state serving
        outcomes = server.diagnose_batch(requests)
    # Correctness before speed: batch results equal the one-shot flow.
    expected = one_shot_results(path, built, requests)
    assert [(o.request_id, o.exact) for o in outcomes] == expected
    assert all(o.code == "ok" for o in outcomes)

    one_shot_case = bench.case("one_shot", requests=REQUESTS)
    batch_case = bench.case("warm_pool_batch", requests=REQUESTS)
    one_shot_case.iterations(REQUESTS)
    batch_case.iterations(REQUESTS)
    for _ in range(ROUNDS):
        with one_shot_case.measure():
            one_shot_results(path, built, requests)

        with scoped_registry() as registry:
            server = DiagnosisServer(
                ServeConfig(workers=4, pool_size=2),
                default_artifact=str(path),
            )
            server.pool.get(path)
            with batch_case.measure():
                server.diagnose_batch(requests)
            # Warm pool: the batch must never reload the artifact.
            assert registry.counter("serve.pool_misses").value == 1
            assert registry.counter("serve.pool_hits").value == REQUESTS

    sequential_best = one_shot_case.wall_seconds
    batch_best = batch_case.wall_seconds
    ratio = sequential_best / batch_best if batch_best else math.inf
    per_request = batch_best / REQUESTS * 1e6
    batch_case.info(us_per_request=round(per_request, 1))
    batch_case.gate("speedup_vs_one_shot", ratio, higher_is_better=True,
                    tolerance=0.35)
    print(
        f"\n[serve-bench] p208 diag x{REQUESTS}: "
        f"one-shot={sequential_best * 1e3:.1f}ms "
        f"batch={batch_best * 1e3:.1f}ms ({per_request:.0f}us/req) "
        f"speedup={ratio:.1f}x"
    )
    assert ratio >= MIN_SPEEDUP, (
        f"warm-pool batch only {ratio:.1f}x faster than one-shot diagnosis "
        f"(floor {MIN_SPEEDUP}x)"
    )
