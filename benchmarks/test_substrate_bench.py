"""Substrate throughput benches: simulation, fault simulation, ATPG.

Not tied to a paper artefact; these quantify the simulator and PODEM
engine the experiments stand on and guard against performance regressions.
"""

import pytest

from benchmarks.util import pick
from repro.circuit import load_circuit, prepare_for_test
from repro.faults import collapse
from repro.sim import FaultSimulator, ResponseTable, TestSet, simulate
from repro.atpg import Podem

PATTERNS = pick(256, 64)
FAULT_SAMPLE = pick(200, 60)


@pytest.fixture(scope="module")
def p641():
    netlist = prepare_for_test(load_circuit("p641"))
    return netlist, collapse(netlist)


def test_logic_simulation_throughput(bench, p641):
    netlist, _ = p641
    tests = TestSet.random(netlist.inputs, PATTERNS, seed=0)
    case = bench.case("logic_simulation", patterns=PATTERNS)
    words = case.run(lambda: simulate(netlist, tests), rounds=3)
    case.iterations(PATTERNS * netlist.num_gates)
    case.info(pattern_gate_evals=PATTERNS * netlist.num_gates)
    assert len(words) == len(netlist.gates)


def test_fault_simulation_throughput(bench, p641):
    netlist, faults = p641
    tests = TestSet.random(netlist.inputs, PATTERNS // 2, seed=0)
    simulator = FaultSimulator(netlist, tests)
    sample = faults[:FAULT_SAMPLE]
    case = bench.case("fault_simulation", faults=len(sample))

    def run():
        return sum(1 for fault in sample if simulator.detection_word(fault))

    detected = case.run(run, rounds=2)
    case.iterations(len(sample))
    case.info(faults=len(sample), patterns=PATTERNS // 2)
    assert 0 < detected <= len(sample)


def test_response_table_build(bench, p641):
    netlist, faults = p641
    tests = TestSet.random(netlist.inputs, 64, seed=1)
    case = bench.case("response_table_build", faults=300)

    table = case.run(
        lambda: ResponseTable.build(netlist, faults[:300], tests), rounds=2
    )
    assert table.n_faults == 300


def test_podem_throughput(bench, p641):
    netlist, faults = p641
    engine = Podem(netlist, backtrack_limit=256)
    sample = faults[::17][:40]
    case = bench.case("podem", faults=len(sample))

    statuses = case.run(
        lambda: [engine.generate(fault).status.value for fault in sample]
    )
    case.iterations(len(sample))
    case.info(faults=len(sample))
    assert len(statuses) == len(sample)
