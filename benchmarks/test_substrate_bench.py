"""Substrate throughput benches: simulation, fault simulation, ATPG.

Not tied to a paper artefact; these quantify the simulator and PODEM
engine the experiments stand on and guard against performance regressions.
"""

import pytest

from repro.circuit import load_circuit, prepare_for_test
from repro.faults import collapse
from repro.sim import FaultSimulator, ResponseTable, TestSet, simulate
from repro.atpg import Podem


@pytest.fixture(scope="module")
def p641():
    netlist = prepare_for_test(load_circuit("p641"))
    return netlist, collapse(netlist)


def test_logic_simulation_throughput(benchmark, p641):
    netlist, _ = p641
    tests = TestSet.random(netlist.inputs, 256, seed=0)
    words = benchmark(lambda: simulate(netlist, tests))
    benchmark.extra_info["pattern_gate_evals"] = 256 * netlist.num_gates
    assert len(words) == len(netlist.gates)


def test_fault_simulation_throughput(benchmark, p641):
    netlist, faults = p641
    tests = TestSet.random(netlist.inputs, 128, seed=0)
    simulator = FaultSimulator(netlist, tests)
    sample = faults[:200]

    def run():
        return sum(1 for fault in sample if simulator.detection_word(fault))

    detected = benchmark(run)
    benchmark.extra_info.update({"faults": len(sample), "patterns": 128})
    assert 0 < detected <= len(sample)


def test_response_table_build(benchmark, p641):
    netlist, faults = p641
    tests = TestSet.random(netlist.inputs, 64, seed=1)

    def run():
        return ResponseTable.build(netlist, faults[:300], tests)

    table = benchmark.pedantic(run, rounds=2, iterations=1)
    assert table.n_faults == 300


def test_podem_throughput(benchmark, p641):
    netlist, faults = p641
    engine = Podem(netlist, backtrack_limit=256)
    sample = faults[::17][:40]

    def run():
        return [engine.generate(fault).status.value for fault in sample]

    statuses = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["faults"] = len(sample)
    assert len(statuses) == len(sample)
