"""Benchmark + regeneration of the paper's Table 6 (experiments E3/E4).

Each cell benchmarks the same/different dictionary construction
(Procedure 1 with restarts + Procedure 2) on that cell's response table
and records every Table 6 column in the case ``info``.  The final test
prints the assembled table in the paper's layout (visible with ``-s`` and
stored in ``BENCH_table6_bench.json``).
"""

from __future__ import annotations

import pytest

from repro.dictionaries import FullDictionary, PassFailDictionary
from benchmarks.util import build_sd, pick
from repro.experiments import render_table6
from repro.experiments.table6 import Table6Row, response_table_for
from benchmarks.conftest import sweep_circuits

CALLS = pick(100, 25)

_CELLS = [
    (circuit, test_type)
    for circuit in sweep_circuits()
    for test_type in ("diag", "10det")
]


@pytest.mark.parametrize("circuit,test_type", _CELLS)
def test_table6_cell(bench, table6_rows, circuit, test_type):
    _, table = response_table_for(circuit, test_type, seed=0)
    case = bench.case(f"cell[{circuit}-{test_type}]",
                      circuit=circuit, ttype=test_type)

    def build():
        return build_sd(table, lower=10, calls=CALLS, seed=0)

    _, report = case.run(build)

    full = FullDictionary(table)
    passfail = PassFailDictionary(table)
    row = Table6Row(
        circuit=circuit,
        test_type=test_type,
        n_tests=table.n_tests,
        n_faults=table.n_faults,
        n_outputs=table.n_outputs,
        indist_full=full.indistinguished_pairs(),
        indist_passfail=passfail.indistinguished_pairs(),
        indist_sd_random=report.indistinguished_procedure1,
        indist_sd_replace=report.indistinguished_procedure2,
        build=report,
    )
    table6_rows.append(row)
    case.info({
        "|T|": row.n_tests,
        "size_full": row.sizes.full,
        "size_pf": row.sizes.pass_fail,
        "size_sd": row.sizes.same_different,
        "ind_full": row.indist_full,
        "ind_pf": row.indist_passfail,
        "ind_sd_rand": row.indist_sd_random,
        "ind_sd_repl": row.indist_sd_replace,
    })
    # The paper's headline orderings must hold in every cell.
    assert row.indist_full <= row.indist_sd_replace <= row.indist_sd_random
    assert row.indist_sd_random <= row.indist_passfail
    assert row.sizes.pass_fail < row.sizes.same_different < row.sizes.full


def test_render_table6(bench, table6_rows):
    """Print the assembled Table 6 (run last; depends on the cell benches)."""
    if not table6_rows:
        pytest.skip("cell benches did not run")
    ordered = sorted(
        table6_rows, key=lambda row: (_CELLS.index((row.circuit, row.test_type)))
    )
    case = bench.case("render", cells=len(ordered))
    text = case.run(lambda: render_table6(ordered), rounds=3)
    print()
    print(text)
    case.info(table=text.splitlines())
