"""Benchmark E12: dictionary shrinking via test selection.

The "small dictionaries" baseline the paper builds on (its refs [9],
[12]): instead of changing the dictionary *organisation*, drop tests that
carry no extra diagnostic information.  Records how far each criterion
shrinks a redundant test set and what each resulting dictionary costs —
the context in which the same/different organisation's k·m overhead is
negligible.
"""

import pytest

from benchmarks.util import build_sd
from repro.dictionaries import (
    FullDictionary,
    PassFailDictionary,
    select_tests_preserving_detection,
    select_tests_preserving_resolution,
)
from repro.experiments.table6 import response_table_for


@pytest.fixture(scope="module")
def table():
    _, table = response_table_for("p208", "10det", seed=0)
    return table


def test_select_detection(bench, table):
    case = bench.case("select_detection")
    chosen = case.run(lambda: select_tests_preserving_detection(table))
    case.info(tests_before=table.n_tests, tests_after=len(chosen))
    assert len(chosen) < table.n_tests


def test_select_resolution(bench, table):
    case = bench.case("select_resolution")
    chosen = case.run(lambda: select_tests_preserving_resolution(table))
    sub = table.subset(chosen)
    assert (
        FullDictionary(sub).indistinguished_pairs()
        == FullDictionary(table).indistinguished_pairs()
    )
    samediff, _ = build_sd(sub, calls=20, seed=0)
    case.info(
        tests_before=table.n_tests,
        tests_after=len(chosen),
        pf_bits_after=PassFailDictionary(sub).size_bits,
        sd_bits_after=samediff.size_bits,
        sd_indistinguished_after=samediff.indistinguished_pairs(),
    )
