"""Benchmark E17: same/different dictionaries for transition faults.

The paper's construction only assumes a response table — fault model
agnostic.  This bench builds two-pattern test sets and the three
dictionary organisations for the transition fault model on p208 and
records the same columns as Table 6.
"""

from benchmarks.util import build_sd, pick
from repro.dictionaries import (
    DictionarySizes,
    FullDictionary,
    PassFailDictionary,
)
from repro.experiments.table6 import prepared_experiment
from repro.faults.transition import transition_faults, transition_response_table
from repro.atpg.transition_atpg import generate_transition_tests

RANDOM_PAIRS = pick(64, 32)


def test_transition_dictionary(bench):
    netlist, _ = prepared_experiment("p208", "diag", 0)
    faults = transition_faults(netlist)
    case = bench.case("transition[p208]", random_pairs=RANDOM_PAIRS)

    def build():
        launch, capture, report = generate_transition_tests(
            netlist, faults, seed=0, random_pairs=RANDOM_PAIRS
        )
        table = transition_response_table(
            netlist, launch, capture, report["detected"]
        )
        samediff, _ = build_sd(table, calls=20, seed=0)
        return table, samediff, report

    table, samediff, report = case.run(build)
    sizes = DictionarySizes.of(table)
    full = FullDictionary(table)
    passfail = PassFailDictionary(table)
    case.info(
        transition_faults=len(faults),
        detected=len(report["detected"]),
        untestable=len(report["untestable"]),
        pairs=table.n_tests,
        size_pf=sizes.pass_fail,
        size_sd=sizes.same_different,
        ind_full=full.indistinguished_pairs(),
        ind_pf=passfail.indistinguished_pairs(),
        ind_sd=samediff.indistinguished_pairs(),
    )
    assert (
        full.indistinguished_pairs()
        <= samediff.indistinguished_pairs()
        <= passfail.indistinguished_pairs()
    )
