"""Shared benchmark helpers (importable as ``benchmarks.util``).

Quick-mode handling lives here, once: every suite asks :func:`quick_mode`
/ :func:`pick` instead of reading its own environment variable, so
"quick" means the same thing everywhere — CI sets ``REPRO_BENCH_QUICK=1``
for the bench job, and ``REPRO_EXAMPLES_QUICK=1`` (the examples' switch)
is honoured too so a quick docs run never drags a full sweep in through a
bench import.
"""

from __future__ import annotations

import os

from repro.api import DictionaryConfig, build

#: Any of these set (to a non-empty value) puts the suites in quick mode.
QUICK_ENV_VARS = ("REPRO_BENCH_QUICK", "REPRO_EXAMPLES_QUICK")


def quick_mode() -> bool:
    """True when the benches should shrink to their CI-sized quick form."""
    return any(os.environ.get(name) for name in QUICK_ENV_VARS)


def pick(full, quick):
    """``quick`` in quick mode, ``full`` otherwise — for sizing constants."""
    return quick if quick_mode() else full


def full_sweep() -> bool:
    """True when the large proxies (p641 … p9234) join the sweep."""
    return bool(os.environ.get("REPRO_FULL_SWEEP"))


def build_sd(table, *, calls=100, lower=10, seed=0, replace=True, jobs=1,
             backend=None):
    """Same/different build through :func:`repro.api.build`.

    Returns ``(dictionary, report)`` like the legacy entry point, keeping
    the benches on the public facade.
    """
    built = build(
        table,
        config=DictionaryConfig(
            seed=seed, calls1=calls, lower=lower, jobs=jobs,
            procedure2=replace, backend=backend,
        ),
    )
    return built.dictionary, built.report
