"""Shared benchmark helpers (importable as ``benchmarks.util``)."""

from __future__ import annotations

from repro.api import DictionaryConfig, build


def build_sd(table, *, calls=100, lower=10, seed=0, replace=True, jobs=1,
             backend=None):
    """Same/different build through :func:`repro.api.build`.

    Returns ``(dictionary, report)`` like the legacy entry point, keeping
    the benches on the public facade.
    """
    built = build(
        table,
        config=DictionaryConfig(
            seed=seed, calls1=calls, lower=lower, jobs=jobs,
            procedure2=replace, backend=backend,
        ),
    )
    return built.dictionary, built.report
