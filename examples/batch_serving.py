"""Batch diagnosis serving: pack once, serve many failing chips.

The build side packs a dictionary into one artifact file; the serve side
— which needs no circuit files, ATPG or simulator — answers a whole
batch of failing-chip requests through `repro.serve()`, including a
degraded request and an incremental multi-observation session.  See
docs/serving.md for the request format and reason codes.

Usage::

    python examples/batch_serving.py
"""

import json
import tempfile
from pathlib import Path

import repro
from repro import DictionaryConfig, build
from repro.diagnosis import observe_fault
from repro.serve import ServeConfig
from repro.store import save_artifact


def main() -> None:
    # ---- build side: pack the dictionary once -------------------------
    netlist = repro.prepare_for_test(repro.load_circuit("s27"))
    faults = repro.collapse(netlist)
    tests, _ = repro.generate_diagnostic_tests(netlist, faults)
    built = build(
        netlist=netlist, faults=faults, tests=tests,
        config=DictionaryConfig(seed=0, calls1=10),
    )
    artifact = Path(tempfile.mkdtemp()) / "s27.rfd"
    save_artifact(built, artifact)
    print(f"packed {built.kind}: {built.table.n_faults} faults x "
          f"{built.table.n_tests} tests -> {artifact.name}")

    # ---- tester side: observed responses of two failing chips ---------
    chip_one = observe_fault(netlist, tests, faults[3])
    chip_two = observe_fault(netlist, tests, faults[7])

    # ---- serve side: one batch, mixed request flavours ----------------
    server = repro.serve(artifact, config=ServeConfig(deadline_ms=500, workers=2))
    requests = [
        {"id": "chip-1", "observed": [list(sig) for sig in chip_one]},
        {"id": "chip-2", "observed": [list(sig) for sig in chip_two]},
        {"id": "named", "fault": str(faults[5])},
        {"id": "hurt", "observed": [[0]]},  # wrong test count: degrades
        {"id": "incremental",
         "observations": [[j, list(chip_one[j])] for j in range(6)]},
    ]
    outcomes = server.serve_jsonl(json.dumps(doc) + "\n" for doc in requests)
    print("\nbatch outcomes (no request can fail the batch):")
    for outcome in outcomes:
        extra = ""
        if outcome.code == "ok" and outcome.exact:
            extra = f" exact={outcome.exact}"
        elif outcome.narrowing:
            extra = f" narrowing={outcome.narrowing}"
        elif outcome.detail:
            extra = f" ({outcome.detail})"
        print(f"  {outcome.request_id:>12}: {outcome.code}{extra}")

    # ---- incremental session with greedy next-test suggestion ---------
    session = server.session(str(artifact))
    print("\nadaptive session against chip-1:")
    while not session.converged:
        j = session.suggest_next_test()
        if j is None:
            break
        update = session.observe(j, chip_one[j])
        print(f"  observe test {j:2d}: {update.before:2d} -> "
              f"{update.after:2d} candidates")
    names = [str(fault) for fault in session.candidate_faults()]
    print(f"converged after {len(session.history)} observations: {names}")
    assert str(faults[3]) in names, "ground truth must survive narrowing"


if __name__ == "__main__":
    main()
