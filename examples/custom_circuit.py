"""Bring your own circuit: the library on a hand-written .bench netlist.

Authors a small sequential circuit in the ISCAS ``.bench`` format, runs the
whole flow on it — scan conversion, ATPG (including an untestability
proof), pair distinguishing with the miter engine — and prints every step.
This is the template for applying the library to your own designs.

Usage::

    python examples/custom_circuit.py
"""

from repro import (
    Distinguisher,
    DictionaryConfig,
    Fault,
    Podem,
    ResponseTable,
    build,
    collapse,
    generate_detection_tests,
    prepare_for_test,
)
from repro.circuit import bench

MY_CIRCUIT = """
# A small sequential design with one redundant cone.
INPUT(clk_en)
INPUT(d0)
INPUT(d1)
OUTPUT(out)
state  = DFF(next)
ninv   = NOT(d0)
red    = AND(d0, ninv)      # constant 0: faults on 'red' sa0 are untestable
mix    = OR(d1, red)
next   = XOR(mix, state)
gated  = AND(clk_en, state)
out    = NOR(gated, ninv)
"""


def main() -> None:
    netlist = bench.loads(MY_CIRCUIT, "custom")
    print(f"parsed: {netlist!r}")
    scan = prepare_for_test(netlist)
    print(f"scan view: {scan!r} (inputs now include the scan cell)")

    faults = collapse(scan)
    print(f"collapsed faults: {len(faults)}")

    engine = Podem(scan)
    redundant = Fault("red", 0)
    result = engine.generate(redundant)
    print(f"PODEM on {redundant}: {result.status.value} (a redundancy proof)")

    tests, report = generate_detection_tests(scan, faults, seed=1)
    print(
        f"detection test set: {len(tests)} tests, coverage {report.coverage:.1%}, "
        f"{len(report.untestable)} untestable faults proven"
    )

    fa, fb = Fault("mix", 1), Fault("next", 1)
    outcome = Distinguisher(scan).distinguish(fa, fb)
    print(f"distinguishing {fa} vs {fb}: {outcome.status.value}")
    if outcome.distinguished:
        vector = "".join(str(outcome.test[i]) for i in scan.inputs)
        print(f"  distinguishing vector ({', '.join(scan.inputs)}): {vector}")

    table = ResponseTable.build(scan, report.detected, tests)
    samediff = build(table, config=DictionaryConfig(seed=1)).dictionary
    print(
        f"same/different dictionary: {samediff.size_bits} bits, "
        f"{samediff.indistinguished_pairs()} indistinguished pairs "
        f"(full dictionary would cost {table.n_tests * table.n_faults * table.n_outputs} bits)"
    )


if __name__ == "__main__":
    main()
