"""Diagnose failing chips with each dictionary organisation.

Simulates the scenario the paper's dictionaries exist for: manufactured
chips come back failing, their tester responses are compared against the
precomputed dictionary, and the dictionary returns candidate defect sites.
The script injects (a) a modelled single stuck-at fault and (b) a
non-modelled double fault into the p344 benchmark proxy and shows what
each dictionary concludes.

Usage::

    python examples/diagnose_failing_chip.py [circuit] [seed]
"""

import sys

from repro import (
    Diagnoser,
    DictionaryConfig,
    FullDictionary,
    PassFailDictionary,
    ResponseTable,
    build,
    collapse,
    generate_detection_tests,
    load_circuit,
    observe_defect,
    observe_fault,
    prepare_for_test,
)
from repro.atpg import injected_copy
from repro.sim import FaultSimulator


def diagnose_and_print(dictionaries, observed, truth) -> None:
    for dictionary in dictionaries:
        diagnosis = Diagnoser(dictionary).diagnose(observed, limit=5)
        exact = ", ".join(str(f) for f in diagnosis.exact[:6]) or "(none)"
        print(f"  [{dictionary.kind:^14}] {len(diagnosis.exact):3d} exact candidates: {exact}")
        hit = any(fault in truth for fault, _ in diagnosis.ranked[:5])
        top = ", ".join(f"{fault}({score})" for fault, score in diagnosis.ranked[:3])
        print(f"  {'':16} top ranked: {top}  -> constituent in top-5: {hit}")


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "p344"
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    netlist = prepare_for_test(load_circuit(circuit))
    faults = collapse(netlist)
    tests, _ = generate_detection_tests(netlist, faults, seed=seed)
    simulator = FaultSimulator(netlist, tests)
    detected = [f for f in faults if simulator.detection_word(f)]
    print(
        f"{circuit}: {len(detected)} detected faults, {len(tests)} tests, "
        f"{len(netlist.outputs)} outputs"
    )

    table = ResponseTable.build(netlist, detected, tests)
    samediff = build(
        table, config=DictionaryConfig(seed=seed, calls1=20)
    ).dictionary
    dictionaries = [FullDictionary(table), PassFailDictionary(table), samediff]

    victim = detected[seed % len(detected)]
    print(f"\n--- chip #1: modelled defect, {victim} ---")
    observed = observe_fault(netlist, tests, victim)
    diagnose_and_print(dictionaries, observed, {victim})

    a = detected[(seed * 13 + 1) % len(detected)]
    b = detected[(seed * 29 + 2) % len(detected)]
    print(f"\n--- chip #2: NON-modelled defect, {a} AND {b} simultaneously ---")
    defective = injected_copy(injected_copy(netlist, a), b)
    observed = observe_defect(netlist, defective, tests)
    diagnose_and_print(dictionaries, observed, {a, b})

    print(
        "\nNote how the same/different dictionary's exact candidate sets sit "
        "between full and pass/fail — higher resolution than pass/fail at "
        "nearly the same size."
    )


if __name__ == "__main__":
    main()
