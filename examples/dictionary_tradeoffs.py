"""Ablations: the knobs behind the same/different dictionary.

Explores the design choices the paper discusses — the ``LOWER``
early-termination constant, the random-restart budget (``CALLS1``), the
optional second baseline per test, and the mixed storage scheme — and
prints the resolution/size/runtime trade-off of each.

Usage::

    python examples/dictionary_tradeoffs.py [circuit]
"""

import sys

from repro.experiments import (
    calls_sweep,
    lower_sweep,
    mixed_storage_study,
    multi_baseline_study,
)
from repro.experiments.reporting import format_table


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "p208"

    print(f"ablations on {circuit}, diagnostic test set\n")

    points = lower_sweep(circuit, "diag", lowers=(1, 2, 5, 10, 20, 10**9))
    print(
        format_table(
            ("LOWER", "distinguished pairs", "seconds/call"),
            [(p.lower if p.lower < 10**9 else "inf", p.distinguished, round(p.seconds, 4)) for p in points],
            "E7: LOWER early-termination cutoff (single Procedure 1 call)",
        )
    )
    print()

    points = calls_sweep(circuit, "diag", calls_values=(1, 5, 20, 100))
    print(
        format_table(
            ("CALLS1", "best distinguished", "calls actually run"),
            [
                (p.calls, p.distinguished_procedure1, p.procedure1_calls)
                for p in points
            ],
            "E8: random-restart budget for Procedure 1",
        )
    )
    print()

    points = multi_baseline_study(circuit, "diag", max_extra=2, calls=20)
    print(
        format_table(
            ("baselines/test", "size (bits)", "indistinguished pairs"),
            [(p.baselines_per_test, p.size_bits, p.indistinguished) for p in points],
            "E9: more than one baseline vector per test (Section 2 remark)",
        )
    )
    print()

    mixed = mixed_storage_study(circuit, "diag", calls=20)
    print("E10: mixed storage (Section 2 remark)")
    print(f"  plain same/different size: {mixed.plain_size_bits} bits")
    print(f"  mixed size:                {mixed.mixed_size_bits} bits")
    print(
        f"  ({mixed.fault_free_baselines} of {mixed.n_tests} baselines are the "
        "fault-free vector and need not be stored)"
    )


if __name__ == "__main__":
    main()
