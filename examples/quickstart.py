"""Quickstart: build all three dictionaries for a small scan circuit.

Runs the complete flow on ISCAS-89 s27 (embedded): full-scan conversion,
fault collapsing, diagnostic test generation, response capture, dictionary
construction — and prints the size/resolution comparison that is the
paper's core message.  Also reproduces the paper's worked example
(Tables 1-5) verbatim.

Usage::

    python examples/quickstart.py
"""

from repro import (
    DictionaryConfig,
    DictionarySizes,
    FullDictionary,
    PassFailDictionary,
    ResponseTable,
    build,
    collapse,
    generate_diagnostic_tests,
    load_circuit,
    prepare_for_test,
)
from repro.experiments.example_tables import render_all
from repro.experiments.reporting import format_table


def main() -> None:
    print("=== The paper's worked example (Tables 1-5) ===\n")
    print(render_all())

    print("\n\n=== The same flow on a real circuit: s27 (full scan) ===\n")
    netlist = prepare_for_test(load_circuit("s27"))
    print(f"circuit: {netlist!r}")

    faults = collapse(netlist)
    print(f"collapsed stuck-at faults: {len(faults)}")

    tests, report = generate_diagnostic_tests(netlist, faults, seed=0)
    print(
        f"diagnostic test set: {len(tests)} tests "
        f"(coverage {report.generation.coverage:.1%}, "
        f"{len(report.equivalent_pairs)} provably equivalent pairs)"
    )

    table = ResponseTable.build(netlist, faults, tests)
    full = FullDictionary(table)
    passfail = PassFailDictionary(table)
    built = build(table, config=DictionaryConfig(seed=0))
    samediff, build_report = built.dictionary, built.report

    sizes = DictionarySizes.of(table)
    print()
    print(
        format_table(
            ("dictionary", "size (bits)", "indistinguished pairs"),
            [
                ("full", sizes.full, full.indistinguished_pairs()),
                ("pass/fail", sizes.pass_fail, passfail.indistinguished_pairs()),
                (
                    "same/different",
                    sizes.same_different,
                    samediff.indistinguished_pairs(),
                ),
            ],
            "s27, diagnostic test set",
        )
    )
    print()
    print(
        f"Procedure 1 ran {build_report.procedure1_calls} times; "
        f"Procedure 2 replaced {build_report.replacements} baselines."
    )
    print("baseline output vectors (one per test):")
    for j in range(min(5, table.n_tests)):
        marker = "(fault-free)" if samediff.baselines[j] == () else ""
        print(f"  t{j}: {samediff.baseline_vector(j)} {marker}")
    if table.n_tests > 5:
        print(f"  ... and {table.n_tests - 5} more")


if __name__ == "__main__":
    main()
