"""Regenerate the paper's Table 6.

Runs the complete evaluation — diagnostic and 10-detection test sets,
three dictionary organisations, Procedures 1 and 2 — for a set of
benchmark circuits and prints the table in the paper's layout.

Usage::

    python examples/reproduce_table6.py                 # default sweep
    python examples/reproduce_table6.py p208 p298       # chosen circuits
    REPRO_FULL_SWEEP=1 python examples/reproduce_table6.py   # + big proxies
    REPRO_JOBS=4 python examples/reproduce_table6.py    # parallel restarts
    REPRO_BACKEND=naive python examples/reproduce_table6.py  # reference kernels
    REPRO_EXAMPLES_QUICK=1 python examples/reproduce_table6.py  # seconds, one cell

Expect a few minutes for the default sweep (test generation dominates).
``REPRO_EXAMPLES_QUICK=1`` (the CI setting) shrinks the run to a single
small cell with a reduced restart budget so the script stays a smoke
test rather than the full evaluation.
``REPRO_JOBS`` fans the Procedure 1 restarts out over worker processes;
the numbers are identical to the serial run (docs/parallelism.md).
``REPRO_BACKEND`` picks the kernel backend (``packed``, the default, or
the pure-Python ``naive`` reference); every backend produces the same
table bit for bit (docs/kernels.md).  Each row is built through
:func:`repro.api.build` with a ``DictionaryConfig`` — see that module for
the programmatic entry point.
"""

import os
import sys
import time

from repro.experiments import (
    DEFAULT_CIRCUITS,
    EXTENDED_CIRCUITS,
    render_table6,
    table6_row,
)


def main() -> None:
    quick = bool(os.environ.get("REPRO_EXAMPLES_QUICK"))
    if len(sys.argv) > 1:
        circuits = sys.argv[1:]
    elif quick:
        circuits = ["p208"]
    elif os.environ.get("REPRO_FULL_SWEEP"):
        circuits = list(DEFAULT_CIRCUITS) + list(EXTENDED_CIRCUITS)
    else:
        circuits = list(DEFAULT_CIRCUITS)

    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    calls = 5 if quick else 100
    test_types = ("diag",) if quick else ("diag", "10det")
    rows = []
    for circuit in circuits:
        for test_type in test_types:
            start = time.perf_counter()
            row = table6_row(circuit, test_type, seed=0, jobs=jobs, calls=calls)
            elapsed = time.perf_counter() - start
            rows.append(row)
            print(
                f"[{elapsed:7.1f}s] {circuit:>6} {test_type:>5}: |T|={row.n_tests:4d} "
                f"faults={row.n_faults:5d} ind p/f={row.indist_passfail:6d} "
                f"ind s/d={row.indist_sd_replace:6d} ind full={row.indist_full:6d}"
            )
    print()
    print(render_table6(rows))


if __name__ == "__main__":
    main()
