"""Same/different dictionaries for a NON-scan circuit.

The paper evaluates scan designs, where a test is one vector.  For a
non-scan sequential circuit a test is a *sequence* of vectors and the
response is a per-cycle output stream — and the same/different idea
carries over verbatim once an "output vector" is read as the whole
stream: one baseline stream per sequence, one bit per (fault, sequence).
This example runs that extension on the embedded s27 without scan.

Usage::

    python examples/sequential_dictionary.py [n_sequences] [length]
"""

import sys

from repro import (
    DictionaryConfig,
    FullDictionary,
    PassFailDictionary,
    build,
    collapse,
    load_circuit,
)
from repro.sim import random_sequences, sequential_response_table
from repro.experiments.reporting import format_table


def main() -> None:
    # Defaults chosen so the test set is tight enough that the dictionary
    # organisation matters (with many long sequences even pass/fail
    # saturates on a circuit this small).
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    netlist = load_circuit("s27")
    print(f"circuit: {netlist!r} (NOT scanned — state is only reachable sequentially)")
    faults = collapse(netlist)
    sequences = random_sequences(netlist, count=count, length=length, seed=1)
    print(f"workload: {count} random sequences x {length} cycles")

    table = sequential_response_table(netlist, sequences, faults)
    detected = sum(1 for i in range(table.n_faults) if table.detection_word(i))
    print(
        f"responses captured: {table.n_faults} faults x {count} sequences, "
        f"{table.n_outputs} observation points (cycle x output); "
        f"{detected} faults detected"
    )

    full = FullDictionary(table)
    passfail = PassFailDictionary(table)
    built = build(table, config=DictionaryConfig(seed=0, calls1=20))
    samediff, report = built.dictionary, built.report

    print()
    print(
        format_table(
            ("dictionary", "size (bits)", "indistinguished pairs"),
            [
                ("full", full.size_bits, full.indistinguished_pairs()),
                ("pass/fail", passfail.size_bits, passfail.indistinguished_pairs()),
                ("same/different", samediff.size_bits, samediff.indistinguished_pairs()),
            ],
            "s27 (non-scan), random sequence test set",
        )
    )
    print(
        f"\nProcedure 1 ran {report.procedure1_calls}x; note the baseline for a "
        "sequence is a whole output stream, so the s/d overhead is "
        f"{count}x{table.n_outputs} = {count * table.n_outputs} bits here."
    )


if __name__ == "__main__":
    main()
