"""The same/different dictionary on a second fault model: transition faults.

The paper's construction never looks inside the fault model — it only
needs the table of responses.  This example builds two-pattern
(launch/capture) test sets for gross-delay faults, captures the response
table, and shows the familiar size/resolution picture on the transition
model.

Usage::

    python examples/transition_faults.py [circuit]
"""

import sys

from repro.atpg.transition_atpg import generate_transition_tests
from repro.api import DictionaryConfig, build
from repro.dictionaries import (
    DictionarySizes,
    FullDictionary,
    PassFailDictionary,
)
from repro.experiments.reporting import format_table
from repro.faults.transition import transition_faults, transition_response_table
from repro import load_circuit, prepare_for_test


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "p208"
    netlist = prepare_for_test(load_circuit(circuit))
    faults = transition_faults(netlist)
    print(f"{circuit}: {len(faults)} transition faults (slow-to-rise/fall per net)")

    launch, capture, report = generate_transition_tests(netlist, faults, seed=0)
    print(
        f"two-pattern test set: {len(launch)} (launch, capture) pairs; "
        f"{len(report['detected'])} detected, "
        f"{len(report['untestable'])} proven untestable, "
        f"{len(report['aborted'])} aborted"
    )

    table = transition_response_table(netlist, launch, capture, report["detected"])
    sizes = DictionarySizes.of(table)
    full = FullDictionary(table)
    passfail = PassFailDictionary(table)
    built = build(table, config=DictionaryConfig(seed=0, calls1=20))
    samediff, build_report = built.dictionary, built.report
    print()
    print(
        format_table(
            ("dictionary", "size (bits)", "indistinguished pairs"),
            [
                ("full", sizes.full, full.indistinguished_pairs()),
                ("pass/fail", sizes.pass_fail, passfail.indistinguished_pairs()),
                ("same/different", sizes.same_different, samediff.indistinguished_pairs()),
            ],
            f"{circuit}, transition faults, two-pattern tests",
        )
    )
    print(
        f"\nProcedure 1 ran {build_report.procedure1_calls}x, Procedure 2 replaced "
        f"{build_report.replacements} baselines — the construction is fault-model agnostic."
    )


if __name__ == "__main__":
    main()
