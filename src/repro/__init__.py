"""repro — a reproduction of "A Same/Different Fault Dictionary" (DATE 2008).

The package implements the paper's same/different fault dictionary on top
of a complete from-scratch substrate: gate-level netlists, bit-parallel
logic and stuck-at fault simulation, PODEM-based ATPG (detection,
n-detection and diagnostic test sets), fault collapsing, the three
dictionary organisations (full, pass/fail, same/different with Procedures
1 and 2), a cause-effect diagnosis engine and the Table 6 experiment
harness.

Quickstart (the public construction surface is :mod:`repro.api`)::

    from repro import load_circuit, prepare_for_test, collapse
    from repro import generate_diagnostic_tests
    from repro import DictionaryConfig, build

    netlist = prepare_for_test(load_circuit("s27"))
    faults = collapse(netlist)
    tests, _ = generate_diagnostic_tests(netlist, faults)
    built = build(netlist=netlist, faults=faults, tests=tests,
                  config=DictionaryConfig(calls1=100))
    passfail = build(table=built.table, kind="pass-fail")
    print(built.dictionary.indistinguished_pairs(),
          passfail.dictionary.indistinguished_pairs())
"""

from .api import BuiltDictionary, DictionaryConfig, build, serve, serve_daemon
from .circuit import (
    GateType,
    GeneratorSpec,
    Netlist,
    available_circuits,
    full_scan,
    generate_netlist,
    load_circuit,
    prepare_for_test,
)
from .faults import Fault, all_faults, checkpoint_faults, collapse
from .sim import FaultSimulator, ResponseTable, TestSet, simulate
from .atpg import (
    Distinguisher,
    Podem,
    generate_detection_tests,
    generate_diagnostic_tests,
    generate_ndetect_tests,
)
from .dictionaries import (
    DictionarySizes,
    FullDictionary,
    PassFailDictionary,
    SameDifferentDictionary,
    build_same_different,
)
from .diagnosis import Diagnoser, observe_defect, observe_fault
from .experiments import render_table6, run_table6, table6_row
from .obs import (
    MetricsRegistry,
    Tracer,
    get_default_registry,
    scoped_registry,
    scoped_tracer,
    trace_span,
)

__version__ = "1.0.0"

__all__ = [
    "BuiltDictionary",
    "Diagnoser",
    "DictionaryConfig",
    "DictionarySizes",
    "Distinguisher",
    "Fault",
    "FaultSimulator",
    "FullDictionary",
    "GateType",
    "GeneratorSpec",
    "MetricsRegistry",
    "Netlist",
    "PassFailDictionary",
    "Podem",
    "ResponseTable",
    "SameDifferentDictionary",
    "TestSet",
    "Tracer",
    "all_faults",
    "available_circuits",
    "build",
    "build_same_different",
    "checkpoint_faults",
    "collapse",
    "full_scan",
    "generate_detection_tests",
    "generate_diagnostic_tests",
    "generate_ndetect_tests",
    "generate_netlist",
    "get_default_registry",
    "load_circuit",
    "observe_defect",
    "observe_fault",
    "prepare_for_test",
    "render_table6",
    "run_table6",
    "scoped_registry",
    "scoped_tracer",
    "serve",
    "serve_daemon",
    "simulate",
    "table6_row",
    "trace_span",
]
