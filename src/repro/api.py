"""The public facade: one entry point each for building and serving.

Three PRs of growth left the construction surface scattered across
``build_same_different`` / ``select_baselines`` / ``replace_baselines``,
each with its own loose kwargs.  This module is the one documented way in:

>>> from repro.api import DictionaryConfig, build
>>> built = build(table, kind="same-different",
...               config=DictionaryConfig(calls1=100, jobs=4))
>>> built.dictionary.indistinguished_pairs(), built.report.procedure1_calls

``build`` accepts either a prepared
:class:`~repro.sim.responses.ResponseTable` or the raw
``netlist + faults + tests`` triple (it fault-simulates for you), and the
:class:`DictionaryConfig` carries every tuning knob — including which
kernel backend (:mod:`repro.kernels`) runs the inner loops.  The legacy
entry points remain as thin delegates that emit ``DeprecationWarning`` on
the old loose-kwarg shapes.

:func:`serve` is the matching serve-side entry point: it stands up a
:class:`~repro.serve.DiagnosisServer` over packed artifacts for batch
and session diagnosis (see ``docs/serving.md``):

>>> from repro.api import serve
>>> from repro.serve import ServeConfig
>>> server = serve("p208.rfd", config=ServeConfig(deadline_ms=250))
>>> outcomes = server.serve_jsonl(open("chips.jsonl"))

and :func:`serve_daemon` wraps that server in the asyncio network
daemon (``docs/daemon.md``) for the long-running deployment shape.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Sequence

from .dictionaries.base import FaultDictionary
from .dictionaries.full import FullDictionary
from .dictionaries.passfail import PassFailDictionary
from .dictionaries.samediff import BuildReport, _build_impl
from .obs import ProgressReporter
from .sim.responses import ResponseTable

#: Dictionary kinds :func:`build` understands.
KINDS = ("same-different", "pass-fail", "full")


@dataclass(frozen=True)
class DictionaryConfig:
    """Every tuning knob of a dictionary build, in one frozen value.

    Defaults reproduce the paper's settings: ``CALLS1 = 100`` restarts,
    ``LOWER = 10``, Procedure 2 enabled, serial execution.  ``backend``
    selects the kernel backend by name (``None`` = the process default,
    i.e. ``$REPRO_BACKEND`` or ``packed``).
    """

    seed: int = 0
    calls1: int = 100
    lower: int = 10
    jobs: int = 1
    procedure2: bool = True
    backend: Optional[str] = None


@dataclass
class BuiltDictionary:
    """What :func:`build` hands back: the dictionary plus its provenance."""

    dictionary: FaultDictionary
    table: ResponseTable
    kind: str
    config: DictionaryConfig
    #: Construction statistics; ``None`` for the kinds that have no
    #: construction procedure (pass-fail, full).
    report: Optional[BuildReport] = None


def build(
    table: Optional[ResponseTable] = None,
    *,
    netlist=None,
    faults: Optional[Sequence] = None,
    tests=None,
    kind: str = "same-different",
    config: Optional[DictionaryConfig] = None,
    progress: Optional[ProgressReporter] = None,
    cache_dir=None,
    checkpoint_dir=None,
    resume: bool = False,
    checkpoint_every: int = 1,
) -> BuiltDictionary:
    """Build a fault dictionary of the requested ``kind``.

    Pass either a prepared ``table`` or the ``netlist``/``faults``/``tests``
    triple (the response table is then fault-simulated here).  ``kind`` is
    one of ``"same-different"`` (the paper's Procedures 1/2 with random
    restarts), ``"pass-fail"``, or ``"full"``.  All tuning lives in
    ``config``; ``progress`` receives per-restart events for the
    same-different build.

    ``cache_dir`` names an on-disk build cache
    (:class:`~repro.store.cache.BuildCache`): when an artifact whose
    content hash matches the build inputs exists there, it is loaded and
    returned — for the ``netlist`` entry path that skips even the fault
    simulation — and otherwise the fresh build is stored for next time.
    See ``docs/artifacts.md`` for the cache-key rules.

    ``checkpoint_dir`` makes a long same-different build resumable: the
    restart fold writes an ``RFDC`` checkpoint
    (:mod:`repro.store.checkpoint`) keyed by the same content hash the
    cache uses, every ``checkpoint_every`` folded restarts.  With
    ``resume=True`` a matching checkpoint left by a killed build is
    restored before the first restart runs, and the finished build is
    byte-identical to an uninterrupted one (``docs/scaling.md``).
    Checkpoints only apply to ``kind="same-different"`` — the other
    kinds have no restart loop — and a completed build removes its
    checkpoint file.
    """
    if table is None:
        if netlist is None or faults is None or tests is None:
            raise ValueError(
                "build() needs either table= or all of netlist=, faults=, tests="
            )
    elif netlist is not None or faults is not None or tests is not None:
        raise ValueError(
            "build() takes either table= or netlist=/faults=/tests=, not both"
        )
    if resume and checkpoint_dir is None:
        raise ValueError("build(resume=True) requires checkpoint_dir=")
    config = config if config is not None else DictionaryConfig()
    if kind not in KINDS:
        raise ValueError(f"unknown dictionary kind {kind!r} (expected one of {KINDS})")

    cache = key = None
    if cache_dir is not None or checkpoint_dir is not None:
        # Imported lazily: repro.store imports this module.
        from .store import BuildCache, build_inputs_hash, table_content_hash

        key = (
            table_content_hash(table, kind, config)
            if table is not None
            else build_inputs_hash(netlist, faults, tests, kind, config)
        )
        if cache_dir is not None:
            cache = BuildCache(cache_dir)
            cached = cache.get(key)
            if cached is not None:
                return cached

    if table is None:
        table = ResponseTable.build(netlist, faults, tests)
    if kind == "same-different":
        checkpoint = None
        if checkpoint_dir is not None:
            from .store.checkpoint import CheckpointManager

            checkpoint = CheckpointManager(
                checkpoint_dir, every=checkpoint_every
            ).session(key, kind=kind, config=config, resume=resume)
        dictionary, report = _build_impl(table, config, progress, checkpoint)
        built = BuiltDictionary(dictionary, table, kind, config, report)
    elif kind == "pass-fail":
        built = BuiltDictionary(PassFailDictionary(table), table, kind, config)
    else:
        built = BuiltDictionary(FullDictionary(table), table, kind, config)
    if cache is not None:
        cache.put(built, key)
    return built


#: Loose kwargs :func:`serve` still accepts under deprecation; each maps
#: straight onto the :class:`~repro.serve.ServeConfig` field of the same
#: name.
_SERVE_LEGACY_KWARGS = (
    "pool_size", "workers", "deadline_ms", "max_retries",
    "retry_backoff_ms", "limit",
)


def serve(artifact=None, *, config=None, **legacy):
    """Stand up a batch diagnosis server over packed artifacts.

    ``artifact`` is the default artifact path for requests that do not
    name their own; ``config`` is a :class:`~repro.serve.ServeConfig`
    carrying the whole operating envelope (pool size, workers, deadline,
    retry policy, default candidate limit).  Returns a
    :class:`~repro.serve.DiagnosisServer`; see ``docs/serving.md`` for
    batch semantics and reason codes.

    The pre-PR-8 loose kwargs (``pool_size=``, ``workers=``,
    ``deadline_ms=``, ``max_retries=``, ``retry_backoff_ms=``,
    ``limit=``) still work but emit ``DeprecationWarning`` — pass a
    ``ServeConfig`` instead.
    """
    # Imported lazily: repro.serve imports repro.store, which imports us.
    from .serve import DiagnosisServer, ServeConfig

    if legacy:
        unknown = set(legacy) - set(_SERVE_LEGACY_KWARGS)
        if unknown:
            raise TypeError(
                f"serve() got unexpected keyword arguments {sorted(unknown)}"
            )
        if config is not None:
            raise ValueError(
                "serve() takes either config= or the legacy loose kwargs, "
                f"not both (got config= and {sorted(legacy)})"
            )
        warnings.warn(
            "passing loose keyword arguments to repro.api.serve() is "
            "deprecated; pass config=ServeConfig(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        config = ServeConfig(**legacy)
    if config is None:
        config = ServeConfig()
    return DiagnosisServer(config, default_artifact=artifact)


def serve_daemon(
    artifact=None,
    *,
    config=None,
    serve_config=None,
    host: str = "127.0.0.1",
    port: int = 8132,
    **daemon_kwargs,
):
    """Construct the asyncio network daemon (without starting it).

    The config-first counterpart of :func:`serve` for the long-running
    deployment shape: returns a
    :class:`~repro.serve.daemon.DiagnosisDaemon` wired over a
    :class:`~repro.serve.DiagnosisServer`.  Drive it with
    ``asyncio.run(daemon.run_until_stopped())``, or use
    :func:`repro.serve.daemon.start_in_thread` to run it on a background
    thread (the pattern the daemon test suite and benchmarks use).

    ``config`` is a full :class:`~repro.serve.daemon.DaemonConfig` (all
    other arguments must then be left at their defaults); otherwise one
    is assembled from ``artifact``, ``serve_config``, ``host``/``port``
    and any remaining ``DaemonConfig`` fields passed as keywords
    (``max_inflight=``, ``tenant_quotas=``, ...).  Protocol and
    operations guidance live in ``docs/daemon.md``.
    """
    from .serve import ServeConfig
    from .serve.daemon import DaemonConfig, DiagnosisDaemon

    if config is not None:
        if artifact is not None or serve_config is not None or daemon_kwargs:
            raise ValueError(
                "serve_daemon() takes either a full config= or the "
                "individual fields, not both"
            )
        return DiagnosisDaemon(config)
    config = DaemonConfig(
        host=host,
        port=port,
        serve=serve_config if serve_config is not None else ServeConfig(),
        default_artifact=str(artifact) if artifact is not None else None,
        **daemon_kwargs,
    )
    return DiagnosisDaemon(config)
