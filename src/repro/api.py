"""The public facade: one entry point each for building and serving.

Three PRs of growth left the construction surface scattered across
``build_same_different`` / ``select_baselines`` / ``replace_baselines``,
each with its own loose kwargs.  This module is the one documented way in:

>>> from repro.api import DictionaryConfig, build
>>> built = build(table, kind="same-different",
...               config=DictionaryConfig(calls1=100, jobs=4))
>>> built.dictionary.indistinguished_pairs(), built.report.procedure1_calls

``build`` accepts either a prepared
:class:`~repro.sim.responses.ResponseTable` or the raw
``netlist + faults + tests`` triple (it fault-simulates for you), and the
:class:`DictionaryConfig` carries every tuning knob — including which
kernel backend (:mod:`repro.kernels`) runs the inner loops.  The legacy
entry points remain as thin delegates that emit ``DeprecationWarning`` on
the old loose-kwarg shapes.

:func:`serve` is the matching serve-side entry point: it stands up a
:class:`~repro.serve.DiagnosisServer` over packed artifacts for batch
and session diagnosis (see ``docs/serving.md``):

>>> from repro.api import serve
>>> server = serve("p208.rfd", deadline_ms=250)
>>> outcomes = server.serve_jsonl(open("chips.jsonl"))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .dictionaries.base import FaultDictionary
from .dictionaries.full import FullDictionary
from .dictionaries.passfail import PassFailDictionary
from .dictionaries.samediff import BuildReport, _build_impl
from .obs import ProgressReporter
from .sim.responses import ResponseTable

#: Dictionary kinds :func:`build` understands.
KINDS = ("same-different", "pass-fail", "full")


@dataclass(frozen=True)
class DictionaryConfig:
    """Every tuning knob of a dictionary build, in one frozen value.

    Defaults reproduce the paper's settings: ``CALLS1 = 100`` restarts,
    ``LOWER = 10``, Procedure 2 enabled, serial execution.  ``backend``
    selects the kernel backend by name (``None`` = the process default,
    i.e. ``$REPRO_BACKEND`` or ``packed``).
    """

    seed: int = 0
    calls1: int = 100
    lower: int = 10
    jobs: int = 1
    procedure2: bool = True
    backend: Optional[str] = None


@dataclass
class BuiltDictionary:
    """What :func:`build` hands back: the dictionary plus its provenance."""

    dictionary: FaultDictionary
    table: ResponseTable
    kind: str
    config: DictionaryConfig
    #: Construction statistics; ``None`` for the kinds that have no
    #: construction procedure (pass-fail, full).
    report: Optional[BuildReport] = None


def build(
    table: Optional[ResponseTable] = None,
    *,
    netlist=None,
    faults: Optional[Sequence] = None,
    tests=None,
    kind: str = "same-different",
    config: Optional[DictionaryConfig] = None,
    progress: Optional[ProgressReporter] = None,
    cache_dir=None,
) -> BuiltDictionary:
    """Build a fault dictionary of the requested ``kind``.

    Pass either a prepared ``table`` or the ``netlist``/``faults``/``tests``
    triple (the response table is then fault-simulated here).  ``kind`` is
    one of ``"same-different"`` (the paper's Procedures 1/2 with random
    restarts), ``"pass-fail"``, or ``"full"``.  All tuning lives in
    ``config``; ``progress`` receives per-restart events for the
    same-different build.

    ``cache_dir`` names an on-disk build cache
    (:class:`~repro.store.cache.BuildCache`): when an artifact whose
    content hash matches the build inputs exists there, it is loaded and
    returned — for the ``netlist`` entry path that skips even the fault
    simulation — and otherwise the fresh build is stored for next time.
    See ``docs/artifacts.md`` for the cache-key rules.
    """
    if table is None:
        if netlist is None or faults is None or tests is None:
            raise ValueError(
                "build() needs either table= or all of netlist=, faults=, tests="
            )
    elif netlist is not None or faults is not None or tests is not None:
        raise ValueError(
            "build() takes either table= or netlist=/faults=/tests=, not both"
        )
    config = config if config is not None else DictionaryConfig()
    if kind not in KINDS:
        raise ValueError(f"unknown dictionary kind {kind!r} (expected one of {KINDS})")

    cache = key = None
    if cache_dir is not None:
        # Imported lazily: repro.store imports this module.
        from .store import BuildCache, build_inputs_hash, table_content_hash

        cache = BuildCache(cache_dir)
        key = (
            table_content_hash(table, kind, config)
            if table is not None
            else build_inputs_hash(netlist, faults, tests, kind, config)
        )
        cached = cache.get(key)
        if cached is not None:
            return cached

    if table is None:
        table = ResponseTable.build(netlist, faults, tests)
    if kind == "same-different":
        dictionary, report = _build_impl(table, config, progress)
        built = BuiltDictionary(dictionary, table, kind, config, report)
    elif kind == "pass-fail":
        built = BuiltDictionary(PassFailDictionary(table), table, kind, config)
    else:
        built = BuiltDictionary(FullDictionary(table), table, kind, config)
    if cache is not None:
        cache.put(built, key)
    return built


def serve(
    artifact=None,
    *,
    pool_size: int = 8,
    workers: int = 4,
    deadline_ms: Optional[float] = None,
    max_retries: int = 2,
    retry_backoff_ms: float = 10.0,
    limit: int = 10,
):
    """Stand up a batch diagnosis server over packed artifacts.

    ``artifact`` is the default artifact path for requests that do not
    name their own; every other argument populates a
    :class:`~repro.serve.ServeConfig` — ``pool_size`` bounds the LRU
    artifact pool, ``workers`` the fan-out threads, ``deadline_ms`` the
    per-request budget (``None`` = none), ``max_retries`` /
    ``retry_backoff_ms`` the transient-error policy, and ``limit`` the
    default ranked-candidate count.  Returns a
    :class:`~repro.serve.DiagnosisServer`; see ``docs/serving.md`` for
    batch semantics and reason codes.
    """
    # Imported lazily: repro.serve imports repro.store, which imports us.
    from .serve import DiagnosisServer, ServeConfig

    config = ServeConfig(
        pool_size=pool_size,
        workers=workers,
        deadline_ms=deadline_ms,
        max_retries=max_retries,
        retry_backoff_ms=retry_backoff_ms,
        limit=limit,
    )
    return DiagnosisServer(config, default_artifact=artifact)
