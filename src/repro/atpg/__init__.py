"""Automatic test pattern generation: PODEM and test-set drivers."""

from .compact import compact_detection_tests
from .detect import GenerationReport, generate_detection_tests
from .diagnostic import (
    DiagnosticReport,
    generate_diagnostic_tests,
    response_classes,
)
from .distinguish import (
    DistinguishResult,
    Distinguisher,
    build_difference_miter,
    build_miter,
    inject_fault,
    injected_copy,
)
from .ndetect import generate_ndetect_tests
from .podem import Podem, PodemResult, Status
from .sat import BudgetExceeded, Solver
from .satatpg import SatAtpg
from .testability import controllability, observability
from .transition_atpg import (
    TransitionAtpg,
    TransitionResult,
    generate_transition_tests,
)
from .timeframe import (
    SequenceGenerator,
    SequenceResult,
    sequential_diagnostic_set,
    sequential_test_set,
    unroll,
)

__all__ = [
    "DiagnosticReport",
    "DistinguishResult",
    "Distinguisher",
    "BudgetExceeded",
    "GenerationReport",
    "Podem",
    "PodemResult",
    "SatAtpg",
    "SequenceGenerator",
    "SequenceResult",
    "Solver",
    "Status",
    "TransitionAtpg",
    "TransitionResult",
    "build_difference_miter",
    "build_miter",
    "compact_detection_tests",
    "controllability",
    "generate_detection_tests",
    "generate_diagnostic_tests",
    "generate_ndetect_tests",
    "generate_transition_tests",
    "inject_fault",
    "injected_copy",
    "observability",
    "response_classes",
    "sequential_diagnostic_set",
    "sequential_test_set",
    "unroll",
]
