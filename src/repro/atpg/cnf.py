"""Tseitin encoding of netlists into CNF.

Each net becomes one SAT variable; every gate contributes the standard
Tseitin clauses relating its output variable to its input variables.  The
encoding is the bridge between the netlist world and the
:mod:`repro.atpg.sat` solver.
"""

from __future__ import annotations

from typing import Dict

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist
from .sat import Solver


class CnfEncoder:
    """Encodes one combinational netlist; owns the net→variable map."""

    def __init__(self, netlist: Netlist, solver: Solver = None) -> None:
        if not netlist.is_combinational:
            raise ValueError("CNF encoding requires a combinational netlist")
        self.netlist = netlist
        self.solver = solver or Solver()
        self.variable: Dict[str, int] = {}
        for net in netlist.topological_order():
            self.variable[net] = self.solver.new_var()
        for net in netlist.topological_order():
            self._encode_gate(net)

    # ------------------------------------------------------------------
    def _encode_gate(self, net: str) -> None:
        gate = self.netlist.gates[net]
        out = self.variable[net]
        kind = gate.gate_type
        add = self.solver.add_clause
        if kind is GateType.INPUT:
            return
        if kind is GateType.CONST0:
            add([-out])
            return
        if kind is GateType.CONST1:
            add([out])
            return
        ins = [self.variable[i] for i in gate.inputs]
        if kind is GateType.BUF:
            add([-out, ins[0]])
            add([out, -ins[0]])
        elif kind is GateType.NOT:
            add([-out, -ins[0]])
            add([out, ins[0]])
        elif kind in (GateType.AND, GateType.NAND):
            y = out if kind is GateType.AND else -out
            # y <-> AND(ins)
            for i in ins:
                add([-y, i])
            add([y] + [-i for i in ins])
        elif kind in (GateType.OR, GateType.NOR):
            y = out if kind is GateType.OR else -out
            for i in ins:
                add([y, -i])
            add([-y] + list(ins))
        elif kind in (GateType.XOR, GateType.XNOR):
            # Chain binary XORs through fresh variables.
            accumulator = ins[0]
            for i in ins[1:-1]:
                fresh = self.solver.new_var()
                self._xor2(fresh, accumulator, i)
                accumulator = fresh
            target = out if kind is GateType.XOR else -out
            self._xor2(target, accumulator, ins[-1])
        elif kind is GateType.DFF:
            raise ValueError("DFFs must be removed (scan/unroll) before encoding")
        else:
            raise ValueError(f"cannot encode gate type {kind.value}")

    def _xor2(self, y: int, a: int, b: int) -> None:
        add = self.solver.add_clause
        add([-y, a, b])
        add([-y, -a, -b])
        add([y, -a, b])
        add([y, a, -b])

    # ------------------------------------------------------------------
    def literal(self, net: str, value: int) -> int:
        """The literal asserting ``net == value``."""
        variable = self.variable[net]
        return variable if value else -variable

    def extract_inputs(self, model: Dict[int, bool]) -> Dict[str, int]:
        """Primary-input assignment from a SAT model (unassigned PIs -> 0)."""
        return {
            net: int(model.get(self.variable[net], False))
            for net in self.netlist.inputs
        }


def solve_output_one(
    netlist: Netlist,
    output: str,
    max_conflicts: int = None,
) -> "Dict[str, int] | None":
    """Find an input vector setting ``output`` to 1, or prove none exists.

    The workhorse of SAT-based ATPG: applied to a miter output this
    decides detectability / distinguishability exactly.
    """
    encoder = CnfEncoder(netlist)
    encoder.solver.add_clause([encoder.literal(output, 1)])
    model = encoder.solver.solve(max_conflicts=max_conflicts)
    if model is None:
        return None
    return encoder.extract_inputs(model)
