"""Static test set compaction.

Reverse-order compaction: walk the tests from last to first and drop any
test whose detected faults are all detected at least twice among the tests
still retained.  This is the classical cheap pass; it never reduces fault
coverage.
"""

from __future__ import annotations

from typing import List, Sequence

from ..circuit.netlist import Netlist
from ..faults.model import Fault
from ..sim.bits import iter_bits
from ..sim.faultsim import FaultSimulator
from ..sim.patterns import TestSet


def compact_detection_tests(
    netlist: Netlist, tests: TestSet, faults: Sequence[Fault]
) -> TestSet:
    """Reverse-order compaction preserving the detection of every fault."""
    if not len(tests):
        return tests
    simulator = FaultSimulator(netlist, tests)
    detectors: List[List[int]] = [[] for _ in range(len(tests))]
    counts: List[int] = []
    for index, fault in enumerate(faults):
        word = simulator.detection_word(fault)
        counts.append(0)
        for j in iter_bits(word):
            detectors[j].append(index)
            counts[index] += 1
    keep = [True] * len(tests)
    for j in reversed(range(len(tests))):
        if all(counts[i] >= 2 for i in detectors[j]):
            keep[j] = False
            for i in detectors[j]:
                counts[i] -= 1
    return tests.subset([j for j in range(len(tests)) if keep[j]])
