"""Single-detection test set generation.

Two phases, the standard recipe: a cheap random-pattern phase that retains
only useful vectors, then deterministic PODEM for every fault the random
phase missed.  Finishes with reverse-order compaction.  The result records
per-fault outcomes so callers can separate untestable from aborted faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from ..circuit.netlist import Netlist
from ..faults.model import Fault
from ..obs import get_default_registry, trace_span
from ..sim.faultsim import FaultSimulator
from ..sim.patterns import TestSet
from .compact import compact_detection_tests
from .podem import Podem, Status


@dataclass
class GenerationReport:
    """Outcome summary of a test generation run."""

    detected: List[Fault] = field(default_factory=list)
    untestable: List[Fault] = field(default_factory=list)
    aborted: List[Fault] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.untestable) + len(self.aborted)
        return len(self.detected) / total if total else 1.0

    @property
    def fault_efficiency(self) -> float:
        """Detected + proven-untestable over all faults (ATPG quality metric)."""
        total = len(self.detected) + len(self.untestable) + len(self.aborted)
        classified = len(self.detected) + len(self.untestable)
        return classified / total if total else 1.0


def generate_detection_tests(
    netlist: Netlist,
    faults: Sequence[Fault],
    seed: int = 0,
    backtrack_limit: int = 512,
    random_batch: int = 64,
    max_stale_batches: int = 3,
    compact: bool = True,
) -> "tuple[TestSet, GenerationReport]":
    """Generate a compacted test set detecting every testable fault.

    Random batches are retained pattern-by-pattern while they keep paying
    off; after ``max_stale_batches`` consecutive batches that detect
    nothing new, PODEM takes over for the remainder.
    """
    rng = random.Random(seed)
    tests = TestSet(netlist.inputs)
    undetected: Set[int] = set(range(len(faults)))
    report = GenerationReport()

    registry = get_default_registry()

    # --- random phase -------------------------------------------------
    stale = 0
    with trace_span("atpg.detect.random_phase", faults=len(faults)):
        while undetected and stale < max_stale_batches:
            batch = TestSet.random(
                netlist.inputs, random_batch, seed=rng.getrandbits(32)
            )
            simulator = FaultSimulator(netlist, batch)
            useful: Dict[int, List[int]] = {}
            for index in sorted(undetected):
                word = simulator.detection_word(faults[index])
                if word:
                    first = (word & -word).bit_length() - 1
                    useful.setdefault(first, []).append(index)
            if not useful:
                stale += 1
                continue
            stale = 0
            for pattern in sorted(useful):
                tests.append(batch[pattern])
                registry.counter("atpg.detect.random_tests").inc()
                for index in useful[pattern]:
                    undetected.discard(index)
                    report.detected.append(faults[index])

    # --- deterministic phase -------------------------------------------
    engine = Podem(netlist, backtrack_limit=backtrack_limit, rng=rng)
    with trace_span("atpg.detect.podem_phase", targets=len(undetected)):
        pending = sorted(undetected)
        position = 0
        while position < len(pending):
            index = pending[position]
            position += 1
            if index not in undetected:
                continue
            result = engine.generate(faults[index])
            if result.status is Status.UNTESTABLE:
                undetected.discard(index)
                report.untestable.append(faults[index])
                continue
            if result.status is Status.ABORTED:
                undetected.discard(index)
                report.aborted.append(faults[index])
                continue
            vector = engine.fill(result, rng)
            single = TestSet(netlist.inputs)
            single.append_assignment(vector)
            tests.append(single[0])
            registry.counter("atpg.detect.podem_tests").inc()
            # Fortuitous detection: the new test often catches other faults.
            simulator = FaultSimulator(netlist, single)
            for other in list(undetected):
                if simulator.detection_word(faults[other]):
                    undetected.discard(other)
                    report.detected.append(faults[other])

    if compact and len(tests):
        with trace_span("atpg.detect.compaction", tests=len(tests)):
            tests = compact_detection_tests(netlist, tests, report.detected)
    return tests.deduplicated(), report
