"""Diagnostic test set generation.

A diagnostic test set aims to *distinguish* every distinguishable fault
pair, not merely detect every fault.  The driver keeps a partition of the
target faults into response classes (faults with identical full-response
rows under the tests so far) and refines it in three stages:

1. a 1-detection test set seeds the partition;
2. a random phase keeps any random vector that splits some class;
3. the exact miter-based :class:`~repro.atpg.distinguish.Distinguisher`
   attacks the remaining pairs.  Pairs it proves equivalent are settled
   permanently — functional indistinguishability is transitive, so only
   adjacent pairs of a class ever need to be tried.

Every added test is simulated once against all target faults and the
partition is split in place, so no full dictionary rebuild happens in the
loop.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..circuit.netlist import Netlist
from ..faults.model import Fault
from ..obs import get_default_registry, trace_span
from ..sim.patterns import TestSet
from ..sim.responses import ResponseTable
from .detect import GenerationReport, generate_detection_tests
from .distinguish import Distinguisher
from .podem import Status


@dataclass
class DiagnosticReport:
    """Outcome of diagnostic test generation."""

    generation: GenerationReport
    #: Pairs proven indistinguishable by any input vector.
    equivalent_pairs: List[Tuple[Fault, Fault]] = field(default_factory=list)
    #: Pairs left unresolved because the miter search hit its limit.
    aborted_pairs: List[Tuple[Fault, Fault]] = field(default_factory=list)
    #: Tests contributed by the random splitting phase.
    random_tests: int = 0
    #: Tests contributed by the miter phase.
    miter_tests: int = 0


def response_classes(
    netlist: Netlist, faults: Sequence[Fault], tests: TestSet
) -> List[List[int]]:
    """Partition fault indices by their full response rows under ``tests``.

    Faults in the same class are indistinguishable by the current test set
    even with a full fault dictionary.
    """
    if not len(tests):
        return [list(range(len(faults)))] if faults else []
    table = ResponseTable.build(netlist, faults, tests)
    classes: Dict[tuple, List[int]] = {}
    for index in range(len(faults)):
        classes.setdefault(table.full_row(index), []).append(index)
    return sorted(classes.values(), key=lambda members: members[0])


def _split_by_new_test(
    netlist: Netlist,
    faults: Sequence[Fault],
    partition: List[List[int]],
    vector: int,
) -> List[List[int]]:
    """Refine ``partition`` by the faults' signatures under one new test."""
    single = TestSet(netlist.inputs, [vector])
    table = ResponseTable.build(netlist, faults, single)
    refined: List[List[int]] = []
    for members in partition:
        if len(members) == 1:
            refined.append(members)
            continue
        groups: Dict[tuple, List[int]] = {}
        for index in members:
            groups.setdefault(table.signature(index, 0), []).append(index)
        refined.extend(groups.values())
    return refined


def generate_diagnostic_tests(
    netlist: Netlist,
    faults: Sequence[Fault],
    seed: int = 0,
    backtrack_limit: int = 512,
    miter_backtrack_limit: int = 128,
    random_batch: int = 64,
    max_stale_batches: int = 4,
    skip_undetected: bool = True,
    engine: str = "sat",
) -> "tuple[TestSet, DiagnosticReport]":
    """Generate a test set distinguishing every distinguishable fault pair.

    With ``skip_undetected`` (default) faults the detection phase proved
    untestable or aborted on are left out of the pair targets: an
    undetectable fault produces the fault-free response under every test
    and cannot be meaningfully diagnosed.

    ``engine`` selects the exact pair decision procedure: ``"sat"``
    (default) decides each miter with the CDCL solver — equivalence proofs
    included — while ``"podem"`` uses the structural search bounded by
    ``miter_backtrack_limit``, under which abandoned pairs are reported as
    indistinguished (the best-effort contract of classical diagnostic
    ATPG).
    """
    rng = random.Random(seed ^ 0xD1A6)
    tests, generation = generate_detection_tests(
        netlist, faults, seed=seed, backtrack_limit=backtrack_limit
    )
    report = DiagnosticReport(generation)
    if skip_undetected:
        detected = set(generation.detected)
        targets = [f for f in faults if f in detected]
    else:
        targets = list(faults)

    partition = response_classes(netlist, targets, tests)

    # --- random splitting phase -----------------------------------------
    stale = 0
    with trace_span("atpg.diagnostic.random_phase", targets=len(targets)):
        while stale < max_stale_batches and any(len(c) > 1 for c in partition):
            batch = TestSet.random(
                netlist.inputs, random_batch, seed=rng.getrandbits(32)
            )
            table = ResponseTable.build(netlist, targets, batch)
            progressed = False
            for j in range(len(batch)):
                refined: List[List[int]] = []
                split_here = False
                for members in partition:
                    if len(members) == 1:
                        refined.append(members)
                        continue
                    groups: Dict[tuple, List[int]] = {}
                    for index in members:
                        groups.setdefault(table.signature(index, j), []).append(index)
                    if len(groups) > 1:
                        split_here = True
                    refined.extend(groups.values())
                if split_here:
                    tests.append(batch[j])
                    report.random_tests += 1
                    partition = refined
                    progressed = True
            stale = 0 if progressed else stale + 1

    # --- exact miter phase -----------------------------------------------
    if engine == "sat":
        from .satatpg import SatAtpg

        distinguisher = SatAtpg(netlist, rng=rng)
    elif engine == "podem":
        distinguisher = Distinguisher(
            netlist, backtrack_limit=miter_backtrack_limit, rng=rng
        )
    else:
        raise ValueError(f"unknown engine {engine!r} (expected 'sat' or 'podem')")
    settled: Set[FrozenSet[int]] = set()
    work = [members for members in partition if len(members) > 1]
    singletons = [members for members in partition if len(members) == 1]
    with trace_span("atpg.diagnostic.miter_phase", classes=len(work)):
        while work:
            members = work.pop()
            open_pair = None
            for left, right in zip(members, members[1:]):
                if frozenset((left, right)) not in settled:
                    open_pair = (left, right)
                    break
            if open_pair is None:
                singletons.append(members)  # fully settled class
                continue
            left, right = open_pair
            outcome = distinguisher.distinguish(targets[left], targets[right])
            if outcome.distinguished:
                single = TestSet(netlist.inputs)
                single.append_assignment(outcome.test)
                tests.append(single[0])
                report.miter_tests += 1
                refined = _split_by_new_test(
                    netlist, targets, work + [members], single[0]
                )
                work = [c for c in refined if len(c) > 1]
                singletons.extend(c for c in refined if len(c) == 1)
            else:
                settled.add(frozenset((left, right)))
                record = (targets[left], targets[right])
                if outcome.status is Status.UNTESTABLE:
                    report.equivalent_pairs.append(record)
                else:
                    report.aborted_pairs.append(record)
                work.append(members)
    registry = get_default_registry()
    registry.counter("atpg.diagnostic.random_tests").inc(report.random_tests)
    registry.counter("atpg.diagnostic.miter_tests").inc(report.miter_tests)
    registry.counter("atpg.diagnostic.equivalent_pairs").inc(
        len(report.equivalent_pairs)
    )
    registry.counter("atpg.diagnostic.aborted_pairs").inc(len(report.aborted_pairs))
    return tests.deduplicated(), report
