"""Exact fault-pair distinguishing via a miter construction.

A test ``t`` distinguishes faults ``f1`` and ``f2`` when the two faulty
machines respond differently: ``z_1(t) != z_2(t)``.  We build a *miter*:
two copies of the circuit sharing the primary inputs, one with ``f1``
injected structurally (the faulty line tied to its stuck value) and one
with ``f2``, their outputs XORed pairwise and ORed into a single net.  The
miter output is 1 exactly on distinguishing tests, so PODEM targeting
``miter_output stuck-at-0`` either returns a distinguishing test or — when
it exhausts the search space — proves the pair indistinguishable by any
test (the pair is *functionally equivalent* as observed machines).

This machinery powers the diagnostic test generator and doubles as an
equivalence checker for fault pairs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist
from ..faults.model import Fault
from .podem import Podem, Status

MITER_OUTPUT = "__miter"


def inject_fault(netlist: Netlist, fault: Fault, prefix: str = "") -> None:
    """Structurally inject ``fault`` into ``netlist`` (in place).

    Stem faults tie the whole (prefixed) net to a constant.  Pin faults
    splice a fresh constant net into the sink gate's fan-in, leaving the
    stem intact for its other branches.  ``prefix`` is applied to all net
    names, matching a copy created by :func:`_add_copy`.
    """
    const = GateType.CONST1 if fault.stuck_at else GateType.CONST0
    line = prefix + fault.line
    if line not in netlist.gates:
        raise ValueError(f"cannot inject {fault}: net {line!r} not found")
    if fault.is_stem:
        gate = netlist.gates[line]
        if gate.gate_type is GateType.INPUT:
            # Keep the INPUT gate so the circuit interface (and therefore
            # test-vector alignment) is unchanged; redirect all consumers
            # to a constant stand-in instead.
            stub = f"{line}__stuck{fault.stuck_at}"
            netlist.add_gate(stub, const, ())
            for name, sink in list(netlist.gates.items()):
                if line in sink.inputs and name != stub:
                    new_inputs = tuple(stub if i == line else i for i in sink.inputs)
                    netlist.gates[name] = type(sink)(name, sink.gate_type, new_inputs)
            netlist.outputs = [stub if o == line else o for o in netlist.outputs]
        else:
            netlist.gates[line] = type(gate)(line, const, ())
        netlist._invalidate()
        return
    sink_name = prefix + fault.input_of
    sink = netlist.gates.get(sink_name)
    if sink is None or line not in sink.inputs:
        raise ValueError(f"cannot inject {fault}: pin not found")
    stub = f"{line}__pin_sa{fault.stuck_at}__{sink_name}"
    netlist.add_gate(stub, const, ())
    new_inputs = tuple(stub if i == line else i for i in sink.inputs)
    netlist.gates[sink_name] = type(sink)(sink_name, sink.gate_type, new_inputs)
    netlist._invalidate()


def injected_copy(netlist: Netlist, fault: Fault) -> Netlist:
    """A copy of ``netlist`` with ``fault`` structurally present."""
    clone = netlist.copy(f"{netlist.name}__{fault}")
    inject_fault(clone, fault)
    clone.validate()
    return clone


def _add_copy(miter: Netlist, netlist: Netlist, prefix: str) -> None:
    """Add a prefixed copy of ``netlist`` to ``miter``, PIs read through BUFs."""
    for gate in netlist:
        name = prefix + gate.name
        if gate.gate_type is GateType.INPUT:
            miter.add_gate(name, GateType.BUF, (gate.name,))
        else:
            miter.add_gate(name, gate.gate_type, tuple(prefix + i for i in gate.inputs))


def build_difference_miter(netlist_a: Netlist, netlist_b: Netlist) -> Netlist:
    """A miter of two same-interface machines.

    Output net :data:`MITER_OUTPUT` is 1 under exactly the input vectors
    where the two machines produce different output vectors.  Both
    netlists must be combinational with identical input and output lists.
    """
    if not netlist_a.is_combinational or not netlist_b.is_combinational:
        raise ValueError("miter construction requires combinational netlists")
    if list(netlist_a.inputs) != list(netlist_b.inputs) or list(
        netlist_a.outputs
    ) != list(netlist_b.outputs):
        raise ValueError("miter operands must share inputs and outputs")
    miter = Netlist(f"{netlist_a.name}__vs__{netlist_b.name}")
    for net in netlist_a.inputs:
        miter.add_input(net)
    _add_copy(miter, netlist_a, "A__")
    _add_copy(miter, netlist_b, "B__")
    # Pairwise output XORs, then a balanced OR tree.
    frontier = []
    for index, out in enumerate(netlist_a.outputs):
        name = f"__xor{index}"
        miter.add_gate(name, GateType.XOR, (f"A__{out}", f"B__{out}"))
        frontier.append(name)
    level = 0
    while len(frontier) > 1:
        merged = []
        for i in range(0, len(frontier) - 1, 2):
            name = f"__or{level}_{i // 2}"
            miter.add_gate(name, GateType.OR, (frontier[i], frontier[i + 1]))
            merged.append(name)
        if len(frontier) % 2:
            merged.append(frontier[-1])
        frontier = merged
        level += 1
    miter.add_gate(MITER_OUTPUT, GateType.BUF, (frontier[0],))
    miter.add_output(MITER_OUTPUT)
    miter.validate()
    return miter


def build_miter(netlist: Netlist, fault_a: Fault, fault_b: Fault) -> Netlist:
    """The difference miter of the two faulty machines.

    Output net :data:`MITER_OUTPUT` is 1 under exactly the input vectors
    where the machine with ``fault_a`` and the machine with ``fault_b``
    produce different output vectors.
    """
    if not netlist.is_combinational:
        raise ValueError("miter construction requires a combinational netlist")
    miter = Netlist(f"{netlist.name}__miter")
    for net in netlist.inputs:
        miter.add_input(net)
    _add_copy(miter, netlist, "A__")
    _add_copy(miter, netlist, "B__")
    inject_fault(miter, fault_a, prefix="A__")
    inject_fault(miter, fault_b, prefix="B__")
    frontier = []
    for index, out in enumerate(netlist.outputs):
        name = f"__xor{index}"
        miter.add_gate(name, GateType.XOR, (f"A__{out}", f"B__{out}"))
        frontier.append(name)
    level = 0
    while len(frontier) > 1:
        merged = []
        for i in range(0, len(frontier) - 1, 2):
            name = f"__or{level}_{i // 2}"
            miter.add_gate(name, GateType.OR, (frontier[i], frontier[i + 1]))
            merged.append(name)
        if len(frontier) % 2:
            merged.append(frontier[-1])
        frontier = merged
        level += 1
    miter.add_gate(MITER_OUTPUT, GateType.BUF, (frontier[0],))
    miter.add_output(MITER_OUTPUT)
    miter.validate()
    return miter


@dataclass
class DistinguishResult:
    """Outcome of one pair-distinguishing attempt."""

    status: Status
    fault_a: Fault
    fault_b: Fault
    #: A full input vector distinguishing the pair (only when DETECTED).
    test: Optional[Dict[str, int]] = None

    @property
    def distinguished(self) -> bool:
        return self.status is Status.DETECTED

    @property
    def proven_equivalent(self) -> bool:
        return self.status is Status.UNTESTABLE


class Distinguisher:
    """Generates tests that tell fault pairs of one netlist apart."""

    def __init__(
        self,
        netlist: Netlist,
        backtrack_limit: int = 512,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.netlist = netlist
        self.backtrack_limit = backtrack_limit
        self.rng = rng or random.Random(0)

    def distinguish(self, fault_a: Fault, fault_b: Fault) -> DistinguishResult:
        """Find a test with ``z_a != z_b``, or prove none exists."""
        miter = build_miter(self.netlist, fault_a, fault_b)
        engine = Podem(miter, backtrack_limit=self.backtrack_limit, rng=self.rng)
        result = engine.generate(Fault(MITER_OUTPUT, 0))
        if not result.detected:
            return DistinguishResult(result.status, fault_a, fault_b)
        vector = engine.fill(result, self.rng)
        return DistinguishResult(Status.DETECTED, fault_a, fault_b, vector)
