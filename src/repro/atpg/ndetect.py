"""n-detection test set generation (the paper's "10-detection" sets).

An n-detection test set detects every (testable) fault with at least ``n``
different tests.  Larger sets of this kind carry more diagnostic
information, which is why the paper pairs them with the same/different
dictionary.  The driver again works in two phases: random batches retained
while they raise detection counts, then randomized PODEM (scrambled
backtrace decisions and random X-fill) to top up individual faults.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Set

from ..circuit.netlist import Netlist
from ..faults.model import Fault
from ..obs import get_default_registry, trace_span
from ..sim.bits import iter_bits
from ..sim.faultsim import FaultSimulator
from ..sim.patterns import TestSet
from .detect import GenerationReport, generate_detection_tests
from .podem import Podem, Status


def generate_ndetect_tests(
    netlist: Netlist,
    faults: Sequence[Fault],
    n: int = 10,
    seed: int = 0,
    backtrack_limit: int = 512,
    random_batch: int = 64,
    max_stale_batches: int = 3,
    podem_attempts: int = 4,
) -> "tuple[TestSet, GenerationReport]":
    """Generate a test set detecting every testable fault ``n`` times.

    Starts from a compacted 1-detection set (so coverage bookkeeping —
    untestable/aborted faults — is inherited from
    :func:`generate_detection_tests`), then grows it.  ``podem_attempts``
    bounds how many randomized PODEM calls are spent per missing detection
    slot of a fault; attempts that only reproduce already-present vectors
    are discarded.
    """
    rng = random.Random(seed ^ 0x5EED)
    tests, report = generate_detection_tests(
        netlist,
        faults,
        seed=seed,
        backtrack_limit=backtrack_limit,
        random_batch=random_batch,
        max_stale_batches=max_stale_batches,
    )
    testable = {i for i, f in enumerate(faults) if f in set(report.detected)}
    counts = _detection_counts(netlist, tests, faults, testable)
    below: Set[int] = {i for i in testable if counts[i] < n}

    # --- random top-up --------------------------------------------------
    registry = get_default_registry()
    stale = 0
    seen = set(tests)
    with trace_span("atpg.ndetect.random_topup", below=len(below)):
        while below and stale < max_stale_batches:
            batch = TestSet.random(
                netlist.inputs, random_batch, seed=rng.getrandbits(32)
            )
            simulator = FaultSimulator(netlist, batch)
            keep: List[int] = []
            credited: Dict[int, List[int]] = {}
            for index in sorted(below):
                for j in iter_bits(simulator.detection_word(faults[index])):
                    credited.setdefault(j, []).append(index)
            progressed = False
            for j in sorted(credited):
                if batch[j] in seen:
                    continue
                helped = [i for i in credited[j] if counts[i] < n]
                if not helped:
                    continue
                keep.append(j)
                seen.add(batch[j])
                progressed = True
                for i in credited[j]:
                    counts[i] += 1
                    if counts[i] >= n:
                        below.discard(i)
            for j in keep:
                tests.append(batch[j])
                registry.counter("atpg.ndetect.random_topup_tests").inc()
            stale = 0 if progressed else stale + 1

    # --- deterministic top-up --------------------------------------------
    # Each randomized PODEM call pins only the necessary inputs; filling
    # the don't-cares several ways yields a whole batch of distinct
    # candidate vectors per call, which is how faults with few detecting
    # vectors get saturated.
    engine = Podem(netlist, backtrack_limit=backtrack_limit, rng=rng)
    fills_per_call = 8
    with trace_span("atpg.ndetect.podem_topup", below=len(below)):
        for index in sorted(below):
            attempts = 0
            while counts[index] < n and attempts < podem_attempts:
                attempts += 1
                result = engine.generate(faults[index], randomize=True)
                if result.status is not Status.DETECTED:
                    break
                batch = TestSet(netlist.inputs)
                for _ in range(fills_per_call):
                    batch.append_assignment(engine.fill(result, rng))
                batch = batch.deduplicated()
                simulator = FaultSimulator(netlist, batch)
                target_word = simulator.detection_word(faults[index])
                fresh = [j for j in iter_bits(target_word) if batch[j] not in seen]
                added = []
                for j in fresh:
                    if counts[index] >= n:
                        break
                    seen.add(batch[j])
                    tests.append(batch[j])
                    counts[index] += 1
                    added.append(j)
                if added:
                    attempts = 0
                    registry.counter("atpg.ndetect.podem_topup_tests").inc(len(added))
                    # Credit the new vectors to every other fault still short.
                    for other in list(below):
                        if other == index:
                            continue
                        word = simulator.detection_word(faults[other])
                        gained = sum(1 for j in added if (word >> j) & 1)
                        if gained:
                            counts[other] += gained
                            if counts[other] >= n:
                                below.discard(other)
            if counts[index] >= n:
                below.discard(index)
    return tests.deduplicated(), report


def _detection_counts(
    netlist: Netlist,
    tests: TestSet,
    faults: Sequence[Fault],
    testable: Set[int],
) -> Dict[int, int]:
    if not len(tests):
        return {i: 0 for i in testable}
    simulator = FaultSimulator(netlist, tests)
    return {
        i: bin(simulator.detection_word(faults[i])).count("1") for i in testable
    }
