"""PODEM test generation for single stuck-at faults.

A straightforward, complete implementation of Goel's PODEM: decisions are
made only on primary inputs, each decision is followed by a forward
three-valued implication of the good and faulty machines, and the search
backtracks when the fault can no longer be activated or no X-path remains
from the D-frontier to an output.  Within the backtrack limit the algorithm
is complete: ``UNTESTABLE`` results are proofs of combinational redundancy.

Decisions are guided by SCOAP controllability (easiest input for a
controlling objective, hardest for an all-inputs objective); pass
``randomize=True`` to scramble those choices, which is how the n-detection
driver obtains different tests for the same fault.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist
from ..faults.model import Fault
from ..obs import get_default_registry
from .testability import controllability
from .values import ONE, X, ZERO, evaluate3, not3


class Status(enum.Enum):
    DETECTED = "detected"
    UNTESTABLE = "untestable"
    ABORTED = "aborted"


@dataclass
class PodemResult:
    """Outcome of one PODEM run.

    ``assignment`` maps the primary inputs that the search actually
    constrained to 0/1; unconstrained inputs are free and are filled by
    :meth:`Podem.fill` when a concrete vector is needed.
    """

    status: Status
    fault: Fault
    assignment: Optional[Dict[str, int]] = None
    backtracks: int = 0

    @property
    def detected(self) -> bool:
        return self.status is Status.DETECTED


class Podem:
    """Reusable PODEM engine for one (combinational) netlist."""

    def __init__(
        self,
        netlist: Netlist,
        backtrack_limit: int = 256,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not netlist.is_combinational:
            raise ValueError("PODEM requires a combinational (full-scan) netlist")
        self.netlist = netlist
        self.backtrack_limit = backtrack_limit
        self.rng = rng or random.Random(0)

        order = netlist.topological_order()
        self._position: Dict[str, int] = {net: i for i, net in enumerate(order)}
        self._names: List[str] = order
        self._kinds: List[GateType] = []
        self._fanin: List[Tuple[int, ...]] = []
        for net in order:
            gate = netlist.gates[net]
            self._kinds.append(gate.gate_type)
            self._fanin.append(tuple(self._position[i] for i in gate.inputs))
        fanout = netlist.fanout_map()
        self._fanout: List[Tuple[int, ...]] = [
            tuple(self._position[s] for s in fanout[net]) for net in order
        ]
        self._is_output = [False] * len(order)
        for net in netlist.outputs:
            self._is_output[self._position[net]] = True
        self._output_positions = [self._position[net] for net in netlist.outputs]
        self._pi_positions = [
            i for i, kind in enumerate(self._kinds) if kind is GateType.INPUT
        ]
        measures = controllability(netlist)
        self._cc: List[Tuple[int, int]] = [measures[net] for net in order]

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self, fault: Fault, randomize: bool = False) -> PodemResult:
        """Search for a test for ``fault``; complete within the backtrack limit."""
        result = self._generate(fault, randomize)
        registry = get_default_registry()
        registry.counter("atpg.podem.calls").inc()
        registry.counter("atpg.podem.backtracks").inc(result.backtracks)
        registry.counter(f"atpg.podem.{result.status.value}").inc()
        return result

    def _generate(self, fault: Fault, randomize: bool) -> PodemResult:
        site, pin_sink = self._fault_site(fault)
        cone = self._cone_positions(site if pin_sink is None else pin_sink)

        assignment: Dict[int, int] = {}
        # Decision stack entries: (pi position, value, already flipped).
        stack: List[List[int]] = []
        backtracks = 0

        while True:
            good, faulty = self._imply(assignment, fault, site, pin_sink, cone)
            if any(
                good[o] != X and faulty[o] != X and good[o] != faulty[o]
                for o in self._output_positions
            ):
                named = {self._names[pi]: v for pi, v in assignment.items()}
                return PodemResult(Status.DETECTED, fault, named, backtracks)

            objective = self._objective(fault, site, pin_sink, good, faulty)
            decision = None
            if objective is not None:
                decision = self._backtrace(objective, good, faulty, randomize)
            if decision is None:
                # Dead end: flip the most recent unflipped decision.
                backtracks += 1
                if backtracks > self.backtrack_limit:
                    return PodemResult(Status.ABORTED, fault, None, backtracks)
                while stack and stack[-1][2]:
                    pi, _, _ = stack.pop()
                    del assignment[pi]
                if not stack:
                    return PodemResult(Status.UNTESTABLE, fault, None, backtracks)
                stack[-1][1] ^= 1
                stack[-1][2] = 1
                assignment[stack[-1][0]] = stack[-1][1]
            else:
                pi, value = decision
                stack.append([pi, value, 0])
                assignment[pi] = value

    def fill(self, result: PodemResult, rng: Optional[random.Random] = None) -> Dict[str, int]:
        """Complete a detected result's assignment into a full input vector."""
        if not result.detected:
            raise ValueError(f"cannot fill a {result.status.value} result")
        rng = rng or self.rng
        vector = dict(result.assignment)
        for pi in self._pi_positions:
            vector.setdefault(self._names[pi], rng.getrandbits(1))
        return vector

    # ------------------------------------------------------------------
    # fault plumbing
    # ------------------------------------------------------------------
    def _fault_site(self, fault: Fault) -> Tuple[int, Optional[int]]:
        """Positions of the fault line and (for pin faults) the sink gate."""
        if fault.line not in self._position:
            raise ValueError(f"fault on unknown net: {fault}")
        site = self._position[fault.line]
        if fault.is_stem:
            return site, None
        if fault.input_of not in self._position:
            raise ValueError(f"fault on unknown pin: {fault}")
        sink = self._position[fault.input_of]
        if site not in self._fanin[sink]:
            raise ValueError(f"pin fault on non-edge: {fault}")
        return site, sink

    def _cone_positions(self, origin: int) -> Set[int]:
        """Positions reachable from ``origin`` (the fault-effect cone)."""
        cone = {origin}
        stack = [origin]
        while stack:
            current = stack.pop()
            for successor in self._fanout[current]:
                if successor not in cone:
                    cone.add(successor)
                    stack.append(successor)
        return cone

    # ------------------------------------------------------------------
    # implication (forward 3-valued dual simulation)
    # ------------------------------------------------------------------
    def _imply(
        self,
        assignment: Dict[int, int],
        fault: Fault,
        site: int,
        pin_sink: Optional[int],
        cone: Set[int],
    ) -> Tuple[List[int], List[int]]:
        size = len(self._names)
        good = [X] * size
        faulty = [X] * size
        stuck = fault.stuck_at
        for i in range(size):
            kind = self._kinds[i]
            if kind is GateType.INPUT:
                value = assignment.get(i, X)
                good[i] = value
            else:
                good[i] = evaluate3(kind, [good[j] for j in self._fanin[i]])
            if i not in cone:
                faulty[i] = good[i]
                continue
            if pin_sink is None and i == site:
                faulty[i] = stuck
            elif kind is GateType.INPUT:
                faulty[i] = good[i]
            else:
                fanin_faulty = [faulty[j] for j in self._fanin[i]]
                if i == pin_sink:
                    fanin_faulty = [
                        stuck if j == site else faulty[j]
                        for j in self._fanin[i]
                    ]
                faulty[i] = evaluate3(kind, fanin_faulty)
        return good, faulty

    # ------------------------------------------------------------------
    # objective selection
    # ------------------------------------------------------------------
    def _objective(
        self,
        fault: Fault,
        site: int,
        pin_sink: Optional[int],
        good: List[int],
        faulty: List[int],
    ) -> Optional[Tuple[int, int]]:
        """Next (net position, value) goal, or None when the state is a dead end."""
        desired = 1 - fault.stuck_at
        if good[site] == X:
            return site, desired
        if good[site] != desired:
            return None  # activation impossible under current assignment
        frontier = self._d_frontier(good, faulty)
        if (
            pin_sink is not None
            and (good[pin_sink] == X or faulty[pin_sink] == X)
            and pin_sink not in frontier
        ):
            # A pin fault's difference originates inside the sink gate (the
            # substituted pin differs from the activated stem), which the
            # net-based D-frontier scan cannot see.
            frontier.insert(0, pin_sink)
        if not frontier:
            return None
        if not self._x_path_exists(frontier, good, faulty):
            return None
        # Prefer the frontier gate with the cheapest X side input to set.
        # Inputs unknown in *either* machine qualify: a known-good input
        # whose faulty value is still X is resolved by backtracing through
        # composite-X nets just the same.
        for gate in frontier:
            kind = self._kinds[gate]
            noncontrolling = _NONCONTROLLING.get(kind, ZERO)
            candidates = [
                j for j in self._fanin[gate] if good[j] == X or faulty[j] == X
            ]
            if candidates:
                easiest = min(
                    candidates,
                    key=lambda j: self._cc[j][noncontrolling],
                )
                return easiest, noncontrolling
        return None

    def _d_frontier(self, good: List[int], faulty: List[int]) -> List[int]:
        frontier = []
        for i, kind in enumerate(self._kinds):
            if kind is GateType.INPUT or (good[i] != X and faulty[i] != X):
                continue
            for j in self._fanin[i]:
                if good[j] != X and faulty[j] != X and good[j] != faulty[j]:
                    frontier.append(i)
                    break
        return frontier

    def _x_path_exists(self, frontier: Sequence[int], good: List[int], faulty: List[int]) -> bool:
        seen: Set[int] = set()
        stack = list(frontier)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if self._is_output[current]:
                return True
            for successor in self._fanout[current]:
                if successor not in seen and (good[successor] == X or faulty[successor] == X):
                    stack.append(successor)
        return False

    # ------------------------------------------------------------------
    # backtrace
    # ------------------------------------------------------------------
    def _backtrace(
        self,
        objective: Tuple[int, int],
        good: List[int],
        faulty: List[int],
        randomize: bool,
    ) -> Optional[Tuple[int, int]]:
        """Map an objective to a PI assignment through composite-X nets.

        Every net unknown in some machine has a fan-in net unknown in some
        machine, and an unknown INPUT is an unassigned PI, so the walk
        always terminates at a fresh decision variable.  The value chosen
        along the way is a heuristic; soundness rests on the implication
        step and the exhaustive decision stack.
        """
        net, value = objective
        for _ in range(len(self._names) + 1):
            kind = self._kinds[net]
            if kind is GateType.INPUT:
                return net, value
            if kind.is_constant:
                return None
            if kind is GateType.NOT:
                net, value = self._fanin[net][0], not3(value)
                continue
            if kind is GateType.BUF:
                net = self._fanin[net][0]
                continue
            x_inputs = [
                j for j in self._fanin[net] if good[j] == X or faulty[j] == X
            ]
            if not x_inputs:
                return None
            if kind in (GateType.XOR, GateType.XNOR):
                chosen = self.rng.choice(x_inputs) if randomize else x_inputs[0]
                cc0, cc1 = self._cc[chosen]
                net, value = chosen, (ZERO if cc0 <= cc1 else ONE)
                continue
            inverted = kind in (GateType.NAND, GateType.NOR)
            core = not3(value) if inverted else value
            controlling = ZERO if kind in (GateType.AND, GateType.NAND) else ONE
            if core == controlling:
                # One controlling input suffices: take the easiest.
                key = lambda j: self._cc[j][controlling]
                chosen = (
                    self.rng.choice(x_inputs) if randomize else min(x_inputs, key=key)
                )
                net, value = chosen, controlling
            else:
                # All inputs must be non-controlling: take the hardest first.
                noncontrolling = 1 - controlling
                key = lambda j: self._cc[j][noncontrolling]
                chosen = (
                    self.rng.choice(x_inputs) if randomize else max(x_inputs, key=key)
                )
                net, value = chosen, noncontrolling
        return None


_NONCONTROLLING = {
    GateType.AND: ONE,
    GateType.NAND: ONE,
    GateType.OR: ZERO,
    GateType.NOR: ZERO,
    GateType.XOR: ZERO,
    GateType.XNOR: ZERO,
    GateType.NOT: ZERO,
    GateType.BUF: ZERO,
}
