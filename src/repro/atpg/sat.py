"""A small CDCL SAT solver.

Conflict-driven clause learning with two-watched-literal propagation,
first-UIP learning, activity-based (VSIDS-style) decisions and geometric
restarts — the standard architecture, kept compact.  Used by the
SAT-based ATPG engine as an independent decision procedure for fault
detection and fault-pair equivalence, cross-checking PODEM.

Variables are positive integers; literals are non-zero integers with sign
for polarity (DIMACS convention).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


class Solver:
    """One-shot CDCL solver: add clauses, call :meth:`solve`."""

    def __init__(self) -> None:
        self.num_vars = 0
        self._clauses: List[List[int]] = []
        # watch lists: literal -> clause indices watching it
        self._watches: Dict[int, List[int]] = {}
        self._assign: Dict[int, bool] = {}
        self._level: Dict[int, int] = {}
        self._reason: Dict[int, Optional[int]] = {}
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._activity: Dict[int, float] = {}
        self._activity_inc = 1.0
        self._unsat = False
        #: Conflicts of the most recent :meth:`solve` call (observability).
        self.conflicts = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add one clause (a disjunction of literals)."""
        clause = sorted(set(literals), key=abs)
        if not clause:
            self._unsat = True
            return
        for literal in clause:
            variable = abs(literal)
            self.num_vars = max(self.num_vars, variable)
            if -literal in clause and literal > 0:
                return  # tautology
        index = len(self._clauses)
        self._clauses.append(clause)
        if len(clause) == 1:
            # Defer: units are enqueued at solve() start (level 0).
            return
        self._watch(clause[0], index)
        self._watch(clause[1], index)

    def _watch(self, literal: int, clause_index: int) -> None:
        self._watches.setdefault(literal, []).append(clause_index)

    # ------------------------------------------------------------------
    # assignment helpers
    # ------------------------------------------------------------------
    def _value(self, literal: int) -> Optional[bool]:
        assigned = self._assign.get(abs(literal))
        if assigned is None:
            return None
        return assigned if literal > 0 else not assigned

    def _enqueue(self, literal: int, reason: Optional[int]) -> bool:
        value = self._value(literal)
        if value is not None:
            return value
        variable = abs(literal)
        self._assign[variable] = literal > 0
        self._level[variable] = len(self._trail_lim)
        self._reason[variable] = reason
        self._trail.append(literal)
        return True

    def _propagate(self) -> Optional[int]:
        """BCP; returns a conflicting clause index or None."""
        head = getattr(self, "_qhead", 0)
        while head < len(self._trail):
            literal = self._trail[head]
            head += 1
            falsified = -literal
            watchers = self._watches.get(falsified, [])
            index = 0
            while index < len(watchers):
                clause_index = watchers[index]
                clause = self._clauses[clause_index]
                # Ensure the falsified literal sits in slot 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    index += 1
                    continue
                # Look for a replacement watch.
                replacement = None
                for position in range(2, len(clause)):
                    if self._value(clause[position]) is not False:
                        replacement = position
                        break
                if replacement is not None:
                    clause[1], clause[replacement] = clause[replacement], clause[1]
                    watchers[index] = watchers[-1]
                    watchers.pop()
                    self._watch(clause[1], clause_index)
                    continue
                # No replacement: clause is unit or conflicting.
                if self._value(first) is False:
                    self._qhead = len(self._trail)
                    return clause_index
                self._enqueue(first, clause_index)
                index += 1
        self._qhead = head
        return None

    # ------------------------------------------------------------------
    # conflict analysis
    # ------------------------------------------------------------------
    def _bump(self, variable: int) -> None:
        self._activity[variable] = self._activity.get(variable, 0.0) + self._activity_inc
        if self._activity[variable] > 1e100:
            for key in self._activity:
                self._activity[key] *= 1e-100
            self._activity_inc *= 1e-100

    def _analyse(self, conflict_index: int) -> "tuple[List[int], int]":
        """First-UIP learning: returns (learnt clause, backjump level)."""
        current_level = len(self._trail_lim)
        learnt: List[int] = []
        seen: Dict[int, bool] = {}
        counter = 0
        literal = 0
        reason_clause = self._clauses[conflict_index]
        trail_position = len(self._trail) - 1
        while True:
            for lit in reason_clause:
                if abs(lit) == abs(literal):
                    continue  # the literal being resolved on
                variable = abs(lit)
                if seen.get(variable) or self._level.get(variable, 0) == 0:
                    continue
                seen[variable] = True
                self._bump(variable)
                if self._level[variable] == current_level:
                    counter += 1
                else:
                    learnt.append(lit)
            # Pick the next trail literal to resolve on.
            while not seen.get(abs(self._trail[trail_position])):
                trail_position -= 1
            literal = -self._trail[trail_position]
            variable = abs(literal)
            seen[variable] = False
            counter -= 1
            trail_position -= 1
            if counter == 0:
                break
            reason_index = self._reason[variable]
            reason_clause = self._clauses[reason_index]
        learnt.insert(0, literal)
        if len(learnt) == 1:
            return learnt, 0
        backjump = max(self._level[abs(lit)] for lit in learnt[1:])
        return learnt, backjump

    def _backtrack(self, level: int) -> None:
        while len(self._trail_lim) > level:
            limit = self._trail_lim.pop()
            while len(self._trail) > limit:
                literal = self._trail.pop()
                variable = abs(literal)
                del self._assign[variable]
                del self._level[variable]
                del self._reason[variable]
        self._qhead = min(getattr(self, "_qhead", 0), len(self._trail))

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> Optional[Dict[int, bool]]:
        """Solve under optional assumptions.

        Returns a model ({variable: value}) when satisfiable, ``None``
        when unsatisfiable, and raises :class:`BudgetExceeded` when
        ``max_conflicts`` runs out before a decision is reached.
        """
        self.conflicts = 0
        if self._unsat:
            return None
        self._qhead = 0
        self._trail.clear()
        self._trail_lim.clear()
        self._assign.clear()
        self._level.clear()
        self._reason.clear()
        # Level-0 units.
        for index, clause in enumerate(self._clauses):
            if len(clause) == 1:
                if not self._enqueue(clause[0], index):
                    return None
        if self._propagate() is not None:
            return None
        for literal in assumptions:
            if self._value(literal) is False:
                return None
            if self._value(literal) is None:
                self._trail_lim.append(len(self._trail))
                self._enqueue(literal, None)
                if self._propagate() is not None:
                    return None
        assumption_levels = len(self._trail_lim)

        conflicts = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                conflicts += 1
                self.conflicts = conflicts
                if max_conflicts is not None and conflicts > max_conflicts:
                    raise BudgetExceeded(conflicts)
                if len(self._trail_lim) <= assumption_levels:
                    return None
                learnt, backjump = self._analyse(conflict)
                self._backtrack(max(backjump, assumption_levels))
                index = len(self._clauses)
                self._clauses.append(learnt)
                if len(learnt) > 1:
                    self._watch(learnt[0], index)
                    self._watch(learnt[1], index)
                self._enqueue(learnt[0], index)
                self._activity_inc *= 1.05
            else:
                decision = self._pick_branch()
                if decision is None:
                    return dict(self._assign)
                self._trail_lim.append(len(self._trail))
                self._enqueue(decision, None)

    def _pick_branch(self) -> Optional[int]:
        best = None
        best_activity = -1.0
        for variable in range(1, self.num_vars + 1):
            if variable in self._assign:
                continue
            activity = self._activity.get(variable, 0.0)
            if activity > best_activity:
                best_activity = activity
                best = variable
        if best is None:
            return None
        return -best  # negative-first polarity: cheap and effective on miters


class BudgetExceeded(RuntimeError):
    """Raised when the conflict budget runs out (an ABORT, not an answer)."""

    def __init__(self, conflicts: int) -> None:
        super().__init__(f"conflict budget exceeded after {conflicts} conflicts")
        self.conflicts = conflicts
