"""SAT-based ATPG: an independent engine beside PODEM.

Fault detection and fault-pair distinguishing both reduce to "set this
miter output to 1": detection mitres the good machine against the faulty
machine, distinguishing mitres two faulty machines.  The CDCL solver
(:mod:`repro.atpg.sat`) decides the question exactly, which makes this
engine (a) a cross-check for PODEM on every fixture and (b) the fallback
for the equivalence proofs PODEM's backtrack limit gives up on.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..circuit.netlist import Netlist
from ..faults.model import Fault
from ..obs import get_default_registry, trace_span
from .cnf import CnfEncoder
from .distinguish import (
    MITER_OUTPUT,
    DistinguishResult,
    build_difference_miter,
    build_miter,
    injected_copy,
)
from .podem import PodemResult, Status
from .sat import BudgetExceeded


class SatAtpg:
    """SAT-backed test generation for one combinational netlist."""

    def __init__(
        self,
        netlist: Netlist,
        max_conflicts: int = 50_000,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not netlist.is_combinational:
            raise ValueError("SAT ATPG requires a combinational (full-scan) netlist")
        self.netlist = netlist
        self.max_conflicts = max_conflicts
        self.rng = rng or random.Random(0)

    def _solve_miter(self, miter: Netlist) -> "tuple[Status, Optional[Dict[str, int]]]":
        registry = get_default_registry()
        registry.counter("atpg.sat.calls").inc()
        encoder = CnfEncoder(miter)
        encoder.solver.add_clause([encoder.literal(MITER_OUTPUT, 1)])
        with trace_span("atpg.sat.solve", variables=encoder.solver.num_vars):
            try:
                model = encoder.solver.solve(max_conflicts=self.max_conflicts)
            except BudgetExceeded as budget:
                registry.counter("atpg.sat.conflicts").inc(budget.conflicts)
                registry.counter("atpg.sat.aborts").inc()
                return Status.ABORTED, None
        registry.counter("atpg.sat.conflicts").inc(encoder.solver.conflicts)
        if model is None:
            registry.counter("atpg.sat.unsat").inc()
            return Status.UNTESTABLE, None
        registry.counter("atpg.sat.sat").inc()
        return Status.DETECTED, encoder.extract_inputs(model)

    def generate(self, fault: Fault) -> PodemResult:
        """A test for ``fault`` (or an untestability proof), via SAT.

        Returns the same :class:`PodemResult` shape as the PODEM engine so
        callers can swap engines freely; the assignment covers *all*
        primary inputs (SAT models are total).
        """
        miter = build_difference_miter(
            self.netlist.copy(self.netlist.name),
            injected_copy(self.netlist, fault),
        )
        status, assignment = self._solve_miter(miter)
        return PodemResult(status, fault, assignment)

    def distinguish(self, fault_a: Fault, fault_b: Fault) -> DistinguishResult:
        """Exact distinguishability via SAT (the Distinguisher contract)."""
        miter = build_miter(self.netlist, fault_a, fault_b)
        status, assignment = self._solve_miter(miter)
        return DistinguishResult(status, fault_a, fault_b, assignment)

    def fill(self, result: PodemResult, rng: Optional[random.Random] = None) -> Dict[str, int]:
        """Match the PODEM engine's interface; SAT assignments are total."""
        if not result.detected:
            raise ValueError(f"cannot fill a {result.status.value} result")
        vector = dict(result.assignment)
        rng = rng or self.rng
        for net in self.netlist.inputs:
            vector.setdefault(net, rng.getrandbits(1))
        return vector
