"""SCOAP-style testability measures.

Combinational 0/1 controllability (CC0/CC1) in the classic Goldstein
formulation: the controllability of a net is (1 + the cheapest way to set
it) through its driving gate.  PODEM's backtrace uses these numbers to pick
the easiest input when one controlling value suffices and the hardest input
when all inputs must be set.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist

#: Controllability assigned to sources (PIs and scan cells).
_SOURCE_COST = 1


def controllability(netlist: Netlist) -> Dict[str, Tuple[int, int]]:
    """CC0/CC1 per net: ``result[net] == (cc0, cc1)``, lower is easier."""
    measures: Dict[str, Tuple[int, int]] = {}
    for net in netlist.topological_order():
        gate = netlist.gates[net]
        kind = gate.gate_type
        if kind in (GateType.INPUT, GateType.DFF):
            measures[net] = (_SOURCE_COST, _SOURCE_COST)
            continue
        if kind is GateType.CONST0:
            measures[net] = (0, _INFINITY)
            continue
        if kind is GateType.CONST1:
            measures[net] = (_INFINITY, 0)
            continue
        fanin = [measures[i] for i in gate.inputs]
        measures[net] = _gate_controllability(kind, fanin)
    return measures


_INFINITY = 10**9


def _saturating_sum(values) -> int:
    return min(sum(values), _INFINITY)


def _gate_controllability(kind: GateType, fanin) -> Tuple[int, int]:
    cc0s = [cc0 for cc0, _ in fanin]
    cc1s = [cc1 for _, cc1 in fanin]
    if kind is GateType.AND:
        return (1 + min(cc0s), 1 + _saturating_sum(cc1s))
    if kind is GateType.NAND:
        return (1 + _saturating_sum(cc1s), 1 + min(cc0s))
    if kind is GateType.OR:
        return (1 + _saturating_sum(cc0s), 1 + min(cc1s))
    if kind is GateType.NOR:
        return (1 + min(cc1s), 1 + _saturating_sum(cc0s))
    if kind is GateType.NOT:
        return (1 + cc1s[0], 1 + cc0s[0])
    if kind is GateType.BUF:
        return (1 + cc0s[0], 1 + cc1s[0])
    if kind in (GateType.XOR, GateType.XNOR):
        # Cheapest even/odd parity combination; exact for two inputs, a
        # standard approximation beyond.
        even = min(_saturating_sum(cc0s), _saturating_sum(cc1s))
        odd = min(
            _saturating_sum([cc1s[i] if i == flipped else cc0s[i] for i in range(len(fanin))])
            for flipped in range(len(fanin))
        )
        if kind is GateType.XOR:
            return (1 + even, 1 + odd)
        return (1 + odd, 1 + even)
    raise ValueError(f"no controllability rule for {kind.value}")


def observability(netlist: Netlist) -> Dict[str, int]:
    """SCOAP combinational observability (CO) per net, lower is easier.

    The observability of a net is the cost of propagating it through its
    easiest fan-out path to a primary output; primary outputs cost 0.
    """
    measures = controllability(netlist)
    fanout = netlist.fanout_map()
    observabilities: Dict[str, int] = {}
    order = netlist.topological_order()
    outputs = set(netlist.outputs)
    for net in reversed(order):
        best = 0 if net in outputs else _INFINITY
        for sink_name in fanout[net]:
            sink = netlist.gates[sink_name]
            if sink.gate_type is GateType.DFF:
                continue
            sink_obs = observabilities.get(sink_name, _INFINITY)
            if sink_obs >= _INFINITY:
                continue
            side_inputs = [i for i in sink.inputs if i != net]
            cost = sink_obs + 1
            kind = sink.gate_type
            if kind in (GateType.AND, GateType.NAND):
                cost += _saturating_sum(measures[i][1] for i in side_inputs)
            elif kind in (GateType.OR, GateType.NOR):
                cost += _saturating_sum(measures[i][0] for i in side_inputs)
            elif kind in (GateType.XOR, GateType.XNOR):
                cost += _saturating_sum(min(measures[i]) for i in side_inputs)
            best = min(best, cost)
        observabilities[net] = min(best, _INFINITY)
    return observabilities
