"""Bounded time-frame expansion and sequential ATPG.

A non-scan sequential circuit is *unrolled* over ``T`` clock cycles into a
combinational model: frame ``f`` gets its own copy ``t<f>__<net>`` of the
logic, every flip-flop reads the previous frame's D value (frame 0 reads
the reset state), and the outputs of every frame are observed.  On that
model the combinational machinery works unchanged:

* :class:`SequenceGenerator.generate` — a test *sequence* detecting a
  single stuck-at fault, via the miter of the unrolled good machine
  against the unrolled faulty machine (the fault present in **every**
  frame, as a physical defect is);
* :class:`SequenceGenerator.distinguish` — a sequence telling two faults
  apart, which is what diagnostic test generation for non-scan circuits
  needs (feeding the sequential dictionaries of
  :mod:`repro.sim.seqfaultsim`).

``UNTESTABLE`` results are proofs *within the frame budget* only: a fault
may need a longer sequence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist
from ..faults.model import Fault
from ..sim.seqfaultsim import Frames
from .distinguish import MITER_OUTPUT, build_difference_miter, injected_copy
from .podem import Podem, Status


@dataclass(frozen=True)
class UnrollInfo:
    """Name bookkeeping of one unrolled netlist."""

    frames: int
    #: original primary inputs, in order.
    inputs: Tuple[str, ...]

    def frame_input(self, frame: int, net: str) -> str:
        return f"t{frame}__{net}"


def unroll(netlist: Netlist, frames: int, reset_value: int = 0) -> "Tuple[Netlist, UnrollInfo]":
    """Combinational expansion of ``netlist`` over ``frames`` cycles.

    Flip-flop outputs in frame 0 take the reset constant; in frame ``f>0``
    they buffer the previous frame's D net.  Every frame's primary outputs
    are primary outputs of the expansion (named ``t<f>__<po>``).
    """
    if frames < 1:
        raise ValueError("need at least one time frame")
    if netlist.is_combinational:
        raise ValueError("unrolling a combinational netlist is pointless")
    reset = GateType.CONST1 if reset_value else GateType.CONST0
    expanded = Netlist(f"{netlist.name}__x{frames}")
    for frame in range(frames):
        prefix = f"t{frame}__"
        for gate in netlist:
            name = prefix + gate.name
            if gate.gate_type is GateType.INPUT:
                expanded.add_gate(name, GateType.INPUT, ())
            elif gate.gate_type is GateType.DFF:
                if frame == 0:
                    expanded.add_gate(name, reset, ())
                else:
                    previous_d = f"t{frame - 1}__{gate.inputs[0]}"
                    expanded.add_gate(name, GateType.BUF, (previous_d,))
            else:
                expanded.add_gate(
                    name, gate.gate_type, tuple(prefix + i for i in gate.inputs)
                )
        for out in netlist.outputs:
            expanded.add_output(prefix + out)
    expanded.validate()
    return expanded, UnrollInfo(frames, tuple(netlist.inputs))


def assignment_to_sequence(
    info: UnrollInfo, assignment: Dict[str, int]
) -> List[Dict[str, int]]:
    """Convert an unrolled-PI assignment into per-frame input vectors."""
    sequence: List[Dict[str, int]] = []
    for frame in range(info.frames):
        sequence.append(
            {
                net: assignment.get(info.frame_input(frame, net), 0)
                for net in info.inputs
            }
        )
    return sequence


@dataclass
class SequenceResult:
    """Outcome of one sequential ATPG run."""

    status: Status
    fault: Fault
    #: The generated test sequence (per-frame {input: value}); DETECTED only.
    sequence: Optional[List[Dict[str, int]]] = None

    @property
    def detected(self) -> bool:
        return self.status is Status.DETECTED


class SequenceGenerator:
    """Sequential ATPG over a fixed frame budget."""

    def __init__(
        self,
        netlist: Netlist,
        frames: int = 4,
        backtrack_limit: int = 512,
        rng: Optional[random.Random] = None,
    ) -> None:
        if netlist.is_combinational:
            raise ValueError(
                "the circuit is combinational; use Podem directly"
            )
        self.netlist = netlist
        self.frames = frames
        self.backtrack_limit = backtrack_limit
        self.rng = rng or random.Random(0)
        self._good_unrolled, self.info = unroll(netlist, frames)

    def _miter_search(self, other: Netlist) -> Optional[Dict[str, int]]:
        miter = build_difference_miter(self._good_unrolled, other)
        engine = Podem(miter, backtrack_limit=self.backtrack_limit, rng=self.rng)
        result = engine.generate(Fault(MITER_OUTPUT, 0))
        if result.status is Status.DETECTED:
            return engine.fill(result, self.rng)
        return None if result.status is Status.UNTESTABLE else _ABORTED

    def generate(self, fault: Fault) -> SequenceResult:
        """A sequence detecting ``fault`` (present in every frame), if any.

        UNTESTABLE means no sequence of at most ``frames`` cycles from the
        reset state detects the fault.
        """
        faulty, _ = unroll(injected_copy(self.netlist, fault), self.frames)
        outcome = self._miter_search(faulty)
        if outcome is _ABORTED:
            return SequenceResult(Status.ABORTED, fault)
        if outcome is None:
            return SequenceResult(Status.UNTESTABLE, fault)
        return SequenceResult(
            Status.DETECTED, fault, assignment_to_sequence(self.info, outcome)
        )

    def distinguish(self, fault_a: Fault, fault_b: Fault) -> SequenceResult:
        """A sequence on which the two faulty machines respond differently."""
        unrolled_a, _ = unroll(injected_copy(self.netlist, fault_a), self.frames)
        unrolled_b, _ = unroll(injected_copy(self.netlist, fault_b), self.frames)
        miter = build_difference_miter(unrolled_a, unrolled_b)
        engine = Podem(miter, backtrack_limit=self.backtrack_limit, rng=self.rng)
        result = engine.generate(Fault(MITER_OUTPUT, 0))
        if result.status is Status.DETECTED:
            assignment = engine.fill(result, self.rng)
            return SequenceResult(
                Status.DETECTED,
                fault_a,
                assignment_to_sequence(self.info, assignment),
            )
        return SequenceResult(result.status, fault_a)


#: Sentinel distinguishing an aborted miter search from a proof.
_ABORTED = object()


def sequential_diagnostic_set(
    netlist: Netlist,
    faults,
    frames: int = 4,
    random_sequences_count: int = 32,
    seed: int = 0,
    backtrack_limit: int = 256,
    max_pairs: int = 200,
) -> "Tuple[List[Frames], dict]":
    """Diagnostic sequence set: distinguish fault pairs of a non-scan circuit.

    Starts from :func:`sequential_test_set`, partitions the detected
    faults by their sequence responses, and attacks adjacent pairs of each
    class with :meth:`SequenceGenerator.distinguish` until no class splits
    or ``max_pairs`` attempts are spent.  Returns the sequences and a
    report with ``classes_before`` / ``classes_after`` / the per-status
    pair lists.
    """
    from ..sim.seqfaultsim import sequential_response_table

    rng = random.Random(seed ^ 0x5E9)
    sequences, generation = sequential_test_set(
        netlist,
        faults,
        frames=frames,
        random_sequences_count=random_sequences_count,
        seed=seed,
        backtrack_limit=backtrack_limit,
    )
    targets = list(generation["detected"])
    report = {
        "generation": generation,
        "equivalent_pairs": [],
        "aborted_pairs": [],
        "classes_before": 0,
        "classes_after": 0,
    }

    def classes_of():
        table = sequential_response_table(netlist, sequences, targets)
        groups: Dict[tuple, List[int]] = {}
        for index in range(len(targets)):
            groups.setdefault(table.full_row(index), []).append(index)
        return list(groups.values())

    classes = classes_of()
    report["classes_before"] = len(classes)
    generator = SequenceGenerator(
        netlist, frames=frames, backtrack_limit=backtrack_limit, rng=rng
    )
    settled = set()
    attempts = 0
    progress = True
    while progress and attempts < max_pairs:
        progress = False
        for members in classes:
            if len(members) < 2 or attempts >= max_pairs:
                continue
            for left, right in zip(members, members[1:]):
                pair = frozenset((targets[left], targets[right]))
                if pair in settled:
                    continue
                attempts += 1
                outcome = generator.distinguish(targets[left], targets[right])
                if outcome.detected:
                    sequences.append(outcome.sequence)
                    progress = True
                else:
                    settled.add(pair)
                    record = (targets[left], targets[right])
                    if outcome.status is Status.UNTESTABLE:
                        report["equivalent_pairs"].append(record)
                    else:
                        report["aborted_pairs"].append(record)
                break
        if progress:
            classes = classes_of()
    report["classes_after"] = len(classes_of())
    return sequences, report


def sequential_test_set(
    netlist: Netlist,
    faults,
    frames: int = 4,
    random_sequences_count: int = 32,
    seed: int = 0,
    backtrack_limit: int = 256,
) -> "Tuple[List[Frames], dict]":
    """Detection sequence set: random sequences + miter top-up.

    Returns the sequence list and a report dict with per-status fault
    counts (``detected`` / ``untestable`` (within the budget) /
    ``aborted``).
    """
    from ..sim.seqfaultsim import random_sequences, sequential_detection_word

    rng = random.Random(seed)
    sequences: List[Frames] = random_sequences(
        netlist, count=random_sequences_count, length=frames, seed=seed
    )
    report = {"detected": [], "untestable": [], "aborted": []}
    generator = SequenceGenerator(
        netlist, frames=frames, backtrack_limit=backtrack_limit, rng=rng
    )
    for fault in faults:
        if sequential_detection_word(netlist, sequences, fault):
            report["detected"].append(fault)
            continue
        result = generator.generate(fault)
        if result.detected:
            sequences.append(result.sequence)
            report["detected"].append(fault)
        elif result.status is Status.UNTESTABLE:
            report["untestable"].append(fault)
        else:
            report["aborted"].append(fault)
    return sequences, report
