"""Two-pattern (launch/capture) test generation for transition faults.

SAT formulation: one copy of the circuit constrained to hold the fault
site at its initial value (the launch condition) and an independent
good-vs-faulty miter whose output is forced to 1 (the capture detection),
sharing nothing — enhanced-scan semantics where both vectors are free.
One :class:`~repro.atpg.sat.Solver` instance decides both at once, so an
UNSAT answer is a proof that no two-pattern test exists.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..circuit.netlist import Netlist
from ..faults.transition import TransitionFault, TransitionFaultSimulator
from ..sim.patterns import TestSet
from .cnf import CnfEncoder
from .distinguish import MITER_OUTPUT, build_difference_miter, injected_copy
from .podem import Status
from .sat import BudgetExceeded, Solver


@dataclass
class TransitionResult:
    """Outcome of one two-pattern generation attempt."""

    status: Status
    fault: TransitionFault
    launch: Optional[dict] = None
    capture: Optional[dict] = None

    @property
    def detected(self) -> bool:
        return self.status is Status.DETECTED


class TransitionAtpg:
    """SAT-based two-pattern ATPG for one combinational (scan) netlist."""

    def __init__(
        self,
        netlist: Netlist,
        max_conflicts: int = 50_000,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not netlist.is_combinational:
            raise ValueError("transition ATPG requires a full-scan netlist")
        self.netlist = netlist
        self.max_conflicts = max_conflicts
        self.rng = rng or random.Random(0)

    def generate(self, fault: TransitionFault) -> TransitionResult:
        """A (launch, capture) vector pair detecting ``fault``, if one exists."""
        solver = Solver()
        launch_encoder = CnfEncoder(self.netlist, solver)
        solver.add_clause(
            [launch_encoder.literal(fault.line, fault.initial_value)]
        )
        miter = build_difference_miter(
            self.netlist.copy(self.netlist.name),
            injected_copy(self.netlist, fault.residual_stuck_at),
        )
        capture_encoder = CnfEncoder(miter, solver)
        solver.add_clause([capture_encoder.literal(MITER_OUTPUT, 1)])
        try:
            model = solver.solve(max_conflicts=self.max_conflicts)
        except BudgetExceeded:
            return TransitionResult(Status.ABORTED, fault)
        if model is None:
            return TransitionResult(Status.UNTESTABLE, fault)
        return TransitionResult(
            Status.DETECTED,
            fault,
            launch=launch_encoder.extract_inputs(model),
            capture=capture_encoder.extract_inputs(model),
        )


def generate_transition_tests(
    netlist: Netlist,
    faults: List[TransitionFault],
    seed: int = 0,
    random_pairs: int = 64,
    max_stale_batches: int = 3,
    max_conflicts: int = 50_000,
) -> "Tuple[TestSet, TestSet, dict]":
    """Two-pattern test set for a transition fault list.

    Random launch/capture pairs first (retained per new detection), then
    SAT top-up per remaining fault.  Returns (launch set, capture set,
    report) with report keys ``detected`` / ``untestable`` / ``aborted``.
    """
    rng = random.Random(seed ^ 0x7A57)
    launch = TestSet(netlist.inputs)
    capture = TestSet(netlist.inputs)
    report = {"detected": [], "untestable": [], "aborted": []}
    remaining = list(faults)

    stale = 0
    while remaining and stale < max_stale_batches:
        batch_launch = TestSet.random(netlist.inputs, random_pairs, seed=rng.getrandbits(32))
        batch_capture = TestSet.random(netlist.inputs, random_pairs, seed=rng.getrandbits(32))
        simulator = TransitionFaultSimulator(netlist, batch_launch, batch_capture)
        useful = {}
        for fault in remaining:
            word = simulator.detection_word(fault)
            if word:
                useful.setdefault((word & -word).bit_length() - 1, []).append(fault)
        if not useful:
            stale += 1
            continue
        stale = 0
        newly = set()
        for j in sorted(useful):
            launch.append(batch_launch[j])
            capture.append(batch_capture[j])
            for fault in useful[j]:
                newly.add(fault)
                report["detected"].append(fault)
        remaining = [f for f in remaining if f not in newly]

    engine = TransitionAtpg(netlist, max_conflicts=max_conflicts, rng=rng)
    for fault in remaining:
        result = engine.generate(fault)
        if result.detected:
            launch.append_assignment(result.launch)
            capture.append_assignment(result.capture)
            report["detected"].append(fault)
        elif result.status is Status.UNTESTABLE:
            report["untestable"].append(fault)
        else:
            report["aborted"].append(fault)
    return launch, capture, report
