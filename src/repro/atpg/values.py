"""Three-valued (0/1/X) logic used by PODEM.

PODEM tracks, for every net, a pair of three-valued values: the fault-free
(good) value and the faulty value.  The composite five-valued alphabet of
the D-algorithm falls out of the pairing: ``D`` is good 1 / faulty 0 and
``D'`` is good 0 / faulty 1.
"""

from __future__ import annotations

from typing import Sequence

from ..circuit.gates import GateType

ZERO = 0
ONE = 1
X = 2

_NOT3 = (ONE, ZERO, X)


def not3(value: int) -> int:
    return _NOT3[value]


def and3(values: Sequence[int]) -> int:
    result = ONE
    for value in values:
        if value == ZERO:
            return ZERO
        if value == X:
            result = X
    return result


def or3(values: Sequence[int]) -> int:
    result = ZERO
    for value in values:
        if value == ONE:
            return ONE
        if value == X:
            result = X
    return result


def xor3(values: Sequence[int]) -> int:
    result = ZERO
    for value in values:
        if value == X:
            return X
        result ^= value
    return result


def evaluate3(gate_type: GateType, values: Sequence[int]) -> int:
    """Three-valued evaluation of one gate."""
    if gate_type is GateType.AND:
        return and3(values)
    if gate_type is GateType.NAND:
        return not3(and3(values))
    if gate_type is GateType.OR:
        return or3(values)
    if gate_type is GateType.NOR:
        return not3(or3(values))
    if gate_type is GateType.XOR:
        return xor3(values)
    if gate_type is GateType.XNOR:
        return not3(xor3(values))
    if gate_type is GateType.NOT:
        return not3(values[0])
    if gate_type is GateType.BUF:
        return values[0]
    if gate_type is GateType.CONST0:
        return ZERO
    if gate_type is GateType.CONST1:
        return ONE
    raise ValueError(f"cannot evaluate gate type {gate_type.value}")


def to_symbol(good: int, faulty: int) -> str:
    """Render a (good, faulty) pair in D-notation for debugging."""
    if good == X or faulty == X:
        return "X"
    if good == faulty:
        return str(good)
    return "D" if good == ONE else "D'"
