"""Gate-level circuit substrate: netlists, .bench I/O, benchmarks, scan."""

from .bench import BenchParseError, dump, dumps, load, loads
from .gates import GateType, evaluate_gate
from .generate import (
    ITC99_PRESETS,
    GeneratorSpec,
    ProxySpec,
    generate_netlist,
    proxy_response_table,
)
from .library import PROXY_SPECS, available_circuits, load_circuit
from .compactor import compaction_alias_rate, grouped_compactor, parity_compactor
from .netlist import Gate, Netlist, NetlistError, from_gates
from .scan import ScanInfo, full_scan, prepare_for_test
from .transforms import decompose_to_two_input, remove_dangling, sweep_constants
from .verilog import VerilogParseError

__all__ = [
    "BenchParseError",
    "Gate",
    "GateType",
    "GeneratorSpec",
    "ITC99_PRESETS",
    "Netlist",
    "NetlistError",
    "PROXY_SPECS",
    "ProxySpec",
    "ScanInfo",
    "VerilogParseError",
    "available_circuits",
    "compaction_alias_rate",
    "grouped_compactor",
    "parity_compactor",
    "decompose_to_two_input",
    "dump",
    "dumps",
    "remove_dangling",
    "sweep_constants",
    "evaluate_gate",
    "from_gates",
    "full_scan",
    "generate_netlist",
    "load",
    "load_circuit",
    "loads",
    "prepare_for_test",
    "proxy_response_table",
]
