"""Reader and writer for the ISCAS-85/89 ``.bench`` netlist format.

The format is line-oriented::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = NAND(G0, G1)
    G7  = DFF(G10)

Gate type names are case-insensitive.  ``NOT``/``INV`` and ``BUF``/``BUFF``
are accepted as synonyms.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Union

from .gates import GateType
from .netlist import Netlist, NetlistError

_ALIASES = {
    "INV": GateType.NOT,
    "BUFF": GateType.BUF,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}

_ASSIGN_RE = re.compile(r"^(?P<net>[^=\s]+)\s*=\s*(?P<type>\w+)\s*\((?P<args>[^)]*)\)$")
_IO_RE = re.compile(r"^(?P<kind>INPUT|OUTPUT)\s*\((?P<net>[^)]+)\)$", re.IGNORECASE)


class BenchParseError(NetlistError):
    """Raised on malformed ``.bench`` text, with a line number."""


def _gate_type(token: str, line_no: int) -> GateType:
    upper = token.upper()
    if upper in _ALIASES:
        return _ALIASES[upper]
    try:
        return GateType(upper)
    except ValueError:
        raise BenchParseError(f"line {line_no}: unknown gate type {token!r}")


def loads(text: str, name: str = "circuit") -> Netlist:
    """Parse ``.bench`` text into a validated :class:`Netlist`."""
    netlist = Netlist(name)
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            net = io_match.group("net").strip()
            if io_match.group("kind").upper() == "INPUT":
                netlist.add_input(net)
            else:
                netlist.add_output(net)
            continue
        assign = _ASSIGN_RE.match(line)
        if not assign:
            raise BenchParseError(f"line {line_no}: cannot parse {raw.strip()!r}")
        net = assign.group("net")
        gate_type = _gate_type(assign.group("type"), line_no)
        args = [a.strip() for a in assign.group("args").split(",") if a.strip()]
        try:
            netlist.add_gate(net, gate_type, args)
        except NetlistError as exc:
            raise BenchParseError(f"line {line_no}: {exc}") from exc
    netlist.validate()
    return netlist


def load(path: Union[str, Path], name: str = "") -> Netlist:
    """Read a ``.bench`` file; the netlist name defaults to the file stem."""
    path = Path(path)
    return loads(path.read_text(), name or path.stem)


def dumps(netlist: Netlist) -> str:
    """Serialise a :class:`Netlist` back to ``.bench`` text."""
    lines = [f"# {netlist.name}"]
    for net in netlist.inputs:
        lines.append(f"INPUT({net})")
    for net in netlist.outputs:
        lines.append(f"OUTPUT({net})")
    for gate in netlist:
        if gate.gate_type is GateType.INPUT:
            continue
        args = ", ".join(gate.inputs)
        lines.append(f"{gate.name} = {gate.gate_type.value}({args})")
    return "\n".join(lines) + "\n"


def dump(netlist: Netlist, path: Union[str, Path]) -> None:
    """Write a :class:`Netlist` to a ``.bench`` file."""
    Path(path).write_text(dumps(netlist))
