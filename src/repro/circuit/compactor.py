"""Output response compaction.

Section 2 of the paper notes that with test response compaction the
number of observed outputs ``m`` shrinks substantially — which shrinks
both the full dictionary (``k·n·m``) and the same/different dictionary's
baseline overhead (``k·m``).  This module implements space compaction in
the netlist domain: the circuit's ``m`` primary outputs are replaced by
``w < m`` parity (XOR-tree) signatures, so every downstream tool —
simulation, dictionaries, diagnosis — sees the compacted design as an
ordinary circuit.

Compaction trades observability for size: two different output vectors
can alias to the same signature.  The dictionaries built on a compacted
circuit quantify exactly that trade (see the compaction ablation bench).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .gates import GateType
from .netlist import Netlist


def parity_compactor(
    netlist: Netlist, width: int, prefix: str = "__sig"
) -> Netlist:
    """Replace the primary outputs with ``width`` interleaved parity groups.

    Output ``o`` feeds signature ``o mod width`` — the classic interleaved
    parity space compactor.  Groups with a single member become BUFs.  The
    returned netlist has ``width`` outputs named ``<prefix>0 …``.
    """
    if width < 1:
        raise ValueError("compactor width must be at least 1")
    if width >= len(netlist.outputs):
        raise ValueError(
            f"width {width} does not compact {len(netlist.outputs)} outputs"
        )
    groups: List[List[str]] = [[] for _ in range(width)]
    for index, net in enumerate(netlist.outputs):
        groups[index % width].append(net)
    return _with_compacted_outputs(netlist, groups, prefix)


def grouped_compactor(
    netlist: Netlist, groups: Sequence[Sequence[str]], prefix: str = "__sig"
) -> Netlist:
    """Compact with an explicit output grouping (each group one parity bit)."""
    seen = [net for group in groups for net in group]
    if sorted(seen) != sorted(netlist.outputs):
        raise ValueError("groups must partition the primary outputs")
    return _with_compacted_outputs(netlist, [list(g) for g in groups], prefix)


def _with_compacted_outputs(
    netlist: Netlist, groups: List[List[str]], prefix: str
) -> Netlist:
    compacted = Netlist(f"{netlist.name}__x{len(groups)}")
    for gate in netlist:
        compacted.add_gate(gate.name, gate.gate_type, gate.inputs)
    for index, group in enumerate(groups):
        name = f"{prefix}{index}"
        if len(group) == 1:
            compacted.add_gate(name, GateType.BUF, (group[0],))
        else:
            compacted.add_gate(name, GateType.XOR, tuple(group))
        compacted.add_output(name)
    compacted.validate()
    return compacted


def compaction_alias_rate(
    netlist: Netlist,
    compacted: Netlist,
    vectors: "Tuple[int, ...]" = (),
) -> float:
    """Fraction of distinct full output vectors that collide after compaction.

    Exhaustive over the input space when ``vectors`` is empty (small
    circuits only); otherwise over the given test integers.
    """
    from ..sim.patterns import TestSet
    from ..sim.logicsim import output_vectors

    tests = (
        TestSet.exhaustive(netlist.inputs)
        if not vectors
        else TestSet(netlist.inputs, vectors)
    )
    full = output_vectors(netlist, tests)
    small = output_vectors(compacted, tests)
    full_distinct = set(full)
    collided = set()
    seen = {}
    for f, s in zip(full, small):
        if s in seen and seen[s] != f:
            collided.add(f)
            collided.add(seen[s])
        else:
            seen.setdefault(s, f)
    return len(collided) / len(full_distinct) if full_distinct else 0.0
