"""Gate types and bit-parallel evaluation functions.

Every net in a simulation carries a Python integer whose bit ``p`` is the
logic value of the net under test pattern ``p``.  A gate evaluation is then a
single arbitrary-precision bitwise operation across all patterns at once.
Inversions are performed as ``mask ^ value`` where ``mask`` has one set bit
per pattern, so values never grow negative or wider than the pattern count.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Sequence


class GateType(enum.Enum):
    """The gate primitives understood by the netlist and simulators."""

    INPUT = "INPUT"
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    DFF = "DFF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"

    @property
    def is_sequential(self) -> bool:
        return self is GateType.DFF

    @property
    def is_constant(self) -> bool:
        return self in (GateType.CONST0, GateType.CONST1)

    @property
    def min_inputs(self) -> int:
        return _MIN_INPUTS[self]

    @property
    def max_inputs(self) -> int:
        """Maximum number of inputs, or -1 when unbounded."""
        return _MAX_INPUTS[self]


_MIN_INPUTS: Dict[GateType, int] = {
    GateType.INPUT: 0,
    GateType.AND: 2,
    GateType.NAND: 2,
    GateType.OR: 2,
    GateType.NOR: 2,
    GateType.XOR: 2,
    GateType.XNOR: 2,
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.DFF: 1,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
}

_MAX_INPUTS: Dict[GateType, int] = {
    GateType.INPUT: 0,
    GateType.AND: -1,
    GateType.NAND: -1,
    GateType.OR: -1,
    GateType.NOR: -1,
    GateType.XOR: -1,
    GateType.XNOR: -1,
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.DFF: 1,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
}

# Gate types whose output inverts relative to the underlying monotone
# function; used by fault collapsing to map input faults to output faults.
INVERTING = frozenset({GateType.NAND, GateType.NOR, GateType.NOT, GateType.XNOR})


def _eval_and(inputs: Sequence[int], mask: int) -> int:
    value = mask
    for bits in inputs:
        value &= bits
    return value


def _eval_or(inputs: Sequence[int], mask: int) -> int:
    value = 0
    for bits in inputs:
        value |= bits
    return value


def _eval_xor(inputs: Sequence[int], mask: int) -> int:
    value = 0
    for bits in inputs:
        value ^= bits
    return value


def _eval_nand(inputs: Sequence[int], mask: int) -> int:
    return mask ^ _eval_and(inputs, mask)


def _eval_nor(inputs: Sequence[int], mask: int) -> int:
    return mask ^ _eval_or(inputs, mask)


def _eval_xnor(inputs: Sequence[int], mask: int) -> int:
    return mask ^ _eval_xor(inputs, mask)


def _eval_not(inputs: Sequence[int], mask: int) -> int:
    return mask ^ inputs[0]


def _eval_buf(inputs: Sequence[int], mask: int) -> int:
    return inputs[0]


def _eval_const0(inputs: Sequence[int], mask: int) -> int:
    return 0


def _eval_const1(inputs: Sequence[int], mask: int) -> int:
    return mask


#: Bit-parallel evaluation function per gate type.  ``INPUT`` and ``DFF``
#: are driven externally (pattern source / scan state) and therefore have no
#: entry; the full-scan transform replaces DFFs before simulation.
EVALUATORS: Dict[GateType, Callable[[Sequence[int], int], int]] = {
    GateType.AND: _eval_and,
    GateType.NAND: _eval_nand,
    GateType.OR: _eval_or,
    GateType.NOR: _eval_nor,
    GateType.XOR: _eval_xor,
    GateType.XNOR: _eval_xnor,
    GateType.NOT: _eval_not,
    GateType.BUF: _eval_buf,
    GateType.CONST0: _eval_const0,
    GateType.CONST1: _eval_const1,
}


def evaluate_gate(gate_type: GateType, inputs: Sequence[int], mask: int) -> int:
    """Evaluate one gate bit-parallel over all patterns.

    ``inputs`` are the big-int values of the gate's fan-in nets and ``mask``
    is the all-patterns-set constant ``(1 << num_patterns) - 1``.
    """
    try:
        evaluator = EVALUATORS[gate_type]
    except KeyError:
        raise ValueError(f"gate type {gate_type.value} cannot be evaluated directly")
    return evaluator(inputs, mask)


#: Controlling value per gate type (the input value that alone determines the
#: output), or None for parity gates which have no controlling value.  Used
#: by PODEM's backtrace and by testability heuristics.
CONTROLLING_VALUE: Dict[GateType, int] = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}

#: Output value produced when a controlling value is present.
CONTROLLED_OUTPUT: Dict[GateType, int] = {
    GateType.AND: 0,
    GateType.NAND: 1,
    GateType.OR: 1,
    GateType.NOR: 0,
}
