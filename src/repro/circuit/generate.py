"""Deterministic synthetic benchmark circuit generator.

The paper evaluates on ISCAS-89 sequential circuits, which are not
redistributable in this environment.  :func:`generate_netlist` produces a
random sequential circuit with a requested interface (primary inputs,
primary outputs, flip-flops) and gate count, fully determined by its seed.
The generator biases fan-in selection toward recently created nets so the
circuit acquires realistic logic depth and reconvergent fan-out rather than
a flat two-level structure.

For ITC-99-scale work (10k–30k collapsed faults) actually fault-simulating
a generated netlist is infeasible in pure Python, so :data:`ITC99_PRESETS`
carries interface-stat presets modelled on b14/b15/b17 and
:func:`proxy_response_table` synthesises the *response table* directly —
deterministic in the preset, cone-structured so detection rows collide and
the same/different selection problem stays non-trivial, and cheap enough
to rebuild identically in a resumed or subprocess-driven build (see
``docs/scaling.md``).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..faults.model import Fault
from .gates import GateType
from .netlist import Netlist

#: Gate type mix for generated logic; NAND/NOR heavy like standard-cell
#: mapped benchmark circuits, with occasional parity gates for response
#: diversity.
_GATE_MIX = (
    (GateType.NAND, 30),
    (GateType.NOR, 22),
    (GateType.AND, 14),
    (GateType.OR, 14),
    (GateType.NOT, 10),
    (GateType.XOR, 5),
    (GateType.XNOR, 3),
    (GateType.BUF, 2),
)

#: Fan-in count distribution for multi-input gates.
_FANIN_MIX = ((2, 70), (3, 22), (4, 8))


def _weighted_choice(rng: random.Random, pairs) -> object:
    total = sum(weight for _, weight in pairs)
    pick = rng.uniform(0, total)
    accumulated = 0.0
    for value, weight in pairs:
        accumulated += weight
        if pick <= accumulated:
            return value
    return pairs[-1][0]


@dataclass(frozen=True)
class GeneratorSpec:
    """Parameters of one synthetic circuit.  Equal specs generate equal netlists."""

    name: str
    n_inputs: int
    n_outputs: int
    n_flip_flops: int
    n_gates: int
    seed: int

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise ValueError("need at least one primary input")
        if self.n_outputs < 1:
            raise ValueError("need at least one primary output")
        if self.n_flip_flops < 0:
            raise ValueError("flip-flop count cannot be negative")
        minimum = self.n_outputs + self.n_flip_flops
        if self.n_gates < minimum:
            raise ValueError(
                f"n_gates={self.n_gates} too small: need at least one gate per "
                f"output and per flip-flop D input ({minimum})"
            )


def generate_netlist(spec: GeneratorSpec) -> Netlist:
    """Generate the circuit described by ``spec`` (deterministic in ``spec``)."""
    rng = random.Random(spec.seed)
    netlist = Netlist(spec.name)

    sources: List[str] = []
    for i in range(spec.n_inputs):
        netlist.add_input(f"pi{i}")
        sources.append(f"pi{i}")
    # Flip-flop outputs are sources of the combinational logic; their D
    # inputs are wired up after the logic exists.
    for i in range(spec.n_flip_flops):
        sources.append(f"ff{i}")

    # Layered construction: gate i targets a logic level that grows linearly
    # with i up to ``depth``.  Its first fan-in comes from the previous
    # level (fixing the gate's level); the rest come from any earlier
    # level, which produces reconvergent fan-out without degenerating into
    # a single deep chain whose signals saturate to constants.
    depth = max(4, int(2.5 * math.log2(spec.n_gates)))
    by_level: List[List[str]] = [list(sources)]
    levels = {net: 0 for net in sources}
    nets: List[str] = list(sources)
    for i in range(spec.n_gates):
        target = 1 + (i * (depth - 1)) // max(1, spec.n_gates - 1)
        target = min(target, len(by_level))
        gate_type = _weighted_choice(rng, _GATE_MIX)
        if gate_type in (GateType.NOT, GateType.BUF):
            fanin_count = 1
        else:
            fanin_count = min(_weighted_choice(rng, _FANIN_MIX), len(nets))
            if fanin_count < 2:
                gate_type = GateType.NOT
                fanin_count = 1
        fanin = [rng.choice(by_level[target - 1])]
        while len(fanin) < fanin_count:
            candidate = nets[rng.randrange(len(nets))]
            if levels[candidate] < target and candidate not in fanin:
                fanin.append(candidate)
        name = f"n{i}"
        netlist.add_gate(name, gate_type, fanin)
        level = 1 + max(levels[net] for net in fanin)
        levels[name] = level
        while len(by_level) <= level:
            by_level.append([])
        by_level[level].append(name)
        nets.append(name)

    sinks = _sink_nets(netlist, spec)
    rng.shuffle(sinks)
    for i in range(spec.n_flip_flops):
        netlist.add_gate(f"ff{i}", GateType.DFF, (sinks[i],))
    for i in range(spec.n_outputs):
        netlist.add_output(sinks[spec.n_flip_flops + i])

    netlist.validate()
    return netlist


@dataclass(frozen=True)
class ProxySpec:
    """Interface statistics of one ITC-99-class proxy circuit.

    The interface numbers (inputs, outputs, flip-flops, gates) follow the
    published ITC-99 benchmark statistics; ``n_faults`` is the collapsed
    stuck-at fault count the proxy response table carries and ``n_tests``
    a pseudo-random pattern budget sized for dictionary experiments.
    Equal specs synthesise equal tables.
    """

    name: str
    n_inputs: int
    n_outputs: int
    n_flip_flops: int
    n_gates: int
    n_faults: int
    n_tests: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_inputs < 1 or self.n_outputs < 1:
            raise ValueError("proxy needs at least one input and one output")
        if self.n_faults < 2:
            raise ValueError("proxy needs at least two faults")
        if self.n_tests < 1:
            raise ValueError("proxy needs at least one test")


#: ITC-99-class interface presets: b14/b15/b17 proxies at collapsed fault
#: counts of 10k–30k.  These feed :func:`proxy_response_table`, not the
#: gate-level generator — simulating circuits this size in pure Python is
#: out of reach, the dictionary build is what scales.
ITC99_PRESETS: Dict[str, ProxySpec] = {
    "b14p": ProxySpec("b14p", 32, 54, 245, 10098, 10000, 160, seed=14),
    "b15p": ProxySpec("b15p", 36, 70, 449, 8922, 12000, 160, seed=15),
    "b17p": ProxySpec("b17p", 37, 97, 1415, 32326, 30000, 200, seed=17),
}


def proxy_response_table(
    spec: Union[str, ProxySpec],
    n_faults: Optional[int] = None,
    n_tests: Optional[int] = None,
):
    """Synthesise a deterministic ITC-99-scale response table, no simulation.

    ``spec`` is a :class:`ProxySpec` or a preset name from
    :data:`ITC99_PRESETS`; ``n_faults`` / ``n_tests`` override the preset
    counts (quick modes downsize without changing the structure — the
    result is still a pure function of the three arguments, which is what
    lets a SIGKILL'd build's driver re-derive the identical table before
    resuming).

    Structure: faults are grouped into *cones* (shared logic regions).  A
    cone fixes which tests can detect its faults and a small pool of
    failing signatures per test, so faults of one cone collide in their
    pass/fail rows while differing in output signatures — exactly the
    regime where the same/different dictionary buys resolution over
    pass/fail and Procedure 1 has real work to do.
    """
    from ..sim.patterns import TestSet
    from ..sim.responses import ResponseTable

    if isinstance(spec, str):
        try:
            spec = ITC99_PRESETS[spec]
        except KeyError:
            raise KeyError(
                f"unknown ITC-99 proxy preset {spec!r}; "
                f"available: {', '.join(sorted(ITC99_PRESETS))}"
            ) from None
    faults_n = n_faults if n_faults is not None else spec.n_faults
    tests_n = n_tests if n_tests is not None else spec.n_tests
    if faults_n < 2 or tests_n < 1:
        raise ValueError(f"degenerate proxy size {faults_n}x{tests_n}")
    rng = random.Random(spec.seed * 1_000_003 + faults_n * 1_009 + tests_n)

    outputs = [f"po{o}" for o in range(spec.n_outputs)]
    inputs = [f"pi{i}" for i in range(spec.n_inputs)]
    tests = TestSet(
        inputs, [rng.getrandbits(spec.n_inputs) for _ in range(tests_n)]
    )
    # Fault lines reference the synthetic gate namespace of the preset's
    # interface stats; two faults (sa0/sa1) per named line.
    faults = [
        Fault(f"n{i // 2}", i % 2) for i in range(faults_n)
    ]

    # Cones: each owns a handful of detecting tests and, per test, a
    # small signature pool drawn from nearby outputs.
    n_cones = max(8, faults_n // 40)
    cone_tests: List[List[int]] = []
    cone_pools: List[Dict[int, List[Tuple[int, ...]]]] = []
    for _ in range(n_cones):
        span = rng.randint(3, min(9, tests_n))
        detecting = sorted(rng.sample(range(tests_n), span))
        anchor = rng.randrange(spec.n_outputs)
        pools: Dict[int, List[Tuple[int, ...]]] = {}
        for j in detecting:
            pool = []
            for _ in range(rng.randint(2, 4)):
                width = rng.randint(1, min(4, spec.n_outputs))
                lo = max(0, min(anchor - 3, spec.n_outputs - width - 3))
                hi = min(spec.n_outputs - 1, anchor + 3 + width)
                sig = tuple(sorted(rng.sample(range(lo, hi + 1), width)))
                if sig not in pool:
                    pool.append(sig)
            pools[j] = pool
        cone_tests.append(detecting)
        cone_pools.append(pools)

    failing: List[Dict[int, Tuple[int, ...]]] = []
    for _ in range(faults_n):
        cone = rng.randrange(n_cones)
        row: Dict[int, Tuple[int, ...]] = {}
        for j in cone_tests[cone]:
            if rng.random() < 0.7:
                row[j] = rng.choice(cone_pools[cone][j])
        if not row:
            # Every collapsed fault is detectable by construction.
            j = rng.choice(cone_tests[cone])
            row[j] = rng.choice(cone_pools[cone][j])
        failing.append(row)

    good = {net: rng.getrandbits(tests_n) for net in outputs}
    return ResponseTable(outputs, faults, tests, failing, good)


def _sink_nets(netlist: Netlist, spec: GeneratorSpec) -> List[str]:
    """Choose distinct nets to serve as PO / flip-flop D connections.

    Dangling gate outputs are used so that every gate has a path to an
    observable point.  Surplus dangling nets are merged pairwise through
    extra NAND gates (so the final gate count can slightly exceed
    ``spec.n_gates``); a shortfall is covered by the deepest logic nets.
    """
    needed = spec.n_outputs + spec.n_flip_flops
    fanout = netlist.fanout_map()
    logic = [g.name for g in netlist if g.gate_type is not GateType.INPUT]
    dangling = [name for name in logic if not fanout[name]]
    # FIFO pairwise merging builds a balanced tree, adding only
    # logarithmic depth.
    merge_index = 0
    while len(dangling) > needed:
        left = dangling.pop(0)
        right = dangling.pop(0)
        name = f"m{merge_index}"
        merge_index += 1
        netlist.add_gate(name, GateType.NAND, (left, right))
        dangling.append(name)
    if len(dangling) < needed:
        used = set(dangling)
        extras = [name for name in reversed(logic) if name not in used]
        dangling += extras[: needed - len(dangling)]
    return dangling
