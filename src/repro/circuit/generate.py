"""Deterministic synthetic benchmark circuit generator.

The paper evaluates on ISCAS-89 sequential circuits, which are not
redistributable in this environment.  :func:`generate_netlist` produces a
random sequential circuit with a requested interface (primary inputs,
primary outputs, flip-flops) and gate count, fully determined by its seed.
The generator biases fan-in selection toward recently created nets so the
circuit acquires realistic logic depth and reconvergent fan-out rather than
a flat two-level structure.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

from .gates import GateType
from .netlist import Netlist

#: Gate type mix for generated logic; NAND/NOR heavy like standard-cell
#: mapped benchmark circuits, with occasional parity gates for response
#: diversity.
_GATE_MIX = (
    (GateType.NAND, 30),
    (GateType.NOR, 22),
    (GateType.AND, 14),
    (GateType.OR, 14),
    (GateType.NOT, 10),
    (GateType.XOR, 5),
    (GateType.XNOR, 3),
    (GateType.BUF, 2),
)

#: Fan-in count distribution for multi-input gates.
_FANIN_MIX = ((2, 70), (3, 22), (4, 8))


def _weighted_choice(rng: random.Random, pairs) -> object:
    total = sum(weight for _, weight in pairs)
    pick = rng.uniform(0, total)
    accumulated = 0.0
    for value, weight in pairs:
        accumulated += weight
        if pick <= accumulated:
            return value
    return pairs[-1][0]


@dataclass(frozen=True)
class GeneratorSpec:
    """Parameters of one synthetic circuit.  Equal specs generate equal netlists."""

    name: str
    n_inputs: int
    n_outputs: int
    n_flip_flops: int
    n_gates: int
    seed: int

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise ValueError("need at least one primary input")
        if self.n_outputs < 1:
            raise ValueError("need at least one primary output")
        if self.n_flip_flops < 0:
            raise ValueError("flip-flop count cannot be negative")
        minimum = self.n_outputs + self.n_flip_flops
        if self.n_gates < minimum:
            raise ValueError(
                f"n_gates={self.n_gates} too small: need at least one gate per "
                f"output and per flip-flop D input ({minimum})"
            )


def generate_netlist(spec: GeneratorSpec) -> Netlist:
    """Generate the circuit described by ``spec`` (deterministic in ``spec``)."""
    rng = random.Random(spec.seed)
    netlist = Netlist(spec.name)

    sources: List[str] = []
    for i in range(spec.n_inputs):
        netlist.add_input(f"pi{i}")
        sources.append(f"pi{i}")
    # Flip-flop outputs are sources of the combinational logic; their D
    # inputs are wired up after the logic exists.
    for i in range(spec.n_flip_flops):
        sources.append(f"ff{i}")

    # Layered construction: gate i targets a logic level that grows linearly
    # with i up to ``depth``.  Its first fan-in comes from the previous
    # level (fixing the gate's level); the rest come from any earlier
    # level, which produces reconvergent fan-out without degenerating into
    # a single deep chain whose signals saturate to constants.
    depth = max(4, int(2.5 * math.log2(spec.n_gates)))
    by_level: List[List[str]] = [list(sources)]
    levels = {net: 0 for net in sources}
    nets: List[str] = list(sources)
    for i in range(spec.n_gates):
        target = 1 + (i * (depth - 1)) // max(1, spec.n_gates - 1)
        target = min(target, len(by_level))
        gate_type = _weighted_choice(rng, _GATE_MIX)
        if gate_type in (GateType.NOT, GateType.BUF):
            fanin_count = 1
        else:
            fanin_count = min(_weighted_choice(rng, _FANIN_MIX), len(nets))
            if fanin_count < 2:
                gate_type = GateType.NOT
                fanin_count = 1
        fanin = [rng.choice(by_level[target - 1])]
        while len(fanin) < fanin_count:
            candidate = nets[rng.randrange(len(nets))]
            if levels[candidate] < target and candidate not in fanin:
                fanin.append(candidate)
        name = f"n{i}"
        netlist.add_gate(name, gate_type, fanin)
        level = 1 + max(levels[net] for net in fanin)
        levels[name] = level
        while len(by_level) <= level:
            by_level.append([])
        by_level[level].append(name)
        nets.append(name)

    sinks = _sink_nets(netlist, spec)
    rng.shuffle(sinks)
    for i in range(spec.n_flip_flops):
        netlist.add_gate(f"ff{i}", GateType.DFF, (sinks[i],))
    for i in range(spec.n_outputs):
        netlist.add_output(sinks[spec.n_flip_flops + i])

    netlist.validate()
    return netlist


def _sink_nets(netlist: Netlist, spec: GeneratorSpec) -> List[str]:
    """Choose distinct nets to serve as PO / flip-flop D connections.

    Dangling gate outputs are used so that every gate has a path to an
    observable point.  Surplus dangling nets are merged pairwise through
    extra NAND gates (so the final gate count can slightly exceed
    ``spec.n_gates``); a shortfall is covered by the deepest logic nets.
    """
    needed = spec.n_outputs + spec.n_flip_flops
    fanout = netlist.fanout_map()
    logic = [g.name for g in netlist if g.gate_type is not GateType.INPUT]
    dangling = [name for name in logic if not fanout[name]]
    # FIFO pairwise merging builds a balanced tree, adding only
    # logarithmic depth.
    merge_index = 0
    while len(dangling) > needed:
        left = dangling.pop(0)
        right = dangling.pop(0)
        name = f"m{merge_index}"
        merge_index += 1
        netlist.add_gate(name, GateType.NAND, (left, right))
        dangling.append(name)
    if len(dangling) < needed:
        used = set(dangling)
        extras = [name for name in reversed(logic) if name not in used]
        dangling += extras[: needed - len(dangling)]
    return dangling
