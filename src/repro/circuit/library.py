"""Built-in circuits.

Two real benchmark circuits (ISCAS-85 ``c17`` and ISCAS-89 ``s27``) are
embedded verbatim for ground-truth testing.  The ISCAS-89 circuits evaluated
in the paper (s208 … s9234) are not redistributable here, so
:func:`load_circuit` falls back to deterministic synthetic proxies
(``p208`` … ``p9234``) from :mod:`repro.circuit.generate` whose interface
statistics (PIs, POs, flip-flops, gate count) approximate the published
originals.  See DESIGN.md, "Substitutions".
"""

from __future__ import annotations

from typing import Dict, List

from . import bench
from .generate import GeneratorSpec, generate_netlist
from .netlist import Netlist

C17_BENCH = """\
# c17 (ISCAS-85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""

S27_BENCH = """\
# s27 (ISCAS-89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""

_EMBEDDED: Dict[str, str] = {"c17": C17_BENCH, "s27": S27_BENCH}

#: Synthetic proxies for the paper's ISCAS-89 circuits.  The interface
#: statistics approximate the published originals; functionality is a
#: deterministic random function of the fixed seed.
PROXY_SPECS: Dict[str, GeneratorSpec] = {
    "p208": GeneratorSpec("p208", n_inputs=10, n_outputs=1, n_flip_flops=8, n_gates=96, seed=208),
    "p298": GeneratorSpec("p298", n_inputs=3, n_outputs=6, n_flip_flops=14, n_gates=119, seed=298),
    "p344": GeneratorSpec("p344", n_inputs=9, n_outputs=11, n_flip_flops=15, n_gates=160, seed=344),
    "p382": GeneratorSpec("p382", n_inputs=3, n_outputs=6, n_flip_flops=21, n_gates=158, seed=382),
    "p386": GeneratorSpec("p386", n_inputs=7, n_outputs=7, n_flip_flops=6, n_gates=159, seed=386),
    "p400": GeneratorSpec("p400", n_inputs=3, n_outputs=6, n_flip_flops=21, n_gates=162, seed=400),
    "p420": GeneratorSpec("p420", n_inputs=18, n_outputs=1, n_flip_flops=16, n_gates=218, seed=420),
    "p510": GeneratorSpec("p510", n_inputs=19, n_outputs=7, n_flip_flops=6, n_gates=211, seed=510),
    "p526": GeneratorSpec("p526", n_inputs=3, n_outputs=6, n_flip_flops=21, n_gates=193, seed=526),
    "p641": GeneratorSpec("p641", n_inputs=35, n_outputs=24, n_flip_flops=19, n_gates=379, seed=641),
    "p820": GeneratorSpec("p820", n_inputs=18, n_outputs=19, n_flip_flops=5, n_gates=289, seed=820),
    "p953": GeneratorSpec("p953", n_inputs=16, n_outputs=23, n_flip_flops=29, n_gates=395, seed=953),
    "p1196": GeneratorSpec("p1196", n_inputs=14, n_outputs=14, n_flip_flops=18, n_gates=529, seed=1196),
    "p1423": GeneratorSpec("p1423", n_inputs=17, n_outputs=5, n_flip_flops=74, n_gates=657, seed=1423),
    "p5378": GeneratorSpec("p5378", n_inputs=35, n_outputs=49, n_flip_flops=179, n_gates=2779, seed=5378),
    "p9234": GeneratorSpec("p9234", n_inputs=36, n_outputs=39, n_flip_flops=211, n_gates=5597, seed=9234),
}


def available_circuits() -> List[str]:
    """Names accepted by :func:`load_circuit`, embedded circuits first."""
    return list(_EMBEDDED) + list(PROXY_SPECS)


def load_circuit(name: str) -> Netlist:
    """Load an embedded circuit or generate a named synthetic proxy."""
    if name in _EMBEDDED:
        return bench.loads(_EMBEDDED[name], name)
    if name in PROXY_SPECS:
        return generate_netlist(PROXY_SPECS[name])
    raise KeyError(
        f"unknown circuit {name!r}; available: {', '.join(available_circuits())}"
    )
