"""Gate-level netlist representation.

A :class:`Netlist` is a named directed acyclic graph of :class:`Gate`
objects.  Each gate drives exactly one net, identified by the gate's name
(the ISCAS convention).  Primary inputs are gates of type ``INPUT``; primary
outputs are a list of net names.  Sequential circuits use ``DFF`` gates; the
full-scan transform in :mod:`repro.circuit.scan` converts them into
pseudo-inputs/pseudo-outputs before test generation and simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .gates import GateType


class NetlistError(ValueError):
    """Raised for structurally invalid netlists."""


@dataclass
class Gate:
    """One gate: drives the net named ``name`` from the nets in ``inputs``."""

    name: str
    gate_type: GateType
    inputs: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.inputs = tuple(self.inputs)
        n = len(self.inputs)
        lo = self.gate_type.min_inputs
        hi = self.gate_type.max_inputs
        if n < lo or (hi >= 0 and n > hi):
            raise NetlistError(
                f"gate {self.name!r} of type {self.gate_type.value} has {n} "
                f"inputs (expected {lo}{'+' if hi < 0 else f'..{hi}'})"
            )


class Netlist:
    """A combinational or sequential gate-level circuit.

    Gates must be added before they are referenced only in the sense that
    the final structure is checked by :meth:`validate`; construction order
    is free.  All analysis results (levels, fan-out, cones) are computed
    lazily and cached; adding a gate invalidates the caches.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.gates: Dict[str, Gate] = {}
        self.outputs: List[str] = []
        self._invalidate()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_gate(self, name: str, gate_type: GateType, inputs: Sequence[str] = ()) -> Gate:
        """Add a gate driving net ``name``; returns the new :class:`Gate`."""
        if name in self.gates:
            raise NetlistError(f"net {name!r} is driven twice")
        gate = Gate(name, gate_type, tuple(inputs))
        self.gates[name] = gate
        self._invalidate()
        return gate

    def add_input(self, name: str) -> Gate:
        return self.add_gate(name, GateType.INPUT)

    def add_output(self, name: str) -> None:
        """Mark net ``name`` as a primary output (may be declared early)."""
        if name in self.outputs:
            raise NetlistError(f"output {name!r} declared twice")
        self.outputs.append(name)

    def _invalidate(self) -> None:
        self._order: Optional[List[str]] = None
        self._levels: Optional[Dict[str, int]] = None
        self._fanout: Optional[Dict[str, Tuple[str, ...]]] = None

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> List[str]:
        """Primary input net names, in insertion order."""
        return [g.name for g in self.gates.values() if g.gate_type is GateType.INPUT]

    @property
    def flip_flops(self) -> List[str]:
        """DFF output net names, in insertion order."""
        return [g.name for g in self.gates.values() if g.gate_type is GateType.DFF]

    @property
    def is_combinational(self) -> bool:
        return not self.flip_flops

    @property
    def num_gates(self) -> int:
        """Number of logic gates (excludes INPUT pseudo-gates)."""
        return sum(1 for g in self.gates.values() if g.gate_type is not GateType.INPUT)

    def __contains__(self, net: str) -> bool:
        return net in self.gates

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates.values())

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural sanity; raises :class:`NetlistError` on problems.

        Checks that every referenced net is driven, every output exists, and
        the combinational part is acyclic (DFF outputs break cycles).
        """
        for gate in self.gates.values():
            for net in gate.inputs:
                if net not in self.gates:
                    raise NetlistError(f"gate {gate.name!r} reads undriven net {net!r}")
        for net in self.outputs:
            if net not in self.gates:
                raise NetlistError(f"primary output {net!r} is not driven")
        if not self.outputs:
            raise NetlistError("netlist has no primary outputs")
        self.topological_order()  # raises on combinational cycles

    # ------------------------------------------------------------------
    # structural analysis
    # ------------------------------------------------------------------
    def topological_order(self) -> List[str]:
        """Net names in a combinational topological order.

        INPUT and DFF gates (the pattern sources) come first; every other
        gate appears after all of its fan-in.  DFF *inputs* are ordinary
        combinational nets, so sequential loops through DFFs are legal.
        """
        if self._order is not None:
            return self._order
        indegree: Dict[str, int] = {}
        for gate in self.gates.values():
            if gate.gate_type in (GateType.INPUT, GateType.DFF):
                indegree[gate.name] = 0
            else:
                indegree[gate.name] = len(gate.inputs)
        fanout = self.fanout_map()
        ready = [name for name, deg in indegree.items() if deg == 0]
        order: List[str] = []
        while ready:
            net = ready.pop()
            order.append(net)
            for successor in fanout[net]:
                if self.gates[successor].gate_type is GateType.DFF:
                    continue
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    ready.append(successor)
        if len(order) != len(self.gates):
            cyclic = sorted(set(self.gates) - set(order))
            raise NetlistError(f"combinational cycle involving nets {cyclic[:5]}")
        self._order = order
        return order

    def levelize(self) -> Dict[str, int]:
        """Level of each net: 0 for sources, 1 + max(fan-in levels) otherwise."""
        if self._levels is not None:
            return self._levels
        levels: Dict[str, int] = {}
        for net in self.topological_order():
            gate = self.gates[net]
            if gate.gate_type in (GateType.INPUT, GateType.DFF) or not gate.inputs:
                levels[net] = 0
            else:
                levels[net] = 1 + max(levels[i] for i in gate.inputs)
        self._levels = levels
        return levels

    def fanout_map(self) -> Dict[str, Tuple[str, ...]]:
        """Map each net to the names of the gates it feeds."""
        if self._fanout is not None:
            return self._fanout
        fanout: Dict[str, List[str]] = {name: [] for name in self.gates}
        for gate in self.gates.values():
            for net in gate.inputs:
                if net in fanout:
                    fanout[net].append(gate.name)
        self._fanout = {name: tuple(sinks) for name, sinks in fanout.items()}
        return self._fanout

    def output_cone(self, net: str) -> Set[str]:
        """Transitive combinational fan-out of ``net`` (including ``net``).

        The cone stops at DFF boundaries: a DFF input is in the cone but
        the DFF's output is not, matching single-time-frame simulation.
        """
        fanout = self.fanout_map()
        cone: Set[str] = {net}
        stack = [net]
        while stack:
            current = stack.pop()
            for successor in fanout[current]:
                if successor in cone:
                    continue
                if self.gates[successor].gate_type is GateType.DFF:
                    continue
                cone.add(successor)
                stack.append(successor)
        return cone

    def input_cone(self, net: str) -> Set[str]:
        """Transitive fan-in of ``net`` (including ``net``), stopping at sources."""
        cone: Set[str] = {net}
        stack = [net]
        while stack:
            gate = self.gates[stack.pop()]
            if gate.gate_type is GateType.DFF:
                continue
            for predecessor in gate.inputs:
                if predecessor not in cone:
                    cone.add(predecessor)
                    stack.append(predecessor)
        return cone

    # ------------------------------------------------------------------
    # editing
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Netlist":
        """Deep copy, optionally renamed."""
        clone = Netlist(name or self.name)
        for gate in self.gates.values():
            clone.add_gate(gate.name, gate.gate_type, gate.inputs)
        for net in self.outputs:
            clone.add_output(net)
        return clone

    def with_line_tied(self, net: str, value: int, name: Optional[str] = None) -> "Netlist":
        """Copy of this netlist with ``net`` replaced by a constant driver.

        Used by diagnostic ATPG: injecting fault ``f2`` (``net`` stuck at
        ``value``) structurally lets PODEM target ``f1`` in the faulty
        machine, so a generated test tells the two faults apart.
        """
        if net not in self.gates:
            raise NetlistError(f"cannot tie unknown net {net!r}")
        if value not in (0, 1):
            raise ValueError(f"tie value must be 0 or 1, got {value!r}")
        clone = Netlist(name or f"{self.name}__{net}_sa{value}")
        const = GateType.CONST1 if value else GateType.CONST0
        for gate in self.gates.values():
            if gate.name == net:
                clone.add_gate(gate.name, const, ())
            else:
                clone.add_gate(gate.name, gate.gate_type, gate.inputs)
        for out in self.outputs:
            clone.add_output(out)
        return clone

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Summary counts used in reports: inputs, outputs, DFFs, gates, depth."""
        levels = self.levelize()
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "flip_flops": len(self.flip_flops),
            "gates": self.num_gates,
            "depth": max(levels.values()) if levels else 0,
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"Netlist({self.name!r}, inputs={s['inputs']}, outputs={s['outputs']}, "
            f"flip_flops={s['flip_flops']}, gates={s['gates']})"
        )


def from_gates(
    name: str,
    inputs: Iterable[str],
    gates: Iterable[Tuple[str, GateType, Sequence[str]]],
    outputs: Iterable[str],
) -> Netlist:
    """Convenience constructor from plain tuples; validates the result."""
    netlist = Netlist(name)
    for net in inputs:
        netlist.add_input(net)
    for net, gate_type, fanin in gates:
        netlist.add_gate(net, gate_type, fanin)
    for net in outputs:
        netlist.add_output(net)
    netlist.validate()
    return netlist
