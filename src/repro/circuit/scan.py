"""Full-scan transformation.

The paper evaluates scan designs: a test vector drives both the primary
inputs and (through the scan chain) the flip-flop states, and the response
is observed at the primary outputs and the next flip-flop states.  For test
generation and dictionary construction this is equivalent to the
*combinational* circuit in which every flip-flop output is a pseudo primary
input and every flip-flop D input is a pseudo primary output.
:func:`full_scan` performs that conversion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .gates import GateType
from .netlist import Netlist


@dataclass(frozen=True)
class ScanInfo:
    """Book-keeping for a full-scan conversion.

    ``pseudo_inputs`` are the former flip-flop output nets (now INPUTs) and
    ``pseudo_outputs`` the former D-input nets (now also primary outputs),
    in matching scan-chain order.  ``original_outputs`` is the number of
    true primary outputs, which precede the pseudo outputs in the scanned
    netlist's output list.
    """

    pseudo_inputs: tuple
    pseudo_outputs: tuple
    original_outputs: int


def full_scan(netlist: Netlist) -> "tuple[Netlist, ScanInfo]":
    """Return a combinational full-scan equivalent of ``netlist``.

    Every ``DFF`` gate is replaced by an ``INPUT`` gate on its output net,
    and its D net is appended to the primary outputs (unless it already is
    one).  Combinational circuits pass through unchanged (but copied).
    """
    scanned = Netlist(netlist.name)
    pseudo_inputs: List[str] = []
    pseudo_outputs: List[str] = []
    for gate in netlist:
        if gate.gate_type is GateType.DFF:
            scanned.add_gate(gate.name, GateType.INPUT, ())
            pseudo_inputs.append(gate.name)
            pseudo_outputs.append(gate.inputs[0])
        else:
            scanned.add_gate(gate.name, gate.gate_type, gate.inputs)
    for net in netlist.outputs:
        scanned.add_output(net)
    for net in pseudo_outputs:
        if net not in scanned.outputs:
            scanned.add_output(net)
    scanned.validate()
    info = ScanInfo(
        pseudo_inputs=tuple(pseudo_inputs),
        pseudo_outputs=tuple(pseudo_outputs),
        original_outputs=len(netlist.outputs),
    )
    return scanned, info


def prepare_for_test(netlist: Netlist) -> Netlist:
    """Full-scan ``netlist`` if sequential, otherwise copy it.

    This is the canonical entry point used by ATPG, simulation and the
    dictionary builders: they all operate on the combinational scan view.
    """
    if netlist.is_combinational:
        return netlist.copy()
    scanned, _ = full_scan(netlist)
    return scanned
