"""Netlist transformations.

Structure-preserving clean-ups and rewrites used when importing circuits
from outside sources:

* :func:`sweep_constants` — propagate CONST0/CONST1 through the logic and
  simplify (ties from fault injection, configuration bits…).
* :func:`remove_dangling` — drop logic with no path to any output.
* :func:`decompose_to_two_input` — expand wide AND/NAND/OR/NOR/XOR/XNOR
  gates into balanced trees of two-input gates (some flows and fault
  models assume bounded fan-in).

All functions return new netlists; inputs are never mutated.  Every
transform preserves the circuit's input/output functional behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .gates import GateType
from .netlist import Netlist

_IDENTITY_UNDER_CONST: Dict[GateType, Tuple[int, int]] = {
    # gate type -> (controlling value, controlled output)
    GateType.AND: (0, 0),
    GateType.NAND: (0, 1),
    GateType.OR: (1, 1),
    GateType.NOR: (1, 0),
}


def sweep_constants(netlist: Netlist) -> Netlist:
    """Propagate constants and simplify; interface nets are preserved.

    A gate whose value is forced by constant inputs becomes CONST; a
    surviving AND/OR-family gate drops its non-controlling constant
    inputs; single-input leftovers turn into BUF/NOT.  Primary outputs and
    inputs keep their names so test vectors and observations stay aligned.
    """
    kinds: Dict[str, GateType] = {}
    rewritten: Dict[str, Tuple[GateType, Tuple[str, ...]]] = {}

    def const_of(net: str) -> Optional[int]:
        kind = kinds[net]
        if kind is GateType.CONST0:
            return 0
        if kind is GateType.CONST1:
            return 1
        return None

    for net in netlist.topological_order():
        gate = netlist.gates[net]
        kind = gate.gate_type
        if kind in (GateType.INPUT, GateType.DFF) or kind.is_constant:
            rewritten[net] = (kind, gate.inputs)
            kinds[net] = kind
            continue
        values = [const_of(i) for i in gate.inputs]
        new_kind, new_inputs = _simplify(kind, gate.inputs, values)
        rewritten[net] = (new_kind, new_inputs)
        kinds[net] = new_kind

    # Rebuild in the original insertion order so the interface (and every
    # order-dependent view like `inputs`) is unchanged.
    swept = Netlist(netlist.name)
    for gate in netlist:
        kind, inputs = rewritten[gate.name]
        swept.add_gate(gate.name, kind, inputs)
    for out in netlist.outputs:
        swept.add_output(out)
    swept.validate()
    return swept


def _simplify(
    kind: GateType, inputs: Tuple[str, ...], values: List[Optional[int]]
) -> Tuple[GateType, Tuple[str, ...]]:
    if kind in _IDENTITY_UNDER_CONST:
        controlling, controlled = _IDENTITY_UNDER_CONST[kind]
        if controlling in values:
            return (GateType.CONST1 if controlled else GateType.CONST0), ()
        survivors = tuple(i for i, v in zip(inputs, values) if v is None)
        if not survivors:
            # All inputs were the non-controlling constant.
            inverted = kind in (GateType.NAND, GateType.NOR)
            result = (1 - controlling) if not inverted else controlling
            return (GateType.CONST1 if result else GateType.CONST0), ()
        if len(survivors) == 1:
            inverted = kind in (GateType.NAND, GateType.NOR)
            return (GateType.NOT if inverted else GateType.BUF), survivors
        return kind, survivors
    if kind in (GateType.XOR, GateType.XNOR):
        parity = sum(v for v in values if v is not None) % 2
        if kind is GateType.XNOR:
            parity ^= 1
        survivors = tuple(i for i, v in zip(inputs, values) if v is None)
        if not survivors:
            return (GateType.CONST1 if parity else GateType.CONST0), ()
        if len(survivors) == 1:
            return (GateType.NOT if parity else GateType.BUF), survivors
        return (GateType.XNOR if parity else GateType.XOR), survivors
    if kind in (GateType.NOT, GateType.BUF):
        value = values[0]
        if value is None:
            return kind, inputs
        result = (1 - value) if kind is GateType.NOT else value
        return (GateType.CONST1 if result else GateType.CONST0), ()
    return kind, inputs


def remove_dangling(netlist: Netlist) -> Netlist:
    """Drop every gate with no path to a primary output or flip-flop D pin."""
    keep = set()
    for out in netlist.outputs:
        keep |= netlist.input_cone(out)
    # Flip-flops are roots too: their D cones feed future-cycle behaviour.
    changed = True
    while changed:
        changed = False
        for ff in netlist.flip_flops:
            if ff in keep:
                d_cone = netlist.input_cone(netlist.gates[ff].inputs[0])
                if not d_cone <= keep:
                    keep |= d_cone
                    changed = True
    pruned = Netlist(netlist.name)
    for gate in netlist:
        if gate.name in keep:
            pruned.add_gate(gate.name, gate.gate_type, gate.inputs)
        elif gate.gate_type is GateType.INPUT:
            pruned.add_gate(gate.name, GateType.INPUT, ())  # keep the interface
    for out in netlist.outputs:
        pruned.add_output(out)
    pruned.validate()
    return pruned


def decompose_to_two_input(netlist: Netlist) -> Netlist:
    """Expand gates with more than two inputs into two-input trees.

    AND/OR/XOR families build balanced trees of the monotone core with a
    single inverting root for NAND/NOR/XNOR, preserving functionality.
    New intermediate nets are named ``<gate>__dcN``.
    """
    result = Netlist(netlist.name)
    core_of = {
        GateType.AND: GateType.AND,
        GateType.NAND: GateType.AND,
        GateType.OR: GateType.OR,
        GateType.NOR: GateType.OR,
        GateType.XOR: GateType.XOR,
        GateType.XNOR: GateType.XOR,
    }
    inverted = {GateType.NAND, GateType.NOR, GateType.XNOR}
    for gate in netlist:
        if gate.gate_type not in core_of or len(gate.inputs) <= 2:
            result.add_gate(gate.name, gate.gate_type, gate.inputs)
            continue
        core = core_of[gate.gate_type]
        frontier = list(gate.inputs)
        counter = 0
        while len(frontier) > 2:
            merged = []
            for i in range(0, len(frontier) - 1, 2):
                net = f"{gate.name}__dc{counter}"
                counter += 1
                result.add_gate(net, core, (frontier[i], frontier[i + 1]))
                merged.append(net)
            if len(frontier) % 2:
                merged.append(frontier[-1])
            frontier = merged
        root = GateType(core.value) if gate.gate_type not in inverted else {
            GateType.AND: GateType.NAND,
            GateType.OR: GateType.NOR,
            GateType.XOR: GateType.XNOR,
        }[core]
        result.add_gate(gate.name, root, tuple(frontier))
    for out in netlist.outputs:
        result.add_output(out)
    result.validate()
    return result
