"""Structural Verilog netlist reader and writer.

Supports the gate-level subset that benchmark circuits use: one module,
``input``/``output``/``wire`` declarations, and primitive gate instances
(``and``, ``nand``, ``or``, ``nor``, ``xor``, ``xnor``, ``not``, ``buf``)
plus ``dff`` instances written as ``dff name (Q, D);``.  The first port of
a primitive is its output, the rest are inputs — standard Verilog
primitive ordering.  Verilog escaped identifiers (``\\name`` followed by
whitespace) are supported in both directions, so benchmark nets with
numeric names ("1", "22" …) round-trip.

This is an interchange format: ``loads(dumps(netlist))`` is an identity on
the structural content.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Union

from .gates import GateType
from .netlist import Netlist, NetlistError

_PRIMITIVES: Dict[str, GateType] = {
    "and": GateType.AND,
    "nand": GateType.NAND,
    "or": GateType.OR,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
    "dff": GateType.DFF,
}

_TYPE_NAMES = {gate_type: name for name, gate_type in _PRIMITIVES.items()}

_PLAIN_ID = re.compile(r"[A-Za-z_][\w$]*\Z")


class VerilogParseError(NetlistError):
    """Raised on unsupported or malformed structural Verilog."""


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", " ", text)


_MODULE_RE = re.compile(
    r"\bmodule\s+(?P<name>[A-Za-z_][\w$]*)\s*\((?P<ports>[^;]*)\)\s*;"
)
_DECL_RE = re.compile(r"\b(?P<kind>input|output|wire)\b(?P<nets>[^;]*);")
_INSTANCE_RE = re.compile(
    r"\b(?P<prim>and|nand|or|nor|xor|xnor|not|buf|dff)\b\s*"
    r"(?P<label>[A-Za-z_][\w$]*)?\s*\((?P<ports>[^;]*)\)\s*;"
)


def _parse_net(token: str) -> str:
    """Validate and normalise one net token (plain or escaped identifier)."""
    token = token.strip()
    if token.startswith("\\"):
        name = token[1:]
        if not name or any(ch.isspace() for ch in name):
            raise VerilogParseError(f"bad escaped identifier {token!r}")
        return name
    if not _PLAIN_ID.match(token):
        raise VerilogParseError(f"unsupported net name {token!r}")
    return token


def _split_nets(text: str) -> List[str]:
    return [_parse_net(t) for t in text.split(",") if t.strip()]


def loads(text: str, name: str = "") -> Netlist:
    """Parse structural Verilog into a validated :class:`Netlist`."""
    source = _strip_comments(text)
    module = _MODULE_RE.search(source)
    if not module:
        raise VerilogParseError("no module declaration found")
    netlist = Netlist(name or module.group("name"))
    end = source.find("endmodule", module.end())
    body = source[module.end(): end if end >= 0 else len(source)]

    inputs: List[str] = []
    outputs: List[str] = []
    for declaration in _DECL_RE.finditer(body):
        nets = _split_nets(declaration.group("nets"))
        if declaration.group("kind") == "input":
            inputs.extend(nets)
        elif declaration.group("kind") == "output":
            outputs.extend(nets)
        # wires need no action: drivers declare them.

    for net in inputs:
        netlist.add_input(net)
    for instance in _INSTANCE_RE.finditer(body):
        gate_type = _PRIMITIVES[instance.group("prim")]
        ports = _split_nets(instance.group("ports"))
        if len(ports) < 2:
            raise VerilogParseError(
                f"instance {instance.group(0).strip()!r} needs an output and inputs"
            )
        out, fanin = ports[0], ports[1:]
        try:
            netlist.add_gate(out, gate_type, fanin)
        except NetlistError as exc:
            raise VerilogParseError(str(exc)) from exc
    for net in outputs:
        netlist.add_output(net)
    netlist.validate()
    return netlist


def load(path: Union[str, Path], name: str = "") -> Netlist:
    path = Path(path)
    return loads(path.read_text(), name or path.stem)


def _net(name: str) -> str:
    """Render a net name, escaping it when it is not a plain identifier."""
    if _PLAIN_ID.match(name):
        return name
    if any(ch.isspace() for ch in name):
        raise NetlistError(f"net name {name!r} cannot be serialised to Verilog")
    return f"\\{name} "


def dumps(netlist: Netlist) -> str:
    """Serialise a netlist as structural Verilog."""
    inputs = [_net(n) for n in netlist.inputs]
    outputs = [_net(n) for n in netlist.outputs]
    ports = ", ".join(inputs + outputs)
    lines = [f"module {_identifier(netlist.name)} ({ports});"]
    if inputs:
        lines.append(f"  input {', '.join(inputs)};")
    if outputs:
        lines.append(f"  output {', '.join(outputs)};")
    output_set = set(netlist.outputs)
    wires = [
        _net(gate.name)
        for gate in netlist
        if gate.gate_type is not GateType.INPUT and gate.name not in output_set
    ]
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    counter = 0
    for gate in netlist:
        if gate.gate_type is GateType.INPUT:
            continue
        if gate.gate_type.is_constant:
            raise NetlistError(
                f"cannot serialise constant gate {gate.name!r} to Verilog"
            )
        primitive = _TYPE_NAMES[gate.gate_type]
        port_list = ", ".join(_net(n) for n in (gate.name,) + gate.inputs)
        lines.append(f"  {primitive} g{counter} ({port_list});")
        counter += 1
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def dump(netlist: Netlist, path: Union[str, Path]) -> None:
    Path(path).write_text(dumps(netlist))


def _identifier(name: str) -> str:
    cleaned = re.sub(r"[^\w$]", "_", name)
    if not re.match(r"[A-Za-z_]", cleaned):
        cleaned = "m_" + cleaned
    return cleaned
