"""Command-line interface.

Installed as the ``repro-fd`` console script::

    repro-fd list                         # available circuits
    repro-fd stats p344                   # circuit statistics
    repro-fd example                      # the paper's Tables 1-5
    repro-fd atpg p208 --ttype diag       # generate a test set, print summary
    repro-fd table6 p208 p298             # reproduce Table 6 rows
    repro-fd diagnose p208 --fault n3/sa1 # diagnose an injected fault
    repro-fd pack p208 --out p208.rfd     # build once, write the artifact
    repro-fd diagnose --artifact p208.rfd # serve from it, no circuit files
    repro-fd serve chips.jsonl --artifact p208.rfd  # batch diagnosis service
    repro-fd bench-report --check         # gate BENCH_*.json vs baselines

``docs/cli.md`` is the generated reference for every subcommand and flag
(regenerate with ``python tools/gen_cli_docs.py``; CI fails on drift).
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional

from .api import KINDS, DictionaryConfig, build as build_dictionary
from .circuit import available_circuits, load_circuit, prepare_for_test
from .diagnosis import Diagnoser, observe_fault
from .dictionaries import (
    DictionarySizes,
    FullDictionary,
    PassFailDictionary,
)
from .kernels import available_backends, backend_choices_help
from .faults import Fault, collapse
from .experiments import render_table6, run_table6
from .experiments.example_tables import render_all
from .experiments.reporting import (
    ReportPrinter,
    format_table,
    render_build_instrumentation,
)
from .experiments.table6 import prepared_experiment, response_table_for
from .obs import (
    MetricsRegistry,
    NullProgress,
    ProgressReporter,
    StderrProgress,
    Tracer,
    scoped_registry,
    scoped_tracer,
)


def _parse_fault(text: str) -> Fault:
    """Parse 'line/sa0' or 'line->sink/sa1' into a Fault."""
    location, _, polarity = text.rpartition("/sa")
    if polarity not in ("0", "1") or not location:
        raise argparse.ArgumentTypeError(
            f"bad fault {text!r}; expected e.g. n3/sa1 or n3->n7/sa0"
        )
    line, arrow, sink = location.partition("->")
    return Fault(line, int(polarity), input_of=sink if arrow else None)


@dataclass
class ObsSession:
    """The per-command observability bundle the instrumented commands use."""

    registry: MetricsRegistry
    tracer: Optional[Tracer]
    progress: ProgressReporter
    out: ReportPrinter


@contextmanager
def _observability(args: argparse.Namespace) -> Iterator[ObsSession]:
    """Install a fresh registry/tracer for one command; export on the way out.

    ``--metrics-out -`` claims stdout for the JSON snapshot, which moves
    all human-readable report text to stderr (see
    :class:`~repro.experiments.reporting.ReportPrinter`).
    """
    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace", None)
    out = ReportPrinter(machine_stdout=metrics_out == "-")
    progress: ProgressReporter = (
        StderrProgress() if getattr(args, "progress", False) else NullProgress()
    )
    with scoped_registry() as registry:
        tracer: Optional[Tracer] = None
        if trace_out:
            with scoped_tracer() as tracer:
                yield ObsSession(registry, tracer, progress, out)
            tracer.export_jsonl(trace_out)
        else:
            yield ObsSession(registry, None, progress, out)
    if metrics_out == "-":
        print(registry.to_json())
    elif metrics_out:
        with open(metrics_out, "w") as handle:
            handle.write(registry.to_json() + "\n")


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for Procedure 1 restarts (1 = serial; "
        "results are identical for any value, see docs/parallelism.md)",
    )


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    # Choices and help both come from the kernel registry, so a newly
    # registered backend can never drift out of the help string.
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help=backend_choices_help(),
    )


def _add_cache_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="on-disk build cache: reuse the stored artifact whose content "
        "hash matches the build inputs instead of rebuilding "
        "(see docs/artifacts.md)",
    )


def _add_checkpoint_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="persist an RFDC build checkpoint here after every folded "
        "Procedure 1 restart, so a killed build can resume to the "
        "identical artifact (see docs/scaling.md)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the matching checkpoint in --checkpoint-dir "
        "instead of restarting Procedure 1 from scratch",
    )


def _add_fleet_diagnosis_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-faults", type=int, default=1, metavar="M",
        help="server default for requests without max_faults=: search "
        "candidate multiplets of up to M simultaneous faults (default 1)",
    )
    parser.add_argument(
        "--flip-budget", type=int, default=0, metavar="K",
        help="server default for requests without flip_budget=: admit "
        "candidates within K mismatching tests (default 0 = exact)",
    )
    parser.add_argument(
        "--strategy", choices=("greedy", "entropy"), default="greedy",
        help="session test-suggestion strategy for requests without "
        "strategy= (default greedy)",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write a metrics JSON snapshot to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a span trace to FILE as JSONL",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="report progress on stderr while running",
    )


def cmd_list(args: argparse.Namespace) -> int:
    for name in available_circuits():
        print(name)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    netlist = load_circuit(args.circuit)
    scan = prepare_for_test(netlist)
    faults = collapse(scan)
    stats = netlist.stats()
    rows = [(key, value) for key, value in stats.items()]
    rows.append(("collapsed faults (scan view)", len(faults)))
    print(format_table(("property", "value"), rows, args.circuit))
    return 0


def cmd_example(args: argparse.Namespace) -> int:
    print(render_all())
    return 0


def cmd_atpg(args: argparse.Namespace) -> int:
    with _observability(args) as session:
        session.progress.report("atpg", 0, 2, circuit=args.circuit, ttype=args.ttype)
        netlist, tests = prepared_experiment(args.circuit, args.ttype, args.seed)
        session.progress.report("atpg", 1, 2, tests=len(tests))
        faults = collapse(netlist)
        from .sim import FaultSimulator

        simulator = FaultSimulator(netlist, tests)
        detected = sum(1 for f in faults if simulator.detection_word(f))
        session.progress.report("atpg", 2, 2, detected=detected)
        session.out.emit(
            f"{args.circuit} {args.ttype}: {len(tests)} tests, "
            f"{detected}/{len(faults)} collapsed faults detected"
        )
        if args.output:
            with open(args.output, "w") as handle:
                for j in range(len(tests)):
                    handle.write(tests.as_string(j) + "\n")
            session.out.emit(f"wrote {len(tests)} vectors to {args.output}")
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .circuit import bench, verilog

    source = Path(args.source)
    target = Path(args.target)
    readers = {".bench": bench.load, ".v": verilog.load}
    writers = {".bench": bench.dump, ".v": verilog.dump}
    try:
        reader = readers[source.suffix]
        writer = writers[target.suffix]
    except KeyError as exc:
        print(f"unsupported extension {exc}", file=sys.stderr)
        return 1
    netlist = reader(source)
    writer(netlist, target)
    print(f"wrote {netlist!r} to {target}")
    return 0


def cmd_table6(args: argparse.Namespace) -> int:
    circuits = list(args.circuits) + list(args.circuit or ())
    if not circuits:
        print("table6: no circuits given", file=sys.stderr)
        return 1
    with _observability(args) as session:
        rows = run_table6(
            circuits, seed=args.seed, calls=args.calls, progress=session.progress,
            jobs=args.jobs, backend=args.backend, cache_dir=args.cache_dir,
            checkpoint_dir=args.checkpoint_dir, resume=args.resume,
        )
        session.out.emit(render_table6(rows))
        session.out.emit("")
        session.out.emit(render_build_instrumentation(rows))
    return 0


def cmd_pack(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .store import save_artifact

    with _observability(args) as session:
        _, table = response_table_for(args.circuit, args.ttype, args.seed)
        built = build_dictionary(
            table,
            kind=args.kind,
            config=DictionaryConfig(
                seed=args.seed, calls1=args.calls, jobs=args.jobs,
                backend=args.backend,
            ),
            progress=session.progress,
            cache_dir=args.cache_dir,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
        )
        content_hash = save_artifact(built, args.out)
        size = Path(args.out).stat().st_size
        session.out.emit(
            f"packed {args.circuit}/{args.ttype} -> {args.out}: "
            f"kind={built.kind}, {table.n_faults} faults x "
            f"{table.n_tests} tests, {size} bytes, hash {content_hash[:12]}"
        )
    return 0


def cmd_diagnose(args: argparse.Namespace) -> int:
    if (args.circuit is None) == (args.artifact is None):
        print(
            "diagnose: give exactly one of a circuit name or --artifact FILE",
            file=sys.stderr,
        )
        return 1
    with _observability(args) as session:
        netlist = None
        if args.artifact is not None:
            from .store import ArtifactError, load_artifact

            try:
                built = load_artifact(args.artifact)
            except ArtifactError as exc:
                print(f"diagnose: {exc}", file=sys.stderr)
                return 1
            table = built.table
            session.out.emit(
                f"serving from artifact {args.artifact} "
                f"({built.kind}, {table.n_faults} faults x {table.n_tests} tests)"
            )
        else:
            netlist, table = response_table_for(args.circuit, args.ttype, args.seed)
            built = build_dictionary(
                table,
                config=DictionaryConfig(
                    seed=args.seed, calls1=args.calls, jobs=args.jobs,
                    backend=args.backend,
                ),
                progress=session.progress,
                cache_dir=args.cache_dir,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
            )
        if table.n_faults == 0:
            print(
                "diagnose: the dictionary covers no faults (empty fault list "
                "or no detections); re-run the 'pack' workflow on a circuit "
                "and test set that detect faults (repro-fd pack CIRCUIT --out "
                "FILE.rfd), then serve it with 'diagnose --artifact FILE.rfd'",
                file=sys.stderr,
            )
            return 1
        if args.max_faults < 1:
            print("diagnose: --max-faults must be >= 1", file=sys.stderr)
            return 1
        if args.flip_budget < 0:
            print("diagnose: --flip-budget must be >= 0", file=sys.stderr)
            return 1
        if built.kind == "same-different":
            dictionaries = [
                FullDictionary(table), PassFailDictionary(table), built.dictionary,
            ]
        else:
            dictionaries = [built.dictionary]
        if args.fault is not None:
            victim = args.fault
            if victim not in table.faults:
                print(
                    f"fault {victim} is not in the dictionary fault list",
                    file=sys.stderr,
                )
                return 1
        else:
            victim = table.faults[args.seed % table.n_faults]
        if netlist is not None:
            observed = observe_fault(netlist, table.tests, victim)
        else:
            # Artifact mode: the stored full row of a modelled victim *is*
            # its observed response — no circuit files needed.
            observed = list(table.full_row(table.faults.index(victim)))
        session.out.emit(f"injected: {victim}\n")
        for dictionary in dictionaries:
            diagnosis = Diagnoser(dictionary).diagnose(observed, limit=5)
            exact = ", ".join(str(f) for f in diagnosis.exact[:8]) or "(none)"
            session.out.emit(
                f"[{dictionary.kind:^14}] {len(diagnosis.exact)} exact: {exact}"
            )
        if args.max_faults > 1 or args.flip_budget > 0:
            from .diagnosis import match_multiplets

            matches = match_multiplets(
                table,
                observed,
                max_faults=args.max_faults,
                flip_budget=args.flip_budget,
                limit=8,
            )
            rendered = ", ".join(
                f"{m.render(table.faults)} (flips={m.flips})" for m in matches
            ) or "(none)"
            session.out.emit(
                f"\nmultiplets (max_faults={args.max_faults}, "
                f"flip_budget={args.flip_budget}): {rendered}"
            )
        sizes = DictionarySizes.of(table)
        session.out.emit(
            f"\nsizes: full={sizes.full} p/f={sizes.pass_fail} "
            f"s/d={sizes.same_different} bits"
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .serve import DiagnosisServer, ServeConfig

    with _observability(args) as session:
        try:
            config = ServeConfig(
                pool_size=args.pool_size,
                workers=args.workers,
                deadline_ms=args.deadline_ms,
                max_retries=args.max_retries,
                limit=args.limit,
                max_faults=args.max_faults,
                flip_budget=args.flip_budget,
                strategy=args.strategy,
            )
        except ValueError as exc:
            print(f"serve: {exc}", file=sys.stderr)
            return 1
        server = DiagnosisServer(config, default_artifact=args.artifact)
        if args.requests == "-":
            lines = sys.stdin.readlines()
        else:
            try:
                with open(args.requests) as handle:
                    lines = handle.readlines()
            except OSError as exc:
                print(f"serve: cannot read requests: {exc}", file=sys.stderr)
                return 1
        outcomes = server.serve_jsonl(lines)
        if not outcomes:
            print("serve: the request file holds no requests", file=sys.stderr)
            return 1
        rendered = "\n".join(outcome.to_json_line() for outcome in outcomes)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(rendered + "\n")
        else:
            # Outcomes are the machine output of this command: stdout,
            # with the human summary on stderr (like --metrics-out -).
            print(rendered)
        by_code: dict = {}
        for outcome in outcomes:
            by_code[outcome.code] = by_code.get(outcome.code, 0) + 1
        summary = ", ".join(
            f"{code}={count}" for code, count in sorted(by_code.items())
        )
        print(
            f"served {len(outcomes)} requests: {summary}",
            file=sys.stderr,
        )
    return 0


def cmd_daemon(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .serve import ServeConfig
    from .serve.daemon import DaemonConfig, DiagnosisDaemon

    try:
        quotas = []
        for spec in args.tenant_quota or ():
            name, sep, value = spec.partition("=")
            if not sep or not name:
                raise ValueError(
                    f"--tenant-quota takes NAME=N, got {spec!r}"
                )
            quotas.append((name, int(value)))
        config = DaemonConfig(
            host=args.host,
            port=args.port,
            serve=ServeConfig(
                pool_size=args.pool_size,
                workers=args.workers,
                deadline_ms=args.deadline_ms,
                max_retries=args.max_retries,
                limit=args.limit,
                max_faults=args.max_faults,
                flip_budget=args.flip_budget,
                strategy=args.strategy,
            ),
            default_artifact=args.artifact,
            max_inflight=args.max_inflight,
            max_batch=args.max_batch,
            max_body_bytes=args.max_body_bytes,
            drain_grace_s=args.drain_grace_s,
            spool_dir=args.spool_dir,
            tenant_quotas=tuple(quotas),
            default_tenant_quota=args.default_tenant_quota,
        )
    except ValueError as exc:
        print(f"daemon: {exc}", file=sys.stderr)
        return 1

    with _observability(args):
        daemon = DiagnosisDaemon(config)

        async def run() -> None:
            host, port = await daemon.start()
            print(
                f"daemon: listening on http://{host}:{port} "
                f"(workers={config.serve.workers}, "
                f"max_inflight={config.max_inflight})",
                file=sys.stderr,
                flush=True,
            )
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(
                        signum, lambda: asyncio.ensure_future(daemon.stop())
                    )
                except NotImplementedError:
                    pass  # platform without loop signal handlers
            await daemon.run_until_stopped()
            print("daemon: drained and stopped", file=sys.stderr)

        try:
            asyncio.run(run())
        except KeyboardInterrupt:
            pass
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    import json as _json

    from .experiments.fleet import FleetConfig, render_report, run_campaign

    with _observability(args) as session:
        units = args.units
        n_faults, n_tests, n_outputs = args.faults, args.tests, args.outputs
        if args.quick:
            # The CI docs job runs this: a seconds-scale campaign with
            # the same grid and gates as the full one.
            units = min(units, 30)
            n_faults = min(n_faults, 60)
            n_tests = min(n_tests, 32)
        try:
            config = FleetConfig(
                n_faults=n_faults,
                n_tests=n_tests,
                n_outputs=n_outputs,
                density=args.density,
                units=units,
                double_fraction=args.double_fraction,
                noise=args.noise,
                flip_budget=args.flip_budget,
                resolve_at=args.resolve_at,
                max_tests=args.max_tests,
                seed=args.seed,
            )
            report = run_campaign(
                config,
                kinds=tuple(args.kind) if args.kind else ("pass-fail", "same-different", "full"),
                strategies=tuple(args.strategy) if args.strategy else ("greedy", "entropy"),
            )
        except ValueError as exc:
            print(f"fleet: {exc}", file=sys.stderr)
            return 1
        session.out.emit(render_report(report))
        if args.json:
            with open(args.json, "w") as handle:
                _json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            session.out.emit(f"\nwrote {args.json}")
    return 0


def cmd_bench_report(args: argparse.Namespace) -> int:
    from .obs.benchreport import run_report

    return run_report(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fd",
        description="Same/different fault dictionary (DATE 2008) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available circuits").set_defaults(func=cmd_list)

    stats = sub.add_parser("stats", help="circuit statistics")
    stats.add_argument("circuit")
    stats.set_defaults(func=cmd_stats)

    example = sub.add_parser("example", help="print the paper's Tables 1-5")
    example.set_defaults(func=cmd_example)

    atpg = sub.add_parser("atpg", help="generate a test set")
    atpg.add_argument("circuit")
    atpg.add_argument("--ttype", choices=("diag", "10det"), default="diag")
    atpg.add_argument("--seed", type=int, default=0)
    atpg.add_argument("--output", help="write vectors to this file")
    _add_obs_flags(atpg)
    atpg.set_defaults(func=cmd_atpg)

    convert = sub.add_parser(
        "convert", help="convert between .bench and structural .v"
    )
    convert.add_argument("source")
    convert.add_argument("target")
    convert.set_defaults(func=cmd_convert)

    table6 = sub.add_parser("table6", help="reproduce Table 6 rows")
    table6.add_argument("circuits", nargs="*")
    table6.add_argument(
        "--circuit",
        action="append",
        metavar="NAME",
        help="add one circuit (may repeat; alternative to positionals)",
    )
    table6.add_argument("--seed", type=int, default=0)
    table6.add_argument("--calls", type=int, default=100, help="CALLS1")
    _add_jobs_flag(table6)
    _add_backend_flag(table6)
    _add_cache_flag(table6)
    _add_checkpoint_flags(table6)
    _add_obs_flags(table6)
    table6.set_defaults(func=cmd_table6)

    pack = sub.add_parser(
        "pack", help="build a dictionary and write it as an artifact"
    )
    pack.add_argument("circuit")
    pack.add_argument("--ttype", choices=("diag", "10det"), default="diag")
    pack.add_argument("--kind", choices=KINDS, default="same-different")
    pack.add_argument("--seed", type=int, default=0)
    pack.add_argument("--calls", type=int, default=100, help="CALLS1")
    pack.add_argument(
        "--out", required=True, metavar="FILE", help="artifact file to write"
    )
    _add_jobs_flag(pack)
    _add_backend_flag(pack)
    _add_cache_flag(pack)
    _add_checkpoint_flags(pack)
    _add_obs_flags(pack)
    pack.set_defaults(func=cmd_pack)

    diagnose = sub.add_parser(
        "diagnose",
        help="diagnose an injected fault (build live, or serve an artifact "
        "packed with 'pack')",
    )
    diagnose.add_argument(
        "circuit", nargs="?", default=None,
        help="circuit to build the dictionary from (or use --artifact)",
    )
    diagnose.add_argument(
        "--artifact",
        metavar="FILE",
        default=None,
        help="serve from this on-disk artifact instead of building "
        "(no circuit files needed; produce one with the 'pack' workflow: "
        "repro-fd pack CIRCUIT --out FILE.rfd)",
    )
    diagnose.add_argument("--ttype", choices=("diag", "10det"), default="diag")
    diagnose.add_argument("--fault", type=_parse_fault, default=None)
    diagnose.add_argument("--seed", type=int, default=0)
    diagnose.add_argument("--calls", type=int, default=20)
    diagnose.add_argument(
        "--max-faults", type=int, default=1, metavar="M",
        help="also search candidate multiplets of up to M simultaneous "
        "faults via masking-aware envelopes (default 1 = classic "
        "single-fault matching; see docs/diagnosis.md)",
    )
    diagnose.add_argument(
        "--flip-budget", type=int, default=0, metavar="K",
        help="admit candidates whose signature disagrees with the observed "
        "response on up to K tests (default 0 = exact matching)",
    )
    _add_jobs_flag(diagnose)
    _add_backend_flag(diagnose)
    _add_cache_flag(diagnose)
    _add_checkpoint_flags(diagnose)
    _add_obs_flags(diagnose)
    diagnose.set_defaults(func=cmd_diagnose)

    serve = sub.add_parser(
        "serve",
        help="serve a JSONL batch of diagnosis requests from packed artifacts",
    )
    serve.add_argument(
        "requests",
        help="JSONL file of requests, one JSON object per line ('-' = stdin); "
        "each request gives observed=, fault= or observations= — see "
        "docs/serving.md",
    )
    serve.add_argument(
        "--artifact",
        metavar="FILE",
        default=None,
        help="default artifact for requests that do not name their own "
        "(produce one with 'pack')",
    )
    serve.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write outcome JSONL here instead of stdout",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-request deadline in milliseconds (default: none); an "
        "expired request degrades to a deadline_expired outcome",
    )
    serve.add_argument(
        "--pool-size",
        type=int,
        default=8,
        metavar="N",
        help="max loaded artifacts resident in the LRU pool (default 8)",
    )
    serve.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retries (with exponential backoff) on transient artifact "
        "errors before an artifact_error outcome (default 2)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="worker threads for batch fan-out (outcomes are identical "
        "for any value; default 4)",
    )
    serve.add_argument(
        "--limit",
        type=int,
        default=10,
        metavar="N",
        help="ranked candidates per outcome for requests without limit= "
        "(default 10)",
    )
    _add_fleet_diagnosis_flags(serve)
    _add_obs_flags(serve)
    serve.set_defaults(func=cmd_serve)

    daemon = sub.add_parser(
        "daemon",
        help="run the asyncio diagnosis daemon: typed HTTP endpoints over "
        "packed artifacts with admission control (see docs/daemon.md)",
    )
    daemon.add_argument(
        "--artifact",
        metavar="FILE",
        default=None,
        help="default artifact for requests that do not name their own "
        "(produce one with 'pack')",
    )
    daemon.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    daemon.add_argument(
        "--port", type=int, default=8132, metavar="N",
        help="TCP port to bind (default 8132; 0 = kernel-assigned)",
    )
    daemon.add_argument(
        "--pool-size", type=int, default=8, metavar="N",
        help="max loaded artifacts resident in the LRU pool (default 8)",
    )
    daemon.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="diagnosis worker threads behind the event loop (default 4)",
    )
    daemon.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request deadline in milliseconds (default: none); an "
        "expired request degrades to a deadline_expired result",
    )
    daemon.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retries on transient artifact errors (default 2)",
    )
    daemon.add_argument(
        "--limit", type=int, default=10, metavar="N",
        help="ranked candidates per result for requests without limit= "
        "(default 10)",
    )
    daemon.add_argument(
        "--max-inflight", type=int, default=16, metavar="N",
        help="work units admitted concurrently before 429 overloaded "
        "rejections (default 16)",
    )
    daemon.add_argument(
        "--max-batch", type=int, default=256, metavar="N",
        help="max requests in one batch call (default 256)",
    )
    daemon.add_argument(
        "--max-body-bytes", type=int, default=32 * 1024 * 1024, metavar="N",
        help="max request body size; larger bodies are rejected with 413 "
        "before buffering (default 32MiB)",
    )
    daemon.add_argument(
        "--drain-grace-s", type=float, default=5.0, metavar="S",
        help="seconds to wait for in-flight work on shutdown (default 5)",
    )
    daemon.add_argument(
        "--spool-dir", metavar="DIR", default=None,
        help="directory for octet-stream artifact uploads (default: the "
        "system temp directory)",
    )
    daemon.add_argument(
        "--tenant-quota", action="append", metavar="NAME=N",
        help="cap tenant NAME at N concurrent admission slots (may repeat)",
    )
    daemon.add_argument(
        "--default-tenant-quota", type=int, default=None, metavar="N",
        help="admission-slot cap for tenants without an explicit "
        "--tenant-quota (default: only the global --max-inflight applies)",
    )
    _add_fleet_diagnosis_flags(daemon)
    _add_obs_flags(daemon)
    daemon.set_defaults(func=cmd_daemon)

    fleet = sub.add_parser(
        "fleet",
        help="run a synthetic fleet diagnosis campaign: resolution-vs-tests "
        "curves per dictionary organisation and session strategy "
        "(see docs/diagnosis.md)",
    )
    fleet.add_argument(
        "--units", type=int, default=200, metavar="N",
        help="defective units to synthesize and diagnose (default 200)",
    )
    fleet.add_argument(
        "--faults", type=int, default=120, metavar="N",
        help="modeled faults in the synthetic circuit (default 120)",
    )
    fleet.add_argument(
        "--tests", type=int, default=48, metavar="N",
        help="tests in the synthetic test set (default 48)",
    )
    fleet.add_argument(
        "--outputs", type=int, default=6, metavar="N",
        help="observed outputs per test (default 6)",
    )
    fleet.add_argument(
        "--density", type=float, default=0.85, metavar="P",
        help="probability a fault fails a given test (default 0.85; high "
        "density is the regime where the pass/fail detect bit carries "
        "little information)",
    )
    fleet.add_argument(
        "--double-fraction", type=float, default=0.0, metavar="P",
        help="fraction of units carrying two simultaneous faults "
        "(default 0.0)",
    )
    fleet.add_argument(
        "--noise", type=float, default=0.0, metavar="P",
        help="per-test probability of flipping a unit's observed outcome "
        "(default 0.0)",
    )
    fleet.add_argument(
        "--flip-budget", type=int, default=0, metavar="K",
        help="session flip budget: candidates survive up to K mismatching "
        "tests (default 0)",
    )
    fleet.add_argument(
        "--resolve-at", type=int, default=1, metavar="N",
        help="a unit counts as resolved once its candidate set is at most "
        "N faults (default 1)",
    )
    fleet.add_argument(
        "--max-tests", type=int, default=None, metavar="N",
        help="per-unit test budget (default: apply every test)",
    )
    fleet.add_argument(
        "--kind", action="append",
        choices=("pass-fail", "same-different", "full"),
        help="dictionary organisation to evaluate (repeatable; default: "
        "all three)",
    )
    fleet.add_argument(
        "--strategy", action="append", choices=("greedy", "entropy"),
        help="session test-selection strategy to evaluate (repeatable; "
        "default: both)",
    )
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the full campaign report as JSON to FILE",
    )
    fleet.add_argument(
        "--quick", action="store_true",
        help="shrink the campaign to a seconds-scale smoke run (CI)",
    )
    _add_obs_flags(fleet)
    fleet.set_defaults(func=cmd_fleet)

    from .obs.benchreport import add_report_arguments

    bench_report = sub.add_parser(
        "bench-report",
        help="diff BENCH_*.json benchmark results against the committed "
        "baselines and flag regressions (see docs/benchmarking.md)",
    )
    add_report_arguments(bench_report)
    bench_report.set_defaults(func=cmd_bench_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
