"""Cause-effect diagnosis engine and evaluation campaigns."""

from .engine import Diagnoser, Diagnosis, observe_defect, observe_fault
from .evaluate import (
    CampaignResult,
    double_fault_campaign,
    single_fault_campaign,
)
from .matching import (
    MatchScore,
    Policy,
    rank_candidates,
    score_fault,
    slat_candidates,
)
from .multiplet import (
    Envelope,
    MultipletMatch,
    compose_observation,
    envelope,
    envelope_violations,
    match_multiplets,
    multiplet_matches,
)
from .noisy import (
    NoisyScore,
    admitted_candidates,
    rank_noisy,
    rank_noisy_prefix,
    response_distance,
)
from .truncated import (
    TruncatedLog,
    TruncatedScore,
    exact_prefix_candidates,
    rank_truncated,
    score_truncated,
    truncate_log,
)
from .twostage import (
    TwoStageDiagnoser,
    TwoStageDiagnosis,
    screening_cost_comparison,
)

__all__ = [
    "CampaignResult",
    "Diagnoser",
    "Diagnosis",
    "Envelope",
    "MatchScore",
    "MultipletMatch",
    "NoisyScore",
    "Policy",
    "TruncatedLog",
    "TruncatedScore",
    "TwoStageDiagnoser",
    "exact_prefix_candidates",
    "rank_truncated",
    "score_truncated",
    "truncate_log",
    "TwoStageDiagnosis",
    "admitted_candidates",
    "compose_observation",
    "double_fault_campaign",
    "envelope",
    "envelope_violations",
    "match_multiplets",
    "multiplet_matches",
    "observe_defect",
    "observe_fault",
    "rank_candidates",
    "rank_noisy",
    "rank_noisy_prefix",
    "response_distance",
    "score_fault",
    "screening_cost_comparison",
    "single_fault_campaign",
    "slat_candidates",
]
