"""Cause-effect diagnosis engine and evaluation campaigns."""

from .engine import Diagnoser, Diagnosis, observe_defect, observe_fault
from .evaluate import (
    CampaignResult,
    double_fault_campaign,
    single_fault_campaign,
)
from .matching import (
    MatchScore,
    Policy,
    rank_candidates,
    score_fault,
    slat_candidates,
)
from .truncated import (
    TruncatedLog,
    TruncatedScore,
    exact_prefix_candidates,
    rank_truncated,
    score_truncated,
    truncate_log,
)
from .twostage import (
    TwoStageDiagnoser,
    TwoStageDiagnosis,
    screening_cost_comparison,
)

__all__ = [
    "CampaignResult",
    "Diagnoser",
    "Diagnosis",
    "MatchScore",
    "Policy",
    "TruncatedLog",
    "TruncatedScore",
    "TwoStageDiagnoser",
    "exact_prefix_candidates",
    "rank_truncated",
    "score_truncated",
    "truncate_log",
    "TwoStageDiagnosis",
    "double_fault_campaign",
    "observe_defect",
    "observe_fault",
    "rank_candidates",
    "score_fault",
    "screening_cost_comparison",
    "single_fault_campaign",
    "slat_candidates",
]
