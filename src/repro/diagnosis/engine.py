"""Cause-effect diagnosis using a precomputed fault dictionary.

Given the observed response of a failing chip (as per-test failing-output
signatures relative to the fault-free response), a :class:`Diagnoser`
encodes it in its dictionary's row space and returns the candidate faults:
exact row matches when they exist, otherwise the best matches by per-test
agreement — the standard cause-effect flow the paper's dictionaries feed.

The diagnoser is a pure *serve-side* object: it holds dictionary rows and
the fault catalogue, never a simulator, so it can be stood up straight
from an on-disk artifact (:meth:`Diagnoser.from_artifact`) on a machine
with no circuit files at all.  The simulator only appears in the
:func:`observe_fault` / :func:`observe_defect` helpers, which model the
*tester* producing an observed response — the other side of the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..circuit.netlist import Netlist
from ..faults.model import Fault
from ..obs import get_default_registry, trace_span
from ..sim.bits import iter_bits
from ..sim.faultsim import FaultSimulator
from ..sim.logicsim import output_words
from ..sim.patterns import TestSet
from ..sim.responses import Signature
from ..dictionaries.base import FaultDictionary
from . import metrics as M


@dataclass
class Diagnosis:
    """Result of one dictionary lookup."""

    #: Faults whose stored rows match the observed response exactly.
    exact: List[Fault]
    #: Best-matching faults with their per-test agreement scores.
    ranked: List[Tuple[Fault, int]]

    @property
    def is_unique(self) -> bool:
        return len(self.exact) == 1

    @property
    def candidate_count(self) -> int:
        return len(self.exact)


class Diagnoser:
    """Serves dictionary lookups: rows + fault catalogue, no simulator.

    ``Diagnoser(dictionary)`` adapts any in-memory
    :class:`~repro.dictionaries.base.FaultDictionary`; the artifact-backed
    constructors below are the production path, where build and serve are
    different processes (often different machines).
    """

    def __init__(self, dictionary: FaultDictionary, *, source: str = "memory") -> None:
        self.dictionary = dictionary
        #: The fault catalogue lookups answer from (row index == position).
        self.faults = tuple(dictionary.table.faults)
        #: Where this diagnoser's rows came from: "memory", "build" or "artifact".
        self.source = source

    @classmethod
    def from_built(cls, built) -> "Diagnoser":
        """Adapt a :class:`~repro.api.BuiltDictionary` (the build facade's result)."""
        return cls(built.dictionary, source="build")

    @classmethod
    def from_artifact(cls, path) -> "Diagnoser":
        """Serve from an on-disk artifact; needs no netlist or simulator.

        Loads the artifact (strictly validated — see
        :mod:`repro.store.artifact`), reconstructs the dictionary rows and
        interned responses, and answers lookups byte-identically to a
        diagnoser over the live-built dictionary.
        """
        from ..store import load_artifact

        built = load_artifact(path)
        get_default_registry().counter(M.ARTIFACT_DIAGNOSERS).inc()
        return cls(built.dictionary, source="artifact")

    def diagnose(self, observed: Sequence[Signature], limit: int = 10) -> Diagnosis:
        """Candidates for an observed response (one signature per test)."""
        faults = self.faults
        with trace_span("diagnosis.lookup", kind=self.dictionary.kind):
            exact = [
                faults[index]
                for index in self.dictionary.exact_candidates(observed)
            ]
            ranked = [
                (faults[candidate.fault_index], candidate.score)
                for candidate in self.dictionary.ranked_candidates(observed, limit)
            ]
        registry = get_default_registry()
        registry.counter(M.LOOKUPS).inc()
        # The exact match is one hash lookup against the dictionary's row
        # index; only the ranking still scores every stored row.
        registry.counter(M.CANDIDATES_SCORED).inc(len(faults))
        registry.counter(M.EXACT_MATCHES).inc(len(exact))
        return Diagnosis(exact, ranked)


def observe_fault(netlist: Netlist, tests: TestSet, fault: Fault) -> List[Signature]:
    """The observed response of a chip carrying one modelled fault."""
    simulator = FaultSimulator(netlist, tests)
    return _diffs_to_signatures(
        netlist, simulator.output_diffs(fault), len(tests)
    )


def observe_defect(
    good_netlist: Netlist, defective_netlist: Netlist, tests: TestSet
) -> List[Signature]:
    """The observed response of an arbitrary defective circuit.

    ``defective_netlist`` may differ from ``good_netlist`` in any way
    (multiple stuck lines, rewired gates…) as long as the interface is
    identical — this is how non-modelled defects are fed to diagnosis.
    """
    if list(defective_netlist.inputs) != list(good_netlist.inputs) or list(
        defective_netlist.outputs
    ) != list(good_netlist.outputs):
        raise ValueError("defective circuit must keep the interface unchanged")
    good = output_words(good_netlist, tests)
    bad = output_words(defective_netlist, tests)
    diffs = {
        net: good[net] ^ bad[net] for net in good if good[net] != bad[net]
    }
    return _diffs_to_signatures(good_netlist, diffs, len(tests))


def _diffs_to_signatures(
    netlist: Netlist, diffs: Dict[str, int], n_tests: int
) -> List[Signature]:
    per_test: Dict[int, List[int]] = {}
    for o, net in enumerate(netlist.outputs):
        word = diffs.get(net, 0)
        for j in iter_bits(word):
            per_test.setdefault(j, []).append(o)
    return [tuple(per_test.get(j, ())) for j in range(n_tests)]
