"""Cause-effect diagnosis using a precomputed fault dictionary.

Given the observed response of a failing chip (as per-test failing-output
signatures relative to the fault-free response), a :class:`Diagnoser`
encodes it in its dictionary's row space and returns the candidate faults:
exact row matches when they exist, otherwise the best matches by per-test
agreement — the standard cause-effect flow the paper's dictionaries feed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..circuit.netlist import Netlist
from ..faults.model import Fault
from ..obs import get_default_registry, trace_span
from ..sim.faultsim import FaultSimulator, iter_bits
from ..sim.logicsim import output_words
from ..sim.patterns import TestSet
from ..sim.responses import Signature
from ..dictionaries.base import FaultDictionary


@dataclass
class Diagnosis:
    """Result of one dictionary lookup."""

    #: Faults whose stored rows match the observed response exactly.
    exact: List[Fault]
    #: Best-matching faults with their per-test agreement scores.
    ranked: List[Tuple[Fault, int]]

    @property
    def is_unique(self) -> bool:
        return len(self.exact) == 1

    @property
    def candidate_count(self) -> int:
        return len(self.exact)


class Diagnoser:
    """Wraps one dictionary as a diagnosis engine."""

    def __init__(self, dictionary: FaultDictionary) -> None:
        self.dictionary = dictionary

    def diagnose(self, observed: Sequence[Signature], limit: int = 10) -> Diagnosis:
        """Candidates for an observed response (one signature per test)."""
        faults = self.dictionary.table.faults
        with trace_span("diagnosis.lookup", kind=self.dictionary.kind):
            exact = [
                faults[index]
                for index in self.dictionary.exact_candidates(observed)
            ]
            ranked = [
                (faults[candidate.fault_index], candidate.score)
                for candidate in self.dictionary.ranked_candidates(observed, limit)
            ]
        registry = get_default_registry()
        registry.counter("diagnosis.lookups").inc()
        # The exact match is one hash lookup against the dictionary's row
        # index; only the ranking still scores every stored row.
        registry.counter("diagnosis.candidates_scored").inc(len(faults))
        registry.counter("diagnosis.exact_matches").inc(len(exact))
        return Diagnosis(exact, ranked)


def observe_fault(netlist: Netlist, tests: TestSet, fault: Fault) -> List[Signature]:
    """The observed response of a chip carrying one modelled fault."""
    simulator = FaultSimulator(netlist, tests)
    return _diffs_to_signatures(
        netlist, simulator.output_diffs(fault), len(tests)
    )


def observe_defect(
    good_netlist: Netlist, defective_netlist: Netlist, tests: TestSet
) -> List[Signature]:
    """The observed response of an arbitrary defective circuit.

    ``defective_netlist`` may differ from ``good_netlist`` in any way
    (multiple stuck lines, rewired gates…) as long as the interface is
    identical — this is how non-modelled defects are fed to diagnosis.
    """
    if list(defective_netlist.inputs) != list(good_netlist.inputs) or list(
        defective_netlist.outputs
    ) != list(good_netlist.outputs):
        raise ValueError("defective circuit must keep the interface unchanged")
    good = output_words(good_netlist, tests)
    bad = output_words(defective_netlist, tests)
    diffs = {
        net: good[net] ^ bad[net] for net in good if good[net] != bad[net]
    }
    return _diffs_to_signatures(good_netlist, diffs, len(tests))


def _diffs_to_signatures(
    netlist: Netlist, diffs: Dict[str, int], n_tests: int
) -> List[Signature]:
    per_test: Dict[int, List[int]] = {}
    for o, net in enumerate(netlist.outputs):
        word = diffs.get(net, 0)
        for j in iter_bits(word):
            per_test.setdefault(j, []).append(o)
    return [tuple(per_test.get(j, ())) for j in range(n_tests)]
