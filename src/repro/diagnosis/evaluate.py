"""Defect-injection campaigns: how resolution translates into diagnosis quality.

Two campaigns:

* :func:`single_fault_campaign` injects modelled single stuck-at faults and
  measures the candidate set each dictionary reports — the realized
  diagnostic resolution (a dictionary with fewer indistinguished pairs
  yields smaller candidate sets).
* :func:`double_fault_campaign` injects defects *outside* the model (two
  simultaneous stuck-at faults) and checks whether a constituent fault
  still surfaces among the top ranked candidates — the robustness check a
  cause-effect flow needs in practice.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..atpg.distinguish import injected_copy
from ..circuit.netlist import Netlist
from ..dictionaries.base import FaultDictionary
from ..sim.patterns import TestSet
from .engine import Diagnoser, observe_defect, observe_fault


@dataclass
class CampaignResult:
    """Aggregated diagnosis quality for one dictionary."""

    kind: str
    injections: int = 0
    unique: int = 0
    candidate_sizes: List[int] = field(default_factory=list)
    hits_at_1: int = 0
    hits_at_10: int = 0

    @property
    def unique_fraction(self) -> float:
        return self.unique / self.injections if self.injections else 0.0

    @property
    def mean_candidates(self) -> float:
        if not self.candidate_sizes:
            return 0.0
        return sum(self.candidate_sizes) / len(self.candidate_sizes)

    @property
    def top1_accuracy(self) -> float:
        return self.hits_at_1 / self.injections if self.injections else 0.0

    @property
    def top10_accuracy(self) -> float:
        return self.hits_at_10 / self.injections if self.injections else 0.0

    def as_dict(self, schema: int = 2) -> Dict[str, object]:
        """Fields plus derived rates, for JSON export.

        Mirrors :meth:`repro.dictionaries.samediff.BuildReport.as_dict`:
        ``schema=2`` (default) carries a ``"schema": 2`` marker, ``schema=1``
        is the marker-free legacy shape with the same keys.
        """
        if schema not in (1, 2):
            raise ValueError(
                f"unknown CampaignResult schema {schema!r} (supported: 1, 2)"
            )
        data: Dict[str, object] = {
            "kind": self.kind,
            "injections": self.injections,
            "unique": self.unique,
            "candidate_sizes": list(self.candidate_sizes),
            "hits_at_1": self.hits_at_1,
            "hits_at_10": self.hits_at_10,
            "unique_fraction": self.unique_fraction,
            "mean_candidates": self.mean_candidates,
            "top1_accuracy": self.top1_accuracy,
            "top10_accuracy": self.top10_accuracy,
        }
        if schema == 2:
            data["schema"] = 2
        return data


def single_fault_campaign(
    netlist: Netlist,
    tests: TestSet,
    dictionaries: Sequence[FaultDictionary],
    sample: int = 50,
    seed: int = 0,
) -> Dict[str, CampaignResult]:
    """Inject sampled modelled faults; report exact-candidate statistics."""
    rng = random.Random(seed)
    table = dictionaries[0].table
    indices = list(range(table.n_faults))
    rng.shuffle(indices)
    chosen = indices[: min(sample, len(indices))]
    results = {d.kind: CampaignResult(d.kind) for d in dictionaries}
    for index in chosen:
        observed = observe_fault(netlist, tests, table.faults[index])
        for dictionary in dictionaries:
            diagnosis = Diagnoser(dictionary).diagnose(observed)
            result = results[dictionary.kind]
            result.injections += 1
            result.candidate_sizes.append(diagnosis.candidate_count)
            if diagnosis.is_unique and diagnosis.exact[0] == table.faults[index]:
                result.unique += 1
            truth = table.faults[index]
            ranked_faults = [fault for fault, _ in diagnosis.ranked]
            if ranked_faults and ranked_faults[0] == truth:
                result.hits_at_1 += 1
            if truth in ranked_faults[:10]:
                result.hits_at_10 += 1
    return results


def double_fault_campaign(
    netlist: Netlist,
    tests: TestSet,
    dictionaries: Sequence[FaultDictionary],
    sample: int = 25,
    seed: int = 0,
) -> Dict[str, CampaignResult]:
    """Inject pairs of simultaneous faults (a non-modelled defect).

    A diagnosis "hits" when some constituent of the injected pair appears
    first (top-1) or among the first ten ranked candidates (top-10).
    """
    rng = random.Random(seed ^ 0xD0B1)
    table = dictionaries[0].table
    results = {d.kind: CampaignResult(d.kind) for d in dictionaries}
    n = table.n_faults
    if n < 2:
        return results
    for _ in range(sample):
        a, b = rng.sample(range(n), 2)
        try:
            defective = injected_copy(netlist, table.faults[a])
            defective = injected_copy(defective, table.faults[b])
        except ValueError:
            # The two faults collide structurally (same pin); skip the draw.
            continue
        observed = observe_defect(netlist, defective, tests)
        truth = {table.faults[a], table.faults[b]}
        for dictionary in dictionaries:
            diagnosis = Diagnoser(dictionary).diagnose(observed)
            result = results[dictionary.kind]
            result.injections += 1
            result.candidate_sizes.append(diagnosis.candidate_count)
            ranked_faults = [fault for fault, _ in diagnosis.ranked]
            if ranked_faults and ranked_faults[0] in truth:
                result.hits_at_1 += 1
            if truth & set(ranked_faults[:10]):
                result.hits_at_10 += 1
    return results
