"""Response-matching strategies for non-modelled defects.

A single stuck-at dictionary row rarely matches a real defect (bridge,
open, multiple faults) exactly.  Practical cause-effect tools therefore
rank candidates with weaker per-test comparisons; this module implements
the classic family (in the spirit of POIROT and the SLAT paradigm):

* **exact** — the stored response equals the observation on the test;
* **subset / superset** — the stored failing-output set is contained in /
  contains the observed one (a defect that behaves like the fault "plus
  more", or the fault partially activated);
* **intersection** — the two failing-output sets overlap at all.

:func:`score_fault` tallies all categories for one candidate;
:func:`rank_candidates` orders the fault list under a chosen policy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..faults.model import Fault
from ..sim.responses import PASS, ResponseTable, Signature


@dataclass(frozen=True)
class MatchScore:
    """Per-test comparison tallies of one candidate against an observation."""

    #: Failing tests where prediction == observation (non-empty and equal).
    exact_fail: int = 0
    #: Failing tests where the prediction is a proper subset of the observation.
    subset_fail: int = 0
    #: Failing tests where the prediction is a proper superset of the observation.
    superset_fail: int = 0
    #: Failing tests with some overlap but neither containment.
    overlap_fail: int = 0
    #: Observed-failing tests the candidate does not explain at all.
    unexplained_fail: int = 0
    #: Tests where the candidate predicts a failure the chip did not show.
    mispredicted_fail: int = 0
    #: Tests where both chip and candidate pass.
    pass_agree: int = 0

    @property
    def explained_fail(self) -> int:
        """Failing tests explained at least partially."""
        return self.exact_fail + self.subset_fail + self.superset_fail + self.overlap_fail

    @property
    def slat_consistent(self) -> bool:
        """SLAT-style consistency: explains some test exactly, never
        predicts a failure the chip did not show."""
        return self.exact_fail > 0 and self.mispredicted_fail == 0


class Policy(enum.Enum):
    """Ranking policies."""

    EXACT = "exact"
    SLAT = "slat"
    INTERSECTION = "intersection"


def score_fault(
    table: ResponseTable, fault_index: int, observed: Sequence[Signature]
) -> MatchScore:
    """Compare one candidate's stored responses against the observation."""
    if len(observed) != table.n_tests:
        raise ValueError(
            f"observation has {len(observed)} tests, table has {table.n_tests}"
        )
    exact = subset = superset = overlap = unexplained = mispredicted = agree = 0
    for j, raw in enumerate(observed):
        observed_sig = tuple(raw)
        predicted = table.signature(fault_index, j)
        if observed_sig == PASS and predicted == PASS:
            agree += 1
        elif observed_sig == PASS:
            mispredicted += 1
        elif predicted == PASS:
            unexplained += 1
        elif predicted == observed_sig:
            exact += 1
        else:
            p, o = set(predicted), set(observed_sig)
            if p < o:
                subset += 1
            elif p > o:
                superset += 1
            elif p & o:
                overlap += 1
            else:
                unexplained += 1
    return MatchScore(
        exact_fail=exact,
        subset_fail=subset,
        superset_fail=superset,
        overlap_fail=overlap,
        unexplained_fail=unexplained,
        mispredicted_fail=mispredicted,
        pass_agree=agree,
    )


def _policy_key(policy: Policy, score: MatchScore) -> Tuple:
    if policy is Policy.EXACT:
        return (score.exact_fail, -score.mispredicted_fail, -score.unexplained_fail)
    if policy is Policy.SLAT:
        return (
            int(score.slat_consistent),
            score.exact_fail,
            -score.mispredicted_fail,
            -score.unexplained_fail,
        )
    if policy is Policy.INTERSECTION:
        return (
            score.explained_fail,
            -score.mispredicted_fail,
            score.exact_fail,
        )
    raise ValueError(f"unknown policy {policy!r}")


def rank_candidates(
    table: ResponseTable,
    observed: Sequence[Signature],
    policy: Policy = Policy.SLAT,
    limit: int = 10,
) -> List[Tuple[Fault, MatchScore]]:
    """The best ``limit`` candidates under ``policy``, best first."""
    scored = [
        (table.faults[i], score_fault(table, i, observed))
        for i in range(table.n_faults)
    ]
    scored.sort(key=lambda item: _policy_key(policy, item[1]), reverse=True)
    return scored[:limit]


def slat_candidates(
    table: ResponseTable, observed: Sequence[Signature]
) -> List[Fault]:
    """All SLAT-consistent candidates (exactly explain ≥1 failing test,
    predict no failure the chip did not show)."""
    return [
        table.faults[i]
        for i in range(table.n_faults)
        if score_fault(table, i, observed).slat_consistent
    ]
