"""The diagnosis layer's metric-name catalog.

Mirrors :mod:`repro.serve.metrics`: every metric the diagnosis and fleet
layers emit is addressed through a constant here — never an inline
string literal — so this table *is* the emission surface.
``tests/docs/test_metrics_catalog.py`` holds the names (this catalog
plus a literal scan of ``src/repro/diagnosis/`` and
``src/repro/experiments/fleet.py``) against the table in
``docs/observability.md``: a metric added here without a doc row fails
the suite.

The four pre-existing ``diagnosis.*`` counters emitted by
:mod:`repro.diagnosis.engine` (``lookups``, ``candidates_scored``,
``exact_matches``, ``artifact_diagnosers``) predate this catalog and are
enumerated here so the docs test covers them too.
"""

from __future__ import annotations

# -- counters (single-fault engine, pre-existing) ----------------------
#: Dictionary lookups served by :class:`~repro.diagnosis.engine.Diagnoser`.
LOOKUPS = "diagnosis.lookups"
#: Stored rows compared across lookups.
CANDIDATES_SCORED = "diagnosis.candidates_scored"
#: Exact candidates returned across lookups.
EXACT_MATCHES = "diagnosis.exact_matches"
#: Diagnosers stood up from on-disk artifacts.
ARTIFACT_DIAGNOSERS = "diagnosis.artifact_diagnosers"

# -- counters (multi-fault envelope matching) --------------------------
#: Multi-fault candidate searches (:func:`~repro.diagnosis.multiplet.match_multiplets`).
MULTIPLET_SEARCHES = "diagnosis.multiplet_searches"
#: Candidate multiplets whose envelopes were checked against an observation.
MULTIPLETS_CHECKED = "diagnosis.multiplets_checked"
#: Multiplets admitted (within the flip budget) across searches.
MULTIPLETS_ADMITTED = "diagnosis.multiplets_admitted"

# -- counters (noise-tolerant scoring) ---------------------------------
#: Flip-budget rankings served (:func:`~repro.diagnosis.noisy.rank_noisy`).
NOISY_RANKINGS = "diagnosis.noisy_rankings"
#: Candidates admitted within the flip budget across rankings.
NOISY_ADMITTED = "diagnosis.noisy_admitted"

# -- counters/timers (fleet campaigns) ---------------------------------
#: Defective units synthesized and diagnosed across fleet campaigns.
FLEET_UNITS = "fleet.units"
#: Tester observations applied across all fleet units.
FLEET_OBSERVATIONS = "fleet.observations"
#: Units whose adaptive session converged before the test budget ran out.
FLEET_CONVERGED = "fleet.converged"
#: Units whose true fault (or a constituent of it) survived to the end.
FLEET_HITS = "fleet.hits"
#: (timer) Wall time of one fleet campaign cell (kind × strategy).
FLEET_CELL_SECONDS = "fleet.cell_seconds"


def catalog() -> dict:
    """Every metric name the diagnosis/fleet layers can emit, by kind."""
    return {
        "counters": [
            LOOKUPS,
            CANDIDATES_SCORED,
            EXACT_MATCHES,
            ARTIFACT_DIAGNOSERS,
            MULTIPLET_SEARCHES,
            MULTIPLETS_CHECKED,
            MULTIPLETS_ADMITTED,
            NOISY_RANKINGS,
            NOISY_ADMITTED,
            FLEET_UNITS,
            FLEET_OBSERVATIONS,
            FLEET_CONVERGED,
            FLEET_HITS,
        ],
        "gauges": [],
        "timers": [
            FLEET_CELL_SECONDS,
        ],
    }
