"""Masking-aware multi-fault candidate matching (fault multiplets).

A single-stuck-at dictionary models one fault at a time, but a real
defective unit may carry several.  When faults ``f_a`` and ``f_b`` are
both present, each primary output behaves per test ``t_j`` as:

* an output failed by **exactly one** member must fail — the other
  member does not drive that output on that test, so nothing can cancel
  the error;
* an output failed by **two or more** members *may* pass — the error
  effects can mask each other along reconvergent paths;
* an output failed by **no** member cannot fail (under the composition
  model; noise is the flip budget's job, below).

That gives every candidate multiplet a per-test *envelope*: a lower
bound (outputs failed by exactly one member) and an upper bound (the
union of the members' failing sets).  A multiplet **matches** an
observed response when, on every test, the observed failing-output set
lies between the two bounds: ``lower ⊆ observed ⊆ upper``.

This is deliberately a dictionary-level approximation.  True multi-fault
interaction can also block activation or open new propagation paths, so
the envelope admits some physically impossible composites and —
rarely — excludes a real one; ``docs/diagnosis.md`` discusses the
caveats.  The approximation is what makes multi-fault diagnosis possible
*without re-simulating fault combinations*: everything here reads only
the stored single-fault signatures.

A singleton multiplet's envelope collapses to its exact signature
(``lower == upper``), so ``max_faults=1`` with ``flip_budget=0``
reproduces the exact-match candidate set of the full dictionary —
``tests/diagnosis/test_multiplets.py`` pins that byte-for-byte.

Noise composes orthogonally: a ``flip_budget`` of ``k`` admits
multiplets whose envelope is violated on at most ``k`` tests (see
:mod:`repro.diagnosis.noisy` for the single-fault form and the ranking
rationale).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..obs import get_default_registry, trace_span
from ..sim.responses import PASS, ResponseTable, Signature
from . import metrics as M


@dataclass(frozen=True)
class Envelope:
    """The per-test failing-output bounds of one multiplet.

    ``lower`` holds the outputs that must fail (failed by exactly one
    member), ``upper`` the outputs that may fail (failed by any member).
    ``lower ⊆ upper`` always holds.
    """

    lower: FrozenSet[int]
    upper: FrozenSet[int]

    def admits(self, observed: Signature) -> bool:
        """Does an observed failing-output set fall inside the bounds?"""
        failing = frozenset(observed)
        return self.lower <= failing <= self.upper


def envelope(
    table: ResponseTable, members: Sequence[int], test_index: int
) -> Envelope:
    """The masking envelope of ``members`` under one test."""
    counts: Dict[int, int] = {}
    for fault_index in members:
        for output in table.signature(fault_index, test_index):
            counts[output] = counts.get(output, 0) + 1
    return Envelope(
        lower=frozenset(o for o, c in counts.items() if c == 1),
        upper=frozenset(counts),
    )


def envelope_violations(
    table: ResponseTable,
    members: Sequence[int],
    observed: Sequence[Signature],
    *,
    budget: Optional[int] = None,
) -> int:
    """Tests on which the observation falls outside the multiplet's envelope.

    With ``budget`` set, counting stops early once the budget is
    exceeded (the returned value is then ``budget + 1``) — the pruning
    the candidate search relies on.
    """
    if len(observed) != table.n_tests:
        raise ValueError(
            f"observation has {len(observed)} tests, table has {table.n_tests}"
        )
    violations = 0
    for j, signature in enumerate(observed):
        if not envelope(table, members, j).admits(tuple(signature)):
            violations += 1
            if budget is not None and violations > budget:
                return violations
    return violations


def multiplet_matches(
    table: ResponseTable, members: Sequence[int], observed: Sequence[Signature]
) -> bool:
    """Envelope consistency on every test (no flip budget)."""
    return envelope_violations(table, members, observed, budget=0) == 0


@dataclass(frozen=True)
class MultipletMatch:
    """One admitted candidate multiplet."""

    #: Member fault indices, strictly ascending.
    members: Tuple[int, ...]
    #: Tests on which the envelope was violated (0 = fully consistent).
    flips: int

    @property
    def size(self) -> int:
        return len(self.members)

    def sort_key(self) -> Tuple[int, int, Tuple[int, ...]]:
        """Fewest repairs first, then smallest (most parsimonious)
        multiplet, then ascending member indices — a total order, so
        rankings are deterministic."""
        return (self.flips, self.size, self.members)

    def render(self, faults: Sequence[object]) -> str:
        """Human/wire name: member fault names joined with ``+``."""
        return "+".join(str(faults[i]) for i in self.members)


def _contributing_pool(
    table: ResponseTable, observed: Sequence[Signature]
) -> List[int]:
    """Faults that explain at least one observed failing output somewhere.

    A fault that never intersects the observed failing set can only
    *add* masking obligations, so multiplets built purely from
    non-contributing faults are dominated; restricting the pool is the
    standard SLAT-style cut that keeps pair enumeration tractable.
    """
    pool = []
    for i in range(table.n_faults):
        for j, signature in enumerate(observed):
            if signature and set(table.signature(i, j)) & set(signature):
                pool.append(i)
                break
    return pool


def _seed_faults(
    table: ResponseTable,
    observed: Sequence[Signature],
    pool: Sequence[int],
    flip_budget: int,
) -> List[int]:
    """A set of faults every admissible multiplet must intersect.

    For each observed failing test, the multiplet must (unless it spends
    a flip there) contain a member whose signature intersects the
    observed failing outputs.  At most ``flip_budget`` failing tests can
    be flipped away, so picking the ``flip_budget + 1`` failing tests
    with the *smallest* cover sets yields a seed set that at least one
    member of every admissible multiplet belongs to.  Falls back to the
    whole pool when the observation has no failing test.
    """
    covers: List[List[int]] = []
    for j, signature in enumerate(observed):
        if not signature:
            continue
        failing = set(signature)
        cover = [
            i for i in pool if set(table.signature(i, j)) & failing
        ]
        covers.append(cover)
    if not covers:
        return list(pool)
    covers.sort(key=len)
    seeds: List[int] = []
    seen = set()
    for cover in covers[: flip_budget + 1]:
        for i in cover:
            if i not in seen:
                seen.add(i)
                seeds.append(i)
    return seeds


def _minimal_only(matches: List[MultipletMatch]) -> List[MultipletMatch]:
    """Drop multiplets that strictly contain a no-worse admitted multiplet.

    A pair ``{a, b}`` that matches only because ``{a}`` already matches
    adds no diagnostic information; parsimonious candidates are what the
    operator acts on.
    """
    kept: List[MultipletMatch] = []
    by_size = sorted(matches, key=lambda m: (m.size, m.flips, m.members))
    accepted: List[MultipletMatch] = []
    for match in by_size:
        members = set(match.members)
        dominated = any(
            set(small.members) < members and small.flips <= match.flips
            for small in accepted
        )
        if not dominated:
            accepted.append(match)
            kept.append(match)
    return kept


def match_multiplets(
    table: ResponseTable,
    observed: Sequence[Signature],
    *,
    max_faults: int = 2,
    flip_budget: int = 0,
    limit: Optional[int] = None,
    minimal: bool = True,
) -> List[MultipletMatch]:
    """All admitted multiplets of up to ``max_faults`` members, ranked.

    A multiplet is admitted when its envelope is violated on at most
    ``flip_budget`` tests.  The result is sorted by
    :meth:`MultipletMatch.sort_key` — fewest flips, then fewest members,
    then member indices — and truncated to ``limit`` entries when given.
    With ``minimal=True`` (the default), multiplets that strictly
    contain an admitted no-worse multiplet are dropped first.

    Cost: singles are one scan; size-``m`` enumeration pairs a seed set
    (faults covering the hardest-to-explain failing tests) with the
    contributing pool, so it stays far below the raw
    ``C(n_faults, m)`` blow-up on realistic observations.
    """
    if max_faults < 1:
        raise ValueError(f"max_faults must be >= 1, got {max_faults}")
    if flip_budget < 0:
        raise ValueError(f"flip_budget must be >= 0, got {flip_budget}")
    if len(observed) != table.n_tests:
        raise ValueError(
            f"observation has {len(observed)} tests, table has {table.n_tests}"
        )
    observed = [tuple(signature) for signature in observed]
    registry = get_default_registry()
    registry.counter(M.MULTIPLET_SEARCHES).inc()

    matches: List[MultipletMatch] = []
    checked = 0
    with trace_span(
        "diagnosis.multiplets", max_faults=max_faults, flip_budget=flip_budget
    ):
        # Singles: the singleton envelope is the exact signature, so this
        # is plain row-distance admission (noisy.py's semantics).
        for i in range(table.n_faults):
            checked += 1
            flips = envelope_violations(
                table, (i,), observed, budget=flip_budget
            )
            if flips <= flip_budget:
                matches.append(MultipletMatch((i,), flips))

        if max_faults >= 2:
            pool = _contributing_pool(table, observed)
            seeds = _seed_faults(table, observed, pool, flip_budget)
            seed_set = set(seeds)
            for size in range(2, max_faults + 1):
                for rest in itertools.combinations(pool, size - 1):
                    for seed in seeds:
                        if seed in rest:
                            continue
                        members = tuple(sorted((seed, *rest)))
                        # Canonical enumeration: emit each multiplet once,
                        # via its lowest-index seed member.
                        if any(
                            m in seed_set and m < seed for m in members
                        ):
                            continue
                        checked += 1
                        flips = envelope_violations(
                            table, members, observed, budget=flip_budget
                        )
                        if flips <= flip_budget:
                            matches.append(MultipletMatch(members, flips))

    if minimal:
        matches = _minimal_only(matches)
    matches.sort(key=MultipletMatch.sort_key)
    registry.counter(M.MULTIPLETS_CHECKED).inc(checked)
    registry.counter(M.MULTIPLETS_ADMITTED).inc(len(matches))
    if limit is not None:
        matches = matches[:limit]
    return matches


def compose_observation(
    table: ResponseTable,
    members: Sequence[int],
    *,
    masked: Sequence[Tuple[int, int]] = (),
) -> List[Signature]:
    """The composite response of a multiplet under the envelope model.

    Each test's failing set is the union of the members' failing sets,
    minus any ``(test, output)`` pairs listed in ``masked`` — which must
    name outputs the envelope actually allows to mask (failed by two or
    more members).  This is the synthetic-unit generator the fleet
    campaign (:mod:`repro.experiments.fleet`) uses; it raises on a
    ``masked`` pair outside the envelope so generated units always fall
    inside the model they are diagnosed under.
    """
    masked_set = set(masked)
    for j, output in masked_set:
        env = envelope(table, members, j)
        if output not in env.upper or output in env.lower:
            raise ValueError(
                f"({j}, {output}) is not maskable for multiplet "
                f"{tuple(members)}: masking needs two or more members "
                "failing that output on that test"
            )
    response: List[Signature] = []
    for j in range(table.n_tests):
        env = envelope(table, members, j)
        failing = sorted(
            o for o in env.upper if (j, o) not in masked_set
        )
        response.append(tuple(failing) if failing else PASS)
    return response
