"""Noise-tolerant ranked scoring with a flip budget.

Exact matching (`FaultDictionary.exact_candidates`) assumes the tester
report is a faithful copy of the stored row.  Fleet traffic is noisier:
marginal timing, tester retries, or intermittent defects flip an
occasional test between pass and fail, and one flipped test makes the
exact lookup return *nothing* even though the stored dictionary
pinpoints the fault.

The flip budget recovers those lookups.  A candidate's **flip count**
is the number of tests on which its stored signature disagrees with the
observation (a per-test Hamming distance over signature-valued rows).  A
budget of ``k`` admits every candidate with at most ``k`` flips; ranking
then prefers

1. fewer flips used (the most literal explanation first),
2. a smaller equivalence class — candidates whose stored row is shared
   by fewer faults are more actionable, matching the paper's
   resolution-by-class-size framing,
3. ascending fault index (a deterministic final tie-break).

``flip_budget=0`` degenerates to exact matching: the admitted set equals
`exact_candidates` in the same order, which
``tests/diagnosis/test_noisy.py`` pins byte-for-byte.

:func:`rank_noisy_prefix` composes with truncated tester logs
(:mod:`repro.diagnosis.truncated`): flips are counted only on the
observed prefix, never in the unobserved tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import get_default_registry
from ..sim.responses import ResponseTable, Signature
from . import metrics as M
from .truncated import TruncatedLog


@dataclass(frozen=True)
class NoisyScore:
    """One admitted candidate under a flip budget."""

    fault_index: int
    #: Tests where the stored signature disagrees with the observation.
    flips: int
    #: Faults sharing this candidate's stored row (smaller = sharper).
    class_size: int

    def sort_key(self) -> Tuple[int, int, int]:
        return (self.flips, self.class_size, self.fault_index)


def response_distance(
    table: ResponseTable,
    fault_index: int,
    observed: Sequence[Signature],
    *,
    budget: Optional[int] = None,
) -> int:
    """Number of tests where the stored row differs from the observation.

    With ``budget`` set, counting stops at ``budget + 1`` — enough to
    know the candidate is inadmissible without scanning the rest.
    """
    if len(observed) != table.n_tests:
        raise ValueError(
            f"observation has {len(observed)} tests, table has {table.n_tests}"
        )
    flips = 0
    for j, signature in enumerate(observed):
        if table.signature(fault_index, j) != tuple(signature):
            flips += 1
            if budget is not None and flips > budget:
                return flips
    return flips


def _row_class_sizes(table: ResponseTable) -> Dict[int, int]:
    """Fault index → number of faults sharing its full stored row."""
    groups: Dict[Tuple[Signature, ...], int] = {}
    rows = [table.full_row(i) for i in range(table.n_faults)]
    for row in rows:
        groups[row] = groups.get(row, 0) + 1
    return {i: groups[row] for i, row in enumerate(rows)}


def rank_noisy(
    table: ResponseTable,
    observed: Sequence[Signature],
    *,
    flip_budget: int = 0,
    limit: Optional[int] = None,
) -> List[NoisyScore]:
    """Candidates within the flip budget, ranked.

    Sorted by :meth:`NoisyScore.sort_key` — fewest flips, then smallest
    equivalence class, then fault index — and truncated to ``limit``
    entries when given.  ``flip_budget=0`` reproduces the exact-match
    candidate list (same faults, same order).
    """
    if flip_budget < 0:
        raise ValueError(f"flip_budget must be >= 0, got {flip_budget}")
    observed = [tuple(signature) for signature in observed]
    registry = get_default_registry()
    registry.counter(M.NOISY_RANKINGS).inc()

    admitted: List[NoisyScore] = []
    class_sizes: Optional[Dict[int, int]] = None
    for i in range(table.n_faults):
        flips = response_distance(table, i, observed, budget=flip_budget)
        if flips > flip_budget:
            continue
        if class_sizes is None:
            class_sizes = _row_class_sizes(table)
        admitted.append(NoisyScore(i, flips, class_sizes[i]))
    admitted.sort(key=NoisyScore.sort_key)
    registry.counter(M.NOISY_ADMITTED).inc(len(admitted))
    if limit is not None:
        admitted = admitted[:limit]
    return admitted


def admitted_candidates(
    table: ResponseTable,
    observed: Sequence[Signature],
    *,
    flip_budget: int = 0,
) -> List[int]:
    """Just the admitted fault indices, in ranked order."""
    return [
        score.fault_index
        for score in rank_noisy(table, observed, flip_budget=flip_budget)
    ]


def rank_noisy_prefix(
    table: ResponseTable,
    log: TruncatedLog,
    *,
    flip_budget: int = 0,
    limit: Optional[int] = None,
) -> List[NoisyScore]:
    """Flip-budget ranking against a truncated tester log.

    Flips are counted only over the observed prefix (``log.cutoff``
    tests); the unobserved tail is unknown, not disagreement.  With a
    complete log this equals :func:`rank_noisy`.
    """
    if flip_budget < 0:
        raise ValueError(f"flip_budget must be >= 0, got {flip_budget}")
    if log.cutoff > table.n_tests:
        raise ValueError(
            f"log cutoff {log.cutoff} exceeds table's {table.n_tests} tests"
        )
    registry = get_default_registry()
    registry.counter(M.NOISY_RANKINGS).inc()

    admitted: List[NoisyScore] = []
    class_sizes: Optional[Dict[int, int]] = None
    for i in range(table.n_faults):
        flips = 0
        for j in range(log.cutoff):
            if table.signature(i, j) != log.responses[j]:
                flips += 1
                if flips > flip_budget:
                    break
        if flips > flip_budget:
            continue
        if class_sizes is None:
            class_sizes = _row_class_sizes(table)
        admitted.append(NoisyScore(i, flips, class_sizes[i]))
    admitted.sort(key=NoisyScore.sort_key)
    registry.counter(M.NOISY_ADMITTED).inc(len(admitted))
    if limit is not None:
        admitted = admitted[:limit]
    return admitted
