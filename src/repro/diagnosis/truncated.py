"""Diagnosis from truncated tester logs.

Production testers frequently stop logging after the first few failing
tests (or stop the test entirely — "stop on first fail").  The observed
response is then *truncated*: failures after the cut-off are unknown, not
passes.  Matching must treat the unknown region accordingly, otherwise
every candidate gets penalised for "mispredicting" failures the tester
simply never looked at.

:func:`truncate_log` models the tester; :func:`rank_truncated` scores
candidates only on the observed prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..faults.model import Fault
from ..sim.responses import PASS, ResponseTable, Signature


@dataclass(frozen=True)
class TruncatedLog:
    """What the tester reported.

    ``responses[j]`` is the signature of test ``j`` for ``j < cutoff``;
    tests at or past ``cutoff`` were not observed.  ``cutoff`` equals the
    number of tests when the log is complete.
    """

    responses: Tuple[Signature, ...]
    cutoff: int

    @property
    def observed_failures(self) -> int:
        return sum(1 for sig in self.responses if sig != PASS)


def truncate_log(
    observed: Sequence[Signature], max_failures: int
) -> TruncatedLog:
    """Keep the response stream up to (and including) the N-th failure."""
    if max_failures < 1:
        raise ValueError("a useful log records at least one failure")
    kept: List[Signature] = []
    failures = 0
    for sig in observed:
        kept.append(tuple(sig))
        if tuple(sig) != PASS:
            failures += 1
            if failures >= max_failures:
                break
    return TruncatedLog(tuple(kept), len(kept))


@dataclass(frozen=True)
class TruncatedScore:
    """Agreement of one candidate with the observed prefix."""

    matching_tests: int
    mispredicted: int  # candidate fails where the chip passed (observed region)
    missed: int  # chip failed where the candidate passes (observed region)

    @property
    def consistent(self) -> bool:
        return self.mispredicted == 0 and self.missed == 0


def score_truncated(
    table: ResponseTable, fault_index: int, log: TruncatedLog
) -> TruncatedScore:
    """Compare one candidate against the observed prefix only."""
    matching = mispredicted = missed = 0
    for j in range(log.cutoff):
        observed = log.responses[j]
        predicted = table.signature(fault_index, j)
        if predicted == observed:
            matching += 1
        elif observed == PASS:
            mispredicted += 1
        elif predicted == PASS:
            missed += 1
    return TruncatedScore(matching, mispredicted, missed)


def rank_truncated(
    table: ResponseTable,
    log: TruncatedLog,
    limit: int = 10,
) -> List[Tuple[Fault, TruncatedScore]]:
    """Best candidates on the prefix: consistent first, then by agreement."""
    scored = [
        (table.faults[i], score_truncated(table, i, log))
        for i in range(table.n_faults)
    ]
    scored.sort(
        key=lambda item: (
            item[1].consistent,
            item[1].matching_tests,
            -item[1].mispredicted - item[1].missed,
        ),
        reverse=True,
    )
    return scored[:limit]


def exact_prefix_candidates(
    table: ResponseTable, log: TruncatedLog
) -> List[int]:
    """Faults whose stored rows match the observed prefix exactly.

    With a complete log this equals the full dictionary's exact-candidate
    set; shorter logs can only grow it — quantifying what truncation
    costs in resolution.
    """
    candidates = []
    for i in range(table.n_faults):
        if all(
            table.signature(i, j) == log.responses[j] for j in range(log.cutoff)
        ):
            candidates.append(i)
    return candidates
