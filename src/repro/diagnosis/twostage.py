"""Two-stage diagnosis: dictionary screening + dynamic refinement.

The paper positions small dictionaries as the first stage of two-phase
flows (its refs [8], [12], [14]): a cheap one-bit-per-test dictionary
narrows the suspects, then targeted fault simulation of just those
suspects — comparing *full* responses — finishes the job.  This module
implements that flow, which is where the same/different dictionary's
higher first-stage resolution pays off directly: fewer suspects to
re-simulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..circuit.netlist import Netlist
from ..faults.model import Fault
from ..sim.bits import iter_bits
from ..sim.patterns import TestSet
from ..sim.responses import Signature
from ..dictionaries.base import FaultDictionary


@dataclass
class TwoStageDiagnosis:
    """Outcome of a two-stage run."""

    #: Faults surviving the dictionary screen (stage 1).
    screened: List[Fault]
    #: Faults whose full simulated response matches the observation exactly
    #: (stage 2); empty for non-modelled defects.
    confirmed: List[Fault]
    #: Faults simulated in stage 2 (the dynamic effort actually spent).
    simulated: int

    @property
    def screen_size(self) -> int:
        return len(self.screened)


class TwoStageDiagnoser:
    """Dictionary pre-screen followed by full-response comparison.

    Stage 2 needs the *full* response of every screened fault.  Screened
    faults always come from the dictionary's own fault list, so their
    full rows are already in the response table the dictionary was built
    over — they are read from there, and the fault simulator is only
    constructed lazily, as a fallback for callers that feed faults from
    outside the table.  That makes the two-stage flow artifact-servable:
    :meth:`from_artifact` runs both stages with no circuit files present.
    """

    def __init__(
        self,
        netlist: Optional[Netlist],
        tests: TestSet,
        dictionary: FaultDictionary,
    ) -> None:
        self.netlist = netlist
        self.tests = tests
        self.dictionary = dictionary
        self._simulator = None
        self._fault_index = {
            fault: i for i, fault in enumerate(dictionary.table.faults)
        }

    @classmethod
    def from_artifact(cls, path, netlist: Optional[Netlist] = None) -> "TwoStageDiagnoser":
        """Both stages from an on-disk artifact; ``netlist`` is optional
        and only consulted for faults outside the artifact's fault list."""
        from ..store import load_artifact

        built = load_artifact(path)
        return cls(netlist, built.table.tests, built.dictionary)

    def _simulate_response(self, fault: Fault) -> Tuple[Signature, ...]:
        if self._simulator is None:
            if self.netlist is None:
                raise ValueError(
                    f"fault {fault} is not in the dictionary's fault list and "
                    "no netlist was provided to simulate it"
                )
            from ..sim.faultsim import FaultSimulator

            self._simulator = FaultSimulator(self.netlist, self.tests)
        per_test = {}
        output_index = {net: o for o, net in enumerate(self.netlist.outputs)}
        diffs = self._simulator.output_diffs(fault)
        for net in self.netlist.outputs:
            word = diffs.get(net)
            if not word:
                continue
            o = output_index[net]
            for j in iter_bits(word):
                per_test.setdefault(j, []).append(o)
        return tuple(
            tuple(per_test.get(j, ())) for j in range(len(self.tests))
        )

    def _full_response(self, fault: Fault) -> Tuple[Signature, ...]:
        index = self._fault_index.get(fault)
        if index is not None:
            return self.dictionary.table.full_row(index)
        return self._simulate_response(fault)

    def diagnose(self, observed: Sequence[Signature]) -> TwoStageDiagnosis:
        """Run both stages on an observed response.

        Stage 1 keeps the faults whose dictionary row matches the encoded
        observation.  Stage 2 fault-simulates only those and keeps exact
        full-response matches.  When the screen comes back empty (a
        non-modelled defect changed even the dictionary-visible behaviour),
        stage 2 falls back to the dictionary's nearest matches.
        """
        faults = self.dictionary.table.faults
        screened = [
            faults[index]
            for index in self.dictionary.exact_candidates(observed)
        ]
        fallback = False
        if not screened:
            fallback = True
            ranked = self.dictionary.ranked_candidates(observed, limit=10)
            screened = [faults[candidate.fault_index] for candidate in ranked]

        observed_row = tuple(tuple(s) for s in observed)
        confirmed = []
        for fault in screened:
            if self._full_response(fault) == observed_row:
                confirmed.append(fault)
        if fallback:
            # Nearest matches cannot be exact (the screen already failed);
            # report them as suspects without confirmation.
            return TwoStageDiagnosis(screened, [], len(screened))
        return TwoStageDiagnosis(screened, confirmed, len(screened))


def screening_cost_comparison(
    netlist: Netlist,
    tests: TestSet,
    dictionaries: Sequence[FaultDictionary],
    sample: int = 25,
    seed: int = 0,
) -> "dict[str, float]":
    """Mean stage-2 simulation effort per dictionary over sampled defects.

    This is the quantity two-phase flows care about: how many candidate
    faults the first stage leaves for dynamic simulation.
    """
    import random

    from .engine import observe_fault

    rng = random.Random(seed)
    table = dictionaries[0].table
    indices = list(range(table.n_faults))
    rng.shuffle(indices)
    chosen = indices[: min(sample, len(indices))]
    costs = {d.kind: 0 for d in dictionaries}
    for index in chosen:
        observed = observe_fault(netlist, tests, table.faults[index])
        for dictionary in dictionaries:
            stage = TwoStageDiagnoser(netlist, tests, dictionary)
            costs[dictionary.kind] += stage.diagnose(observed).simulated
    return {kind: total / len(chosen) for kind, total in costs.items()}
