"""Fault dictionaries: full, pass/fail, and same/different."""

from .base import DictionarySizes, FaultDictionary, ScoredCandidate
from .compressed import (
    CountDictionary,
    DropOnDetectDictionary,
    FirstFailDictionary,
)
from .full import FullDictionary
from .passfail import PassFailDictionary
from ..partition import (
    Partition,
    indistinguished_pairs,
    pairs_within,
    refine,
    total_pairs,
)
from .testselect import (
    select_tests_preserving_detection,
    select_tests_preserving_resolution,
)
from .storage import (
    PackedDictionary,
    pack_full,
    pack_passfail,
    pack_samediff,
    unpack_full,
    unpack_passfail,
    unpack_samediff,
)
from .samediff import (
    BuildReport,
    MultiBaselineDictionary,
    SameDifferentDictionary,
    add_secondary_baselines,
    build_same_different,
    replace_baselines,
    select_baselines,
)

__all__ = [
    "BuildReport",
    "CountDictionary",
    "DictionarySizes",
    "DropOnDetectDictionary",
    "FirstFailDictionary",
    "FaultDictionary",
    "FullDictionary",
    "MultiBaselineDictionary",
    "PackedDictionary",
    "Partition",
    "PassFailDictionary",
    "SameDifferentDictionary",
    "ScoredCandidate",
    "add_secondary_baselines",
    "build_same_different",
    "indistinguished_pairs",
    "pack_full",
    "pack_passfail",
    "pack_samediff",
    "pairs_within",
    "refine",
    "replace_baselines",
    "select_baselines",
    "select_tests_preserving_detection",
    "select_tests_preserving_resolution",
    "total_pairs",
    "unpack_full",
    "unpack_passfail",
    "unpack_samediff",
]
