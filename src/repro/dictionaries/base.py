"""Shared dictionary framework: the size model and the common interface.

Sizes follow Section 2 of the paper exactly, for ``k`` tests, ``n`` faults
and ``m`` outputs:

* full dictionary: ``k * n * m`` bits,
* pass/fail dictionary: ``k * n`` bits,
* same/different dictionary: ``k * (n + m)`` bits (the ``k * m`` extra
  bits store one baseline output vector per test).

The fault-free response (``k * m`` bits) is needed by every scheme and is
not charged to any of them, again following the paper.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..faults.model import Fault
from ..sim.responses import ResponseTable, Signature
from ..partition import indistinguished_pairs, total_pairs


@dataclass(frozen=True)
class DictionarySizes:
    """Bit sizes of the three dictionary organisations for one experiment."""

    n_faults: int
    n_tests: int
    n_outputs: int

    @property
    def full(self) -> int:
        return self.n_tests * self.n_faults * self.n_outputs

    @property
    def pass_fail(self) -> int:
        return self.n_tests * self.n_faults

    @property
    def same_different(self) -> int:
        return self.n_tests * (self.n_faults + self.n_outputs)

    @classmethod
    def of(cls, table: ResponseTable) -> "DictionarySizes":
        return cls(table.n_faults, table.n_tests, table.n_outputs)


class FaultDictionary(abc.ABC):
    """A precomputed cause-effect diagnosis structure.

    Concrete dictionaries store per-fault *rows* in some encoding, can
    encode an observed response into the same row space, and report their
    diagnostic resolution as the number of fault pairs their rows leave
    indistinguished.
    """

    def __init__(self, table: ResponseTable) -> None:
        self.table = table
        self.faults: Sequence[Fault] = table.faults
        self._row_index: Optional[Dict[object, List[int]]] = None

    # -- identity ------------------------------------------------------
    @property
    @abc.abstractmethod
    def kind(self) -> str:
        """Short scheme name ('full', 'pass/fail', 'same/different')."""

    @property
    @abc.abstractmethod
    def size_bits(self) -> int:
        """Storage size of this dictionary in bits (paper's size model)."""

    # -- rows ------------------------------------------------------------
    @abc.abstractmethod
    def row(self, fault_index: int):
        """The stored row of one fault (hashable)."""

    @abc.abstractmethod
    def encode_response(self, signatures: Sequence[Signature]):
        """Encode an observed response (one signature per test) as a row."""

    # -- resolution --------------------------------------------------------
    def _rows_by_value(self) -> Dict[object, List[int]]:
        """Fault indices keyed by stored row, built once and cached.

        Rows are immutable after construction, so the index doubles as the
        row partition (insertion order = first-seen order) and as the
        exact-match lookup table for diagnosis.
        """
        if self._row_index is None:
            index: Dict[object, List[int]] = {}
            for i in range(self.table.n_faults):
                index.setdefault(self.row(i), []).append(i)
            self._row_index = index
        return self._row_index

    def row_partition(self) -> List[List[int]]:
        """Fault indices grouped by identical rows."""
        return [list(members) for members in self._rows_by_value().values()]

    def indistinguished_pairs(self) -> int:
        """Fault pairs this dictionary cannot tell apart (lower is better)."""
        return indistinguished_pairs(self.row_partition())

    def distinguished_pairs(self) -> int:
        return total_pairs(self.table.n_faults) - self.indistinguished_pairs()

    # -- diagnosis ---------------------------------------------------------
    def exact_candidates(self, signatures: Sequence[Signature]) -> List[int]:
        """Faults whose stored row matches the observed response exactly.

        One hash lookup against the cached row index instead of a linear
        scan over every stored row.
        """
        observed = self.encode_response(signatures)
        return list(self._rows_by_value().get(observed, ()))

    @abc.abstractmethod
    def match_score(self, fault_index: int, signatures: Sequence[Signature]) -> int:
        """Number of tests on which the stored row agrees with the response."""

    def ranked_candidates(
        self, signatures: Sequence[Signature], limit: int = 10
    ) -> List["ScoredCandidate"]:
        """Best-matching faults by per-test agreement, descending."""
        scored = [
            ScoredCandidate(index, self.match_score(index, signatures))
            for index in range(self.table.n_faults)
        ]
        scored.sort(key=lambda c: (-c.score, c.fault_index))
        return scored[:limit]


@dataclass(frozen=True)
class ScoredCandidate:
    """One ranked diagnosis candidate: fault index and its agreement score."""

    fault_index: int
    score: int
