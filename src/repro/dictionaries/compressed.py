"""Compressed dictionary organisations from the literature.

The same/different dictionary competes against a whole family of schemes
that trade resolution for bits (the paper's refs [2]-[4], [9]-[12]).
Three classic representatives, implemented on the same
:class:`~repro.sim.responses.ResponseTable` substrate so they slot into
every comparison:

* :class:`CountDictionary` — per (fault, test), the *number* of failing
  outputs, ``ceil(log2(m+1))`` bits each.  More than pass/fail, much less
  than full.
* :class:`FirstFailDictionary` — per (fault, test), the index of the
  first failing output (or "none"), ``ceil(log2(m+1))`` bits each.  The
  "which pin failed first" record many testers keep.
* :class:`DropOnDetectDictionary` — per fault, only the index of the
  first *detecting test* and the output vector observed there (the
  tester-log format behind Tulloss-style dictionaries and stop-on-first-
  fail production flows): ``ceil(log2(k+1)) + m`` bits per fault.

Every class reports its size with the same conventions as the paper's
model (shared catalogue data excluded).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..sim.responses import PASS, ResponseTable, Signature
from .base import FaultDictionary


def _bits_for(values: int) -> int:
    """Bits needed to store one of ``values`` distinct symbols."""
    return max(1, math.ceil(math.log2(values))) if values > 1 else 1


class CountDictionary(FaultDictionary):
    """Stores the failing-output count of every (fault, test)."""

    def __init__(self, table: ResponseTable) -> None:
        super().__init__(table)
        self._rows: List[Tuple[int, ...]] = [
            tuple(
                len(table.signature(i, j)) for j in range(table.n_tests)
            )
            for i in range(table.n_faults)
        ]

    @property
    def kind(self) -> str:
        return "count"

    @property
    def size_bits(self) -> int:
        per_entry = _bits_for(self.table.n_outputs + 1)
        return self.table.n_tests * self.table.n_faults * per_entry

    def row(self, fault_index: int) -> Tuple[int, ...]:
        return self._rows[fault_index]

    def encode_response(self, signatures: Sequence[Signature]) -> Tuple[int, ...]:
        if len(signatures) != self.table.n_tests:
            raise ValueError("response length mismatch")
        return tuple(len(tuple(s)) for s in signatures)

    def match_score(self, fault_index: int, signatures: Sequence[Signature]) -> int:
        observed = self.encode_response(signatures)
        row = self._rows[fault_index]
        return sum(1 for a, b in zip(row, observed) if a == b)


class FirstFailDictionary(FaultDictionary):
    """Stores the first failing output index of every (fault, test).

    ``m`` encodes "no failing output" (the pass symbol).
    """

    def __init__(self, table: ResponseTable) -> None:
        super().__init__(table)
        none = table.n_outputs
        self._rows: List[Tuple[int, ...]] = [
            tuple(
                (table.signature(i, j) or (none,))[0]
                for j in range(table.n_tests)
            )
            for i in range(table.n_faults)
        ]

    @property
    def kind(self) -> str:
        return "first-fail"

    @property
    def size_bits(self) -> int:
        per_entry = _bits_for(self.table.n_outputs + 1)
        return self.table.n_tests * self.table.n_faults * per_entry

    def row(self, fault_index: int) -> Tuple[int, ...]:
        return self._rows[fault_index]

    def encode_response(self, signatures: Sequence[Signature]) -> Tuple[int, ...]:
        if len(signatures) != self.table.n_tests:
            raise ValueError("response length mismatch")
        none = self.table.n_outputs
        return tuple((tuple(s) or (none,))[0] for s in signatures)

    def match_score(self, fault_index: int, signatures: Sequence[Signature]) -> int:
        observed = self.encode_response(signatures)
        row = self._rows[fault_index]
        return sum(1 for a, b in zip(row, observed) if a == b)


class DropOnDetectDictionary(FaultDictionary):
    """Stores only the first detecting test and its response per fault.

    This is what a stop-on-first-fail tester log supports (Tulloss [2][3]):
    the candidate faults for a failing chip are those whose recorded
    (first-test, response) pair matches the chip's first failure.
    """

    def __init__(self, table: ResponseTable) -> None:
        super().__init__(table)
        none = table.n_tests
        rows: List[Tuple[int, Signature]] = []
        for i in range(table.n_faults):
            word = table.detection_word(i)
            if word == 0:
                rows.append((none, PASS))
            else:
                first = (word & -word).bit_length() - 1
                rows.append((first, table.signature(i, first)))
        self._rows = rows

    @property
    def kind(self) -> str:
        return "drop-on-detect"

    @property
    def size_bits(self) -> int:
        per_fault = _bits_for(self.table.n_tests + 1) + self.table.n_outputs
        return self.table.n_faults * per_fault

    def row(self, fault_index: int) -> Tuple[int, Signature]:
        return self._rows[fault_index]

    def encode_response(self, signatures: Sequence[Signature]) -> Tuple[int, Signature]:
        if len(signatures) != self.table.n_tests:
            raise ValueError("response length mismatch")
        for j, raw in enumerate(signatures):
            sig = tuple(raw)
            if sig != PASS:
                return (j, sig)
        return (self.table.n_tests, PASS)

    def match_score(self, fault_index: int, signatures: Sequence[Signature]) -> int:
        # All-or-nothing: either the first failure matches or it does not.
        return (
            self.table.n_tests
            if self._rows[fault_index] == self.encode_response(signatures)
            else 0
        )
