"""The full fault dictionary: complete output vectors for every (fault, test).

Provides the highest possible diagnostic resolution for a given test set —
every pair the test set can distinguish at all is distinguished — at
``k * n * m`` bits of storage.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..kernels import get_backend
from ..sim.responses import ResponseTable, Signature
from .base import FaultDictionary


class FullDictionary(FaultDictionary):
    """Stores the complete response row of every fault."""

    def __init__(self, table: ResponseTable) -> None:
        super().__init__(table)
        self._rows: List[Tuple[Signature, ...]] = [
            table.full_row(index) for index in range(table.n_faults)
        ]

    @property
    def kind(self) -> str:
        return "full"

    @property
    def size_bits(self) -> int:
        return self.table.n_tests * self.table.n_faults * self.table.n_outputs

    def indistinguished_pairs(self) -> int:
        return get_backend().full_indistinguished(self.table)

    def row(self, fault_index: int) -> Tuple[Signature, ...]:
        return self._rows[fault_index]

    def encode_response(self, signatures: Sequence[Signature]) -> Tuple[Signature, ...]:
        if len(signatures) != self.table.n_tests:
            raise ValueError(
                f"response has {len(signatures)} tests, dictionary has {self.table.n_tests}"
            )
        return tuple(tuple(s) for s in signatures)

    def match_score(self, fault_index: int, signatures: Sequence[Signature]) -> int:
        row = self._rows[fault_index]
        return sum(1 for j, sig in enumerate(signatures) if row[j] == tuple(sig))
