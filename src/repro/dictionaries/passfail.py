"""The pass/fail fault dictionary.

One bit per (fault, test): 1 when the test detects the fault, i.e. when the
faulty response differs from the *fault-free* response.  ``k * n`` bits.
This is the baseline the same/different dictionary improves on.
"""

from __future__ import annotations

from typing import List, Sequence

from ..kernels import get_backend
from ..sim.responses import PASS, ResponseTable, Signature
from .base import FaultDictionary


class PassFailDictionary(FaultDictionary):
    """Stores each fault's detection word (bit ``j`` = detected by test ``j``)."""

    def __init__(self, table: ResponseTable) -> None:
        super().__init__(table)
        self._rows: List[int] = [
            table.detection_word(index) for index in range(table.n_faults)
        ]

    @property
    def kind(self) -> str:
        return "pass/fail"

    @property
    def size_bits(self) -> int:
        return self.table.n_tests * self.table.n_faults

    def indistinguished_pairs(self) -> int:
        return get_backend().passfail_indistinguished(self.table)

    def row(self, fault_index: int) -> int:
        return self._rows[fault_index]

    def encode_response(self, signatures: Sequence[Signature]) -> int:
        if len(signatures) != self.table.n_tests:
            raise ValueError(
                f"response has {len(signatures)} tests, dictionary has {self.table.n_tests}"
            )
        word = 0
        for j, sig in enumerate(signatures):
            if tuple(sig) != PASS:
                word |= 1 << j
        return word

    def match_score(self, fault_index: int, signatures: Sequence[Signature]) -> int:
        disagree = bin(self._rows[fault_index] ^ self.encode_response(signatures))
        return self.table.n_tests - disagree.count("1")
