"""Deprecated home of the partition math — moved to :mod:`repro.partition`.

Everything this module used to define lives in :mod:`repro.partition.core`
now (one canonical home for pair arithmetic and the refinement engine);
``Partition`` is an alias of :class:`repro.partition.FaultPartition`.
Importing the names through this module keeps working but emits a
:class:`DeprecationWarning` — update imports to ``repro.partition``.
"""

from __future__ import annotations

import warnings

_MOVED = (
    "Partition",
    "indistinguished_after_split",
    "indistinguished_pairs",
    "pairs_within",
    "partition_by_key",
    "refine",
    "total_pairs",
    "FaultPartition",
    "rows_indistinguished",
)

__all__ = list(_MOVED)


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.dictionaries.resolution.{name} moved to repro.partition; "
            "update the import (this shim will be removed)",
            DeprecationWarning,
            stacklevel=2,
        )
        import repro.partition as partition

        return getattr(partition, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
