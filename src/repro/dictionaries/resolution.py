"""Diagnostic-resolution accounting via partition refinement.

The set ``P`` of still-indistinguished fault pairs maintained by the
paper's procedures is never materialised: two faults remain in ``P``
exactly when their dictionary rows so far are identical, so ``P`` is the
set of within-class pairs of a partition of the faults.  All pair counts
(``dist(z)``, indistinguished totals) are computed from class sizes in
O(faults) instead of O(pairs).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence


def pairs_within(size: int) -> int:
    """Number of unordered pairs inside one class: C(size, 2)."""
    return size * (size - 1) // 2


def indistinguished_pairs(partition: Iterable[Sequence[int]]) -> int:
    """Total within-class pairs of a partition (the paper's indistinguished count)."""
    return sum(pairs_within(len(members)) for members in partition)


def total_pairs(n_faults: int) -> int:
    """All unordered fault pairs C(n, 2) — the initial size of ``P``."""
    return pairs_within(n_faults)


def indistinguished_after_split(
    counts: Sequence[tuple], class_sizes: Sequence[int], base: int
) -> int:
    """Indistinguished pairs when classes split by a candidate's counts.

    ``base`` is the indistinguished count with no split anywhere; a class
    of size ``s`` with ``a`` members matching the candidate contributes
    ``C(a,2) + C(s-a,2)`` instead of ``C(s,2)``.  ``counts`` lists
    ``(class_id, a)`` pairs for the classes the candidate touches.
    """
    indist = base
    for cid, a in counts:
        size = class_sizes[cid]
        indist += pairs_within(a) + pairs_within(size - a) - pairs_within(size)
    return indist


def partition_by_key(indices: Sequence[int], key) -> List[List[int]]:
    """Group ``indices`` by ``key(index)``, preserving first-seen order."""
    groups: Dict[Hashable, List[int]] = {}
    for index in indices:
        groups.setdefault(key(index), []).append(index)
    return list(groups.values())


def refine(partition: Sequence[Sequence[int]], key) -> List[List[int]]:
    """Split every class of ``partition`` by ``key``; singletons pass through."""
    refined: List[List[int]] = []
    for members in partition:
        if len(members) == 1:
            refined.append(list(members))
        else:
            refined.extend(partition_by_key(members, key))
    return refined


class Partition:
    """A mutable partition of fault indices with O(1) class lookup.

    Used by the baseline-selection procedures: ``class_of[i]`` gives the
    class id of fault ``i`` and ``classes[cid]`` its member list.  Split
    classes keep their surviving members under the old id; the split-off
    part gets a fresh id, so ids are stable enough to use as dict keys
    within one operation.
    """

    def __init__(self, indices: Sequence[int]) -> None:
        self.classes: List[List[int]] = [list(indices)]
        self.class_of: Dict[int, int] = {i: 0 for i in indices}

    @classmethod
    def from_groups(cls, groups: Sequence[Sequence[int]]) -> "Partition":
        partition = cls([])
        partition.classes = [list(g) for g in groups]
        partition.class_of = {
            i: cid for cid, members in enumerate(partition.classes) for i in members
        }
        return partition

    @property
    def n_indices(self) -> int:
        return len(self.class_of)

    def indistinguished(self) -> int:
        return indistinguished_pairs(self.classes)

    def distinguished(self) -> int:
        return total_pairs(self.n_indices) - self.indistinguished()

    def nontrivial_classes(self) -> List[List[int]]:
        return [members for members in self.classes if len(members) > 1]

    def split(self, inside: Iterable[int]) -> int:
        """Split every class into (members in ``inside``) / (the rest).

        Returns the number of pairs distinguished by the split, i.e. the
        decrease of :meth:`indistinguished`.
        """
        inside_by_class: Dict[int, List[int]] = {}
        for index in inside:
            inside_by_class.setdefault(self.class_of[index], []).append(index)
        distinguished = 0
        for cid, moved in inside_by_class.items():
            members = self.classes[cid]
            if len(moved) == len(members):
                continue
            distinguished += len(moved) * (len(members) - len(moved))
            moved_set = set(moved)
            remaining = [i for i in members if i not in moved_set]
            self.classes[cid] = remaining
            new_cid = len(self.classes)
            self.classes.append(moved)
            for index in moved:
                self.class_of[index] = new_cid
        return distinguished

    def copy(self) -> "Partition":
        clone = Partition([])
        clone.classes = [list(members) for members in self.classes]
        clone.class_of = dict(self.class_of)
        return clone
