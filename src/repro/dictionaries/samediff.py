"""The same/different fault dictionary (the paper's contribution).

Like a pass/fail dictionary it stores one bit per (fault, test), but the
bit compares the faulty response against a freely chosen *baseline* output
vector ``z_bl,j`` instead of the fault-free response: ``b[i][j] = 0`` iff
``z_i,j == z_bl,j``.  Baselines are chosen per test from the set ``Z_j`` of
responses modelled faults can actually produce (any other choice makes the
test useless for diagnosis).

This module implements:

* **Procedure 1** (:func:`select_baselines`): greedy per-test selection of
  the candidate distinguishing the most target pairs, with the ``LOWER``
  early-termination heuristic;
* the **random-restart driver** (:func:`build_same_different`): Procedure 1
  re-run over shuffled test orders until ``calls`` consecutive calls bring
  no improvement (the paper's ``CALLS1``); restarts derive their test
  orders from per-restart seed streams (:mod:`repro.parallel.seeds`) and
  can fan out over worker processes with ``jobs > 1``, byte-identically
  to the serial path;
* **Procedure 2** (:func:`replace_baselines`): a hill-climbing pass that
  tries every alternative baseline for every test against the *global*
  distinguished-pair count;
* the paper's two remarks as working extensions: more than one baseline
  per test (:func:`add_secondary_baselines`) and the mixed storage scheme
  that keeps the fault-free vector where the baseline equals it
  (:meth:`SameDifferentDictionary.mixed_size_bits`).

The inner loops are delegated to a pluggable kernel backend
(:mod:`repro.kernels`): ``naive`` is the reference code kept in this
module, ``packed`` the interned-column fast path.  Both are bit-identical;
the backend only changes how long a build takes.

The loose-kwarg shapes of :func:`build_same_different`,
:func:`select_baselines` and :func:`replace_baselines` are deprecated in
favour of :func:`repro.api.build` with a
:class:`~repro.api.DictionaryConfig`; they warn but keep working.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..kernels import Procedure1Run, get_backend
from ..obs import NullProgress, ProgressReporter, get_default_registry, trace_span
from ..partition import (
    FaultPartition,
    indistinguished_after_split,
    pairs_within,
    rows_indistinguished,
    total_pairs,
)
from ..sim.responses import PASS, ResponseTable, Signature
from .base import FaultDictionary

#: The selection procedures refine this partition engine in place; the
#: name survives from when the class lived in ``dictionaries.resolution``.
Partition = FaultPartition


class SameDifferentDictionary(FaultDictionary):
    """A same/different dictionary for a fixed baseline assignment."""

    def __init__(self, table: ResponseTable, baselines: Sequence[Signature]) -> None:
        super().__init__(table)
        if len(baselines) != table.n_tests:
            raise ValueError(
                f"{len(baselines)} baselines for {table.n_tests} tests"
            )
        self.baselines: Tuple[Signature, ...] = tuple(tuple(b) for b in baselines)
        self._rows: List[int] = [
            self._encode_row(index) for index in range(table.n_faults)
        ]

    def _encode_row(self, fault_index: int) -> int:
        word = 0
        for j, baseline in enumerate(self.baselines):
            if self.table.signature(fault_index, j) != baseline:
                word |= 1 << j
        return word

    @property
    def kind(self) -> str:
        return "same/different"

    @property
    def size_bits(self) -> int:
        """``k * (n + m)``: the bit matrix plus one baseline vector per test."""
        return self.table.n_tests * (self.table.n_faults + self.table.n_outputs)

    def mixed_size_bits(self) -> int:
        """Size under the paper's mixed storage remark.

        Tests whose baseline *is* the fault-free vector reuse the stored
        fault-free response instead of a private baseline vector, at the
        cost of one flag bit per test.
        """
        stored = sum(1 for baseline in self.baselines if baseline != PASS)
        return (
            self.table.n_tests * (self.table.n_faults + 1)
            + stored * self.table.n_outputs
        )

    def row(self, fault_index: int) -> int:
        return self._rows[fault_index]

    def encode_response(self, signatures: Sequence[Signature]) -> int:
        if len(signatures) != self.table.n_tests:
            raise ValueError(
                f"response has {len(signatures)} tests, dictionary has {self.table.n_tests}"
            )
        word = 0
        for j, sig in enumerate(signatures):
            if tuple(sig) != self.baselines[j]:
                word |= 1 << j
        return word

    def match_score(self, fault_index: int, signatures: Sequence[Signature]) -> int:
        disagree = bin(self._rows[fault_index] ^ self.encode_response(signatures))
        return self.table.n_tests - disagree.count("1")

    def ranked_candidates(self, signatures: Sequence[Signature], limit: int = 10):
        # Encode the observed response once and score every row against
        # that word — the base implementation would re-encode per fault,
        # which dominates the serve layer's warm-path lookup cost.
        from .base import ScoredCandidate

        observed = self.encode_response(signatures)
        n_tests = self.table.n_tests
        scored = [
            ScoredCandidate(index, n_tests - bin(row ^ observed).count("1"))
            for index, row in enumerate(self._rows)
        ]
        scored.sort(key=lambda c: (-c.score, c.fault_index))
        return scored[:limit]

    def baseline_vector(self, test_index: int) -> str:
        """The stored baseline output vector of one test, as a bit string."""
        return self.table.signature_to_vector(self.baselines[test_index], test_index)


@dataclass
class BuildReport:
    """Statistics of one same/different construction run."""

    n_faults: int
    #: Distinguished pairs after the best Procedure 1 run (paper's "s/d rand").
    distinguished_procedure1: int = 0
    #: Distinguished pairs after Procedure 2 (paper's "s/d repl").
    distinguished_procedure2: int = 0
    #: Logical Procedure 1 restarts folded into the result — identical for
    #: serial and parallel builds of the same seed (speculative restarts a
    #: parallel schedule computed and discarded are *not* counted here;
    #: see the ``parallel.*`` metrics).
    procedure1_calls: int = 0
    procedure2_passes: int = 0
    replacements: int = 0
    #: Wall-clock seconds of the restart loop (all Procedure 1 calls).
    procedure1_seconds: float = 0.0
    #: Wall-clock seconds of Procedure 2 (0.0 when it did not run).
    procedure2_seconds: float = 0.0
    #: Worker processes the restart loop ran on (1 = serial).
    jobs: int = 1
    #: Speculative batches a parallel schedule submitted (0 when serial).
    batches: int = 0
    #: Partition classes (groups of mutually indistinguished faults) after
    #: the best Procedure 1 run / after Procedure 2 — the class-count
    #: trajectory alongside the pair counts.  ``n_faults`` means fully
    #: distinguished; 0 on degenerate tables with nothing to partition.
    classes_after_procedure1: int = 0
    classes_after_procedure2: int = 0

    #: Fields added by schema 3; schemas 1 and 2 drop them.
    _SCHEMA3_FIELDS = ("classes_after_procedure1", "classes_after_procedure2")

    def as_dict(self, schema: int = 3) -> Dict[str, object]:
        """All fields plus the derived counts, for JSON export.

        ``schema=3`` (the default) carries the class-count trajectory and
        a ``"schema": 3`` marker so ``--metrics-out`` consumers can detect
        the layout; ``schema=2`` reproduces the pre-partition-core shape
        (no class counts, marker 2) and ``schema=1`` the pre-kernel shape
        (same keys as 2, no marker).
        """
        if schema not in (1, 2, 3):
            raise ValueError(
                f"unknown BuildReport schema {schema!r} (supported: 1, 2, 3)"
            )
        data = asdict(self)
        data["indistinguished_procedure1"] = self.indistinguished_procedure1
        data["indistinguished_procedure2"] = self.indistinguished_procedure2
        data["procedure2_improved"] = self.procedure2_improved
        if schema < 3:
            for name in self._SCHEMA3_FIELDS:
                del data[name]
        if schema >= 2:
            data["schema"] = schema
        return data

    @property
    def indistinguished_procedure1(self) -> int:
        return total_pairs(self.n_faults) - self.distinguished_procedure1

    @property
    def indistinguished_procedure2(self) -> int:
        return total_pairs(self.n_faults) - self.distinguished_procedure2

    @property
    def procedure2_improved(self) -> bool:
        return self.distinguished_procedure2 > self.distinguished_procedure1


# ----------------------------------------------------------------------
# deprecation plumbing for the loose-kwarg entry points
# ----------------------------------------------------------------------
def _warn_loose_kwargs(func_name: str, names: Sequence[str]) -> None:
    warnings.warn(
        f"passing {', '.join(names)} to {func_name} directly is deprecated; "
        "use repro.api.build with a DictionaryConfig (or pass config=...) "
        "instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _reject_config_conflict(func_name: str, names: Sequence[str]) -> None:
    raise ValueError(
        f"{func_name}: pass {', '.join(names)} through the DictionaryConfig, "
        "not alongside config="
    )


# ----------------------------------------------------------------------
# Procedure 1
# ----------------------------------------------------------------------
def _candidate_distances(
    table: ResponseTable, test_index: int, partition: Partition
) -> List[Tuple[int, Signature, List[int]]]:
    """(dist, signature, members) per candidate of ``Z_j``, in ``Z_j`` order.

    ``dist(z)`` is the number of still-indistinguished pairs split by
    ``z``: for each partition class ``c`` with ``a`` members responding
    ``z``, the split separates ``a * (|c| - a)`` pairs.  The fault-free
    candidate comes first, its member list given as the *detected* faults
    (splitting on the complement is the same split).

    This is the ``naive`` reference scoring; the ``packed`` backend
    reproduces it from interned columns (see :mod:`repro.kernels`).
    """
    classes = partition.classes
    class_of = partition.class_of
    groups = table.failing_groups(test_index)
    signatures = table.failing_signatures(test_index)

    detected_by_class: Dict[int, int] = {}
    for group in groups:
        for index in group:
            cid = class_of[index]
            detected_by_class[cid] = detected_by_class.get(cid, 0) + 1
    pass_dist = sum(
        count * (len(classes[cid]) - count)
        for cid, count in detected_by_class.items()
    )
    detected = [index for group in groups for index in group]
    candidates = [(pass_dist, PASS, detected)]

    for signature, group in zip(signatures, groups):
        counts: Dict[int, int] = {}
        for index in group:
            cid = class_of[index]
            counts[cid] = counts.get(cid, 0) + 1
        dist = sum(
            count * (len(classes[cid]) - count) for cid, count in counts.items()
        )
        candidates.append((dist, signature, group))
    return candidates


def _refine_scores(
    table: ResponseTable, test_index: int, partition: FaultPartition
) -> List[int]:
    """``dist`` per candidate id of ``Z_j`` (0 = fault-free), class-major.

    One pass over the live classes scores every candidate at once: a
    class of size ``s`` with ``a`` members responding ``z`` contributes
    ``a * (s - a)`` to ``dist(z)`` — including the fault-free candidate,
    whose ``a`` is the class's pass count.  The values equal the dists
    of :func:`_candidate_distances` entry for entry; this is the
    refinement-delta scoring the selection loop drives, with no member
    lists materialised for losing candidates.
    """
    signatures = table.failing_signatures(test_index)
    ids = {sig: sid for sid, sig in enumerate(signatures, 1)}
    dist = [0] * (len(signatures) + 1)
    for members in partition.classes:
        s = len(members)
        if s < 2:
            continue
        counts: Dict[Signature, int] = {}
        for i in members:
            sig = table.signature(i, test_index)
            if sig != PASS:
                counts[sig] = counts.get(sig, 0) + 1
        failing = 0
        for sig, a in counts.items():
            failing += a
            dist[ids[sig]] += a * (s - a)
        if failing:
            dist[0] += failing * (s - failing)
    return dist


def _candidate_members(
    table: ResponseTable, test_index: int, candidate_index: int
) -> List[int]:
    """Member list of candidate ``candidate_index`` of ``Z_j`` (0 = fault-free)."""
    if candidate_index == 0:
        return table.detected_indices(test_index)
    return table.failing_groups(test_index)[candidate_index - 1]


def _replay_partition(
    table: ResponseTable, winners: Sequence[Tuple[int, int]]
) -> Partition:
    """Rebuild the Procedure 1 partition from recorded (test, candidate) wins.

    Splitting on the same member lists in the same order reproduces the
    reference partition exactly — including class order — so backends
    whose internal partition bookkeeping differs (the packed kernel) can
    still hand callers the canonical object.
    """
    partition = Partition(range(table.n_faults))
    for test_index, candidate_index in winners:
        partition.split(_candidate_members(table, test_index, candidate_index))
    return partition


def _select_into_partition(
    table: ResponseTable,
    order: Sequence[int],
    lower: int,
    partition: FaultPartition,
    timings: Optional[Dict[str, float]] = None,
) -> Procedure1Run:
    """The reference Procedure 1 loop, refining ``partition`` in place.

    Each test is scored by one class-major :func:`_refine_scores` pass;
    the winner's split is then applied as a refinement delta
    (:meth:`~repro.partition.FaultPartition.split` returns the
    distinguished-pair decrease).  Selection semantics — first maximum
    wins, ``LOWER`` consecutive non-improvements cut off — are the
    paper's, byte-identical to the pre-refactor per-candidate walk.
    """
    baselines: List[Signature] = [PASS] * table.n_tests
    distinguished = 0
    evaluated = 0
    cutoffs = 0
    winners: List[Tuple[int, int]] = []
    for j in order:
        if timings is not None:
            t0 = time.perf_counter()
            dist = _refine_scores(table, j, partition)
            timings["scoring"] = timings.get("scoring", 0.0) + (
                time.perf_counter() - t0
            )
        else:
            dist = _refine_scores(table, j, partition)
        best_dist = -1
        best_index = 0
        consecutive_lower = 0
        for index, d in enumerate(dist):
            evaluated += 1
            if d > best_dist:
                best_dist = d
                best_index = index
                consecutive_lower = 0
            elif d < best_dist:
                consecutive_lower += 1
                if consecutive_lower >= lower:
                    cutoffs += 1
                    break
        baselines[j] = (
            PASS
            if best_index == 0
            else table.failing_signatures(j)[best_index - 1]
        )
        if best_dist > 0:
            winners.append((j, best_index))
            distinguished += partition.split(_candidate_members(table, j, best_index))
    return Procedure1Run(
        baselines, distinguished, evaluated, cutoffs, winners, partition
    )


def _flush_procedure1(run: Procedure1Run) -> None:
    """One metrics flush per Procedure 1 call, identical for every backend."""
    registry = get_default_registry()
    registry.counter("procedure1.calls").inc()
    registry.counter("procedure1.candidates_evaluated").inc(run.evaluated)
    registry.counter("procedure1.lower_cutoffs").inc(run.cutoffs)
    registry.counter("procedure1.pairs_distinguished").inc(run.distinguished)


def _procedure1_call(
    table: ResponseTable, order: Sequence[int], lower: int, backend
) -> Procedure1Run:
    """One restart on the hot path: backend kernel plus the metrics flush.

    The partition is *not* materialised here — the restart fold only
    consumes ``(distinguished, baselines)``.  Callers that need the
    partition replay ``run.winners`` (see :func:`select_baselines`).
    """
    run = backend.procedure1(table, order, lower)
    _flush_procedure1(run)
    return run


def select_baselines(
    table: ResponseTable,
    order: Optional[Sequence[int]] = None,
    lower: Optional[int] = None,
    partition: Optional[Partition] = None,
    *,
    config=None,
) -> Tuple[List[Signature], Partition, int]:
    """Procedure 1: greedy baseline selection over one test order.

    Returns the baselines (indexed by *test*, not by order position), the
    final partition of fault indices, and the distinguished-pair count.
    ``lower`` is the paper's ``LOWER`` constant: candidate evaluation for a
    test stops after that many consecutive candidates fail to beat the
    best ``dist`` seen so far.

    .. deprecated:: passing ``lower`` directly.  Use ``config=`` with a
       :class:`~repro.api.DictionaryConfig` (or :func:`repro.api.build`);
       the loose kwarg emits a :class:`DeprecationWarning`.
    """
    if lower is not None:
        if config is not None:
            _reject_config_conflict("select_baselines", ["lower"])
        _warn_loose_kwargs("select_baselines", ["lower"])
    resolved_lower = (
        lower
        if lower is not None
        else (config.lower if config is not None else 10)
    )
    backend = get_backend(config.backend if config is not None else None)
    if order is None:
        order = range(table.n_tests)
    if partition is not None:
        # A caller-seeded partition must be refined in place; only the
        # reference loop has those semantics.
        run = _select_into_partition(table, order, resolved_lower, partition)
    else:
        run = backend.procedure1(table, order, resolved_lower)
        if run.partition is None:
            run.partition = _replay_partition(table, run.winners)
    _flush_procedure1(run)
    return run.baselines, run.partition, run.distinguished


def build_same_different(
    table: ResponseTable,
    lower: Optional[int] = None,
    calls: Optional[int] = None,
    replace: Optional[bool] = None,
    seed: Optional[int] = None,
    progress: Optional[ProgressReporter] = None,
    jobs: Optional[int] = None,
    *,
    config=None,
) -> Tuple[SameDifferentDictionary, BuildReport]:
    """The paper's full flow: restarted Procedure 1, then Procedure 2.

    Thin delegate of the :func:`repro.api.build` facade.  The loose tuning
    kwargs (``lower``, ``calls``, ``replace``, ``seed``, ``jobs``) are
    deprecated — pass a :class:`~repro.api.DictionaryConfig` via
    ``config=`` (or call :func:`repro.api.build` directly); the old shape
    still works but emits a :class:`DeprecationWarning`.

    See :func:`_build_impl` for the construction semantics.
    """
    loose = (
        ("lower", lower),
        ("calls", calls),
        ("replace", replace),
        ("seed", seed),
        ("jobs", jobs),
    )
    passed = [name for name, value in loose if value is not None]
    if passed:
        if config is not None:
            _reject_config_conflict("build_same_different", passed)
        _warn_loose_kwargs("build_same_different", passed)
    if config is None:
        from ..api import DictionaryConfig

        config = DictionaryConfig(
            seed=seed if seed is not None else 0,
            calls1=calls if calls is not None else 100,
            lower=lower if lower is not None else 10,
            jobs=jobs if jobs is not None else 1,
            procedure2=replace if replace is not None else True,
        )
    return _build_impl(table, config, progress)


def _build_impl(
    table: ResponseTable,
    config,
    progress: Optional[ProgressReporter] = None,
    checkpoint=None,
) -> Tuple[SameDifferentDictionary, BuildReport]:
    """The construction engine behind :func:`repro.api.build`.

    Procedure 1 runs first on the natural test order, then on random
    shuffles, until ``calls1`` consecutive runs fail to improve the
    distinguished-pair count (``CALLS1``).  Restarts also stop early when
    a run distinguishes every pair that remains distinguishable.  With
    ``procedure2`` the best baselines then go through Procedure 2.

    ``jobs > 1`` evaluates restarts on that many worker processes via
    :class:`~repro.parallel.scheduler.RestartScheduler`; every restart's
    test order is derived from a per-restart seed stream, so any ``jobs``
    value yields byte-identical baselines and counts for the same
    ``seed``.  The result additionally never falls below the pass/fail
    dictionary: the restart fold is seeded with the all-PASS assignment.

    Degenerate tables (``n_tests == 0`` or ``n_faults < 2``) have nothing
    to select or distinguish; they return an all-PASS dictionary without
    running any restart.

    ``progress`` receives one event per folded restart (stage
    ``"build.procedure1"``, with the stale streak, current best and an
    ETA) and one around Procedure 2.

    ``checkpoint``, when a bound
    :class:`~repro.store.checkpoint.CheckpointSession` is passed, is
    observed after every folded restart (writing ``RFDC`` snapshots) and,
    if it carries resume state from a killed build, restores the restart
    fold before any restart runs — the serial loop and the parallel
    scheduler both continue from ``fold.calls_made``, the checkpoint's
    seed-stream position, so the resumed build is byte-identical to an
    uninterrupted one.
    """
    # Imported here, not at module level: repro.parallel's worker imports
    # this module, and a top-level import back would cycle.
    from ..parallel.scheduler import RestartFold, RestartScheduler
    from ..parallel.seeds import restart_order

    calls = config.calls1
    jobs = config.jobs
    lower = config.lower
    seed = config.seed
    if calls < 1:
        raise ValueError(f"calls (CALLS1) must be >= 1, got {calls}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    backend = get_backend(config.backend)
    registry = get_default_registry()
    progress = progress if progress is not None else NullProgress()
    report = BuildReport(n_faults=table.n_faults, jobs=jobs)

    if table.n_tests == 0 or table.n_faults < 2:
        # No test to pick a baseline for, or no pair to distinguish.
        return SameDifferentDictionary(table, [PASS] * table.n_tests), report

    # Materialise the backend's cached view (interned columns, word-array
    # layout, …) now: outside the per-phase timers, and before a parallel
    # build pickles the table to its workers — derived layouts ship with
    # it instead of being re-derived in every worker process.
    backend.prepare(table)

    ceiling = total_pairs(table.n_faults) - backend.full_indistinguished(table)
    floor_baselines: List[Signature] = [PASS] * table.n_tests
    floor_distinguished = total_pairs(table.n_faults) - backend.indistinguished_for(
        table, floor_baselines
    )
    fold = RestartFold(
        calls=calls,
        ceiling=ceiling,
        baselines=floor_baselines,
        distinguished=floor_distinguished,
        progress=progress,
        observer=checkpoint.on_fold if checkpoint is not None else None,
    )
    if checkpoint is not None:
        checkpoint.bind(table)
        if checkpoint.restore_into(fold):
            progress.report(
                "build.resume",
                fold.calls_made,
                stale=fold.stale,
                best=fold.best_distinguished,
            )
    with registry.timer("build.procedure1_seconds").time() as phase1:
        with trace_span("build.procedure1", calls=calls, lower=lower, jobs=jobs):
            if jobs > 1:
                outcome = RestartScheduler(
                    table, lower=lower, seed=seed, jobs=jobs, backend=backend.name
                ).run(fold)
                report.batches = outcome.batches
            else:
                from ..parallel.hierarchy import (
                    FaultBlockPlan,
                    fault_blocks_from_env,
                    sharded_procedure1,
                )

                blocks = fault_blocks_from_env()
                plan = (
                    FaultBlockPlan(table.n_faults, blocks)
                    if blocks >= 2
                    else None
                )
                restart = fold.calls_made
                while not fold.done:
                    order = restart_order(seed, restart, table.n_tests)
                    with trace_span("procedure1.call", restart=restart):
                        if plan is not None:
                            # $REPRO_FAULT_BLOCKS: score through the
                            # level-1 block fold (byte-identical).
                            run = sharded_procedure1(table, order, lower, plan)
                            _flush_procedure1(run)
                        else:
                            run = _procedure1_call(table, order, lower, backend)
                    fold.consume(run.distinguished, run.baselines)
                    restart += 1
    best_baselines = fold.best_baselines
    best_distinguished = fold.best_distinguished
    report.procedure1_calls = fold.calls_made
    report.procedure1_seconds = phase1.elapsed
    report.distinguished_procedure1 = best_distinguished
    report.distinguished_procedure2 = best_distinguished
    report.classes_after_procedure1 = _classes_under(table, best_baselines)
    report.classes_after_procedure2 = report.classes_after_procedure1
    registry.counter("build.restarts").inc(report.procedure1_calls)
    registry.gauge("build.stale_streak").set(fold.stale)

    if config.procedure2 and best_distinguished < ceiling:
        with registry.timer("build.procedure2_seconds").time() as phase2:
            with trace_span("build.procedure2"):
                best_baselines, improved, passes, replacements = _replace_with(
                    backend, table, best_baselines, 10
                )
        report.procedure2_seconds = phase2.elapsed
        report.distinguished_procedure2 = improved
        report.procedure2_passes = passes
        report.replacements = replacements
        report.classes_after_procedure2 = _classes_under(table, best_baselines)
        progress.report("build.procedure2", passes, replacements=replacements)
    if checkpoint is not None:
        checkpoint.complete()
    return SameDifferentDictionary(table, best_baselines), report


def _partition_under(
    table: ResponseTable, baselines: Sequence[Signature]
) -> FaultPartition:
    """The fault partition (distinct same/different rows) under ``baselines``.

    One binary refinement per test — same as the baseline vs different —
    with an early exit once every class is a singleton.  Uses the interned
    columns when the table carries them (baseline -> id lookup, so each
    refinement walks int columns); falls back to signature comparison.
    This is the class-based pair state the ``RFDC`` checkpoint layer
    snapshots.
    """
    n = table.n_faults
    partition = FaultPartition(range(n))
    interned = table._interned
    for j, baseline in enumerate(baselines):
        if partition.all_singletons:
            break
        b = tuple(baseline)
        if interned is not None:
            bid = interned.sig_ids[j].get(b)
            if bid is None:
                # Baseline outside Z_j: every fault differs, no split.
                continue
            partition.refine(interned.cols[j], value=bid)
        else:
            partition.split([i for i in range(n) if table.signature(i, j) == b])
    return partition


def _classes_under(table: ResponseTable, baselines: Sequence[Signature]) -> int:
    """Partition-class count (distinct rows) under ``baselines``."""
    if table.n_faults == 0:
        return 0
    return _partition_under(table, baselines).n_classes


def _full_dictionary_distinguished(table: ResponseTable) -> int:
    """Pairs distinguished by the full dictionary — the attainable ceiling."""
    groups: Dict[tuple, int] = {}
    for index in range(table.n_faults):
        row = table.full_row(index)
        groups[row] = groups.get(row, 0) + 1
    return total_pairs(table.n_faults) - sum(
        pairs_within(count) for count in groups.values()
    )


# ----------------------------------------------------------------------
# Procedure 2
# ----------------------------------------------------------------------
def replace_baselines(
    table: ResponseTable,
    baselines: Sequence[Signature],
    max_passes: Optional[int] = None,
    *,
    config=None,
) -> Tuple[List[Signature], int, int, int]:
    """Procedure 2: hill-climb individual baselines against the global count.

    Returns ``(baselines, distinguished, passes, replacements)``.  See
    :func:`_replace_naive` for the exact semantics.

    .. deprecated:: passing ``max_passes`` without ``config=``.  Use
       :func:`repro.api.build` (which runs Procedure 2 as part of the
       flow) or pass a :class:`~repro.api.DictionaryConfig` alongside;
       the bare loose kwarg emits a :class:`DeprecationWarning`.
    """
    if max_passes is not None and config is None:
        _warn_loose_kwargs("replace_baselines", ["max_passes"])
    backend = get_backend(config.backend if config is not None else None)
    resolved = max_passes if max_passes is not None else 10
    return _replace_with(backend, table, baselines, resolved)


def _replace_with(
    backend, table: ResponseTable, baselines: Sequence[Signature], max_passes: int
) -> Tuple[List[Signature], int, int, int]:
    """Run a backend's Procedure 2 kernel and flush its metrics."""
    current, distinguished, passes, replacements, attempts = backend.replace(
        table, baselines, max_passes
    )
    registry = get_default_registry()
    registry.counter("procedure2.passes").inc(passes)
    registry.counter("procedure2.attempts").inc(attempts)
    registry.counter("procedure2.replacements").inc(replacements)
    return current, distinguished, passes, replacements


def _replace_naive(
    table: ResponseTable,
    baselines: Sequence[Signature],
    max_passes: int,
) -> Tuple[List[Signature], int, int, int, int]:
    """The reference Procedure 2 hill-climb (metrics-free kernel).

    For every test ``j`` and every candidate ``z`` in ``Z_j``, the global
    number of distinguished pairs with ``z_bl,j = z`` is evaluated exactly:
    faults are grouped by their rows *excluding* test ``j`` (one mask
    operation per fault), and within each such group by their response to
    ``t_j``; the candidate determines how every group splits.  Replacements
    are kept when they strictly increase the count; passes repeat until a
    fixpoint or ``max_passes``.

    Returns ``(baselines, distinguished, passes, replacements, attempts)``.
    """
    k = table.n_tests
    n = table.n_faults
    current: List[Signature] = [tuple(b) for b in baselines]
    rows: List[int] = _rows_for(table, current)
    replacements = 0
    passes = 0
    attempts = 0
    for _ in range(max_passes):
        passes += 1
        improved = False
        for j in range(k):
            mask = ((1 << k) - 1) ^ (1 << j)
            outside: Dict[int, List[int]] = {}
            for index in range(n):
                outside.setdefault(rows[index] & mask, []).append(index)
            # Within each outside-class, count members per response to t_j.
            class_sizes: List[int] = []
            per_signature: Dict[Signature, List[Tuple[int, int]]] = {}
            base_indist = 0
            for cid, members in enumerate(outside.values()):
                size = len(members)
                class_sizes.append(size)
                base_indist += pairs_within(size)
                counts: Dict[Signature, int] = {}
                for index in members:
                    sig = table.signature(index, j)
                    if sig != PASS:
                        counts[sig] = counts.get(sig, 0) + 1
                for sig, count in counts.items():
                    per_signature.setdefault(sig, []).append((cid, count))
                pass_count = size - sum(counts.values())
                if pass_count:
                    per_signature.setdefault(PASS, []).append((cid, pass_count))
            best_sig = current[j]
            best_indist = indistinguished_after_split(
                per_signature.get(best_sig, ()), class_sizes, base_indist
            )
            for sig in [PASS] + table.failing_signatures(j):
                if sig == current[j]:
                    continue
                attempts += 1
                indist = indistinguished_after_split(
                    per_signature.get(sig, ()), class_sizes, base_indist
                )
                if indist < best_indist:
                    best_indist = indist
                    best_sig = sig
            if best_sig != current[j]:
                improved = True
                replacements += 1
                current[j] = best_sig
                bit = 1 << j
                for index in range(n):
                    if table.signature(index, j) != best_sig:
                        rows[index] |= bit
                    else:
                        rows[index] &= mask
        if not improved:
            break
    distinguished = total_pairs(n) - rows_indistinguished(rows)
    return current, distinguished, passes, replacements, attempts


def _rows_for(table: ResponseTable, baselines: Sequence[Signature]) -> List[int]:
    rows = [0] * table.n_faults
    for index in range(table.n_faults):
        word = 0
        for j, baseline in enumerate(baselines):
            if table.signature(index, j) != baseline:
                word |= 1 << j
        rows[index] = word
    return rows


#: Deprecated helpers whose canonical homes are in :mod:`repro.partition`;
#: importing them still works through the module ``__getattr__`` below.
_MOVED_HELPERS = {
    "_partition_indistinguished": "rows_indistinguished",
    "_indistinguished_with": "indistinguished_after_split",
}


def __getattr__(name: str):
    if name in _MOVED_HELPERS:
        canonical = _MOVED_HELPERS[name]
        warnings.warn(
            f"repro.dictionaries.samediff.{name} is deprecated; use "
            f"repro.partition.{canonical} (the consolidated pair math)",
            DeprecationWarning,
            stacklevel=2,
        )
        import repro.partition as partition_module

        return getattr(partition_module, canonical)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# ----------------------------------------------------------------------
# Extension: several baselines per test (Section 2 remark)
# ----------------------------------------------------------------------
@dataclass
class MultiBaselineDictionary:
    """A same/different dictionary with ``b_j >= 1`` baselines per test.

    Each baseline of each test contributes one bit column (``n`` bits) and
    one stored vector (``m`` bits) — secondary baselines are charged
    exactly like the first one, so the size generalises the paper's
    ``k * (n + m)`` to ``sum_j b_j * (n + m)``.  Rows are tuples of
    per-test bit tuples.
    """

    table: ResponseTable
    baselines: Tuple[Tuple[Signature, ...], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(self.baselines) != self.table.n_tests:
            raise ValueError("one baseline tuple required per test")
        self._rows = [
            tuple(
                tuple(
                    int(self.table.signature(i, j) != baseline)
                    for baseline in self.baselines[j]
                )
                for j in range(self.table.n_tests)
            )
            for i in range(self.table.n_faults)
        ]

    @property
    def size_bits(self) -> int:
        n, m = self.table.n_faults, self.table.n_outputs
        return sum(len(per_test) * (n + m) for per_test in self.baselines)

    def mixed_size_bits(self) -> int:
        """Size under the mixed storage remark, generalised to ``b_j >= 1``.

        Every baseline column still costs ``n`` bits plus one flag bit,
        but only baselines that differ from the fault-free response store
        a private ``m``-bit vector — PASS baselines (primary *or*
        secondary) reuse the fault-free response.
        """
        n, m = self.table.n_faults, self.table.n_outputs
        columns = sum(len(per_test) for per_test in self.baselines)
        stored = sum(
            1
            for per_test in self.baselines
            for baseline in per_test
            if baseline != PASS
        )
        return columns * (n + 1) + stored * m

    def row(self, fault_index: int):
        return self._rows[fault_index]

    def indistinguished_pairs(self) -> int:
        groups: Dict[tuple, int] = {}
        for row in self._rows:
            groups[row] = groups.get(row, 0) + 1
        return sum(pairs_within(count) for count in groups.values())


def add_secondary_baselines(
    table: ResponseTable,
    dictionary: SameDifferentDictionary,
    extra_per_test: int = 1,
    lower: int = 10,
) -> MultiBaselineDictionary:
    """Greedily add up to ``extra_per_test`` more baselines to every test.

    Starting from a single-baseline dictionary, each round walks the tests
    in order and picks, per test, the candidate from ``Z_j`` that splits
    the most currently indistinguished pairs (skipping candidates already
    used by that test).  Tests where no candidate helps keep their
    baseline count.
    """
    backend = get_backend()
    per_test: List[List[Signature]] = [[b] for b in dictionary.baselines]
    partition = Partition.from_groups(dictionary.row_partition())
    for _ in range(extra_per_test):
        for j in range(table.n_tests):
            used = set(per_test[j])
            best = None
            best_dist = 0
            consecutive_lower = 0
            for dist, signature, members in backend.candidate_distances(
                table, j, partition
            ):
                if signature in used:
                    continue
                if dist > best_dist:
                    best_dist = dist
                    best = (signature, members)
                    consecutive_lower = 0
                elif dist < best_dist:
                    consecutive_lower += 1
                    if consecutive_lower >= lower:
                        break
            if best is not None and best_dist > 0:
                signature, members = best
                per_test[j].append(signature)
                partition.split(members)
    return MultiBaselineDictionary(table, tuple(tuple(b) for b in per_test))
