"""Bit-packed serialization of fault dictionaries.

The paper argues about dictionary *sizes in bits*; this module makes those
numbers concrete: each dictionary serialises to a byte blob whose payload
bit count equals the size model of Section 2 exactly (headers, fault names
and test vectors are shared catalogue data that every organisation needs
and are therefore excluded from the comparison, like the fault-free
response in the paper).

Formats
-------
* pass/fail: the ``k x n`` bit matrix, row-major per fault.
* same/different: the ``k x n`` bit matrix plus ``k`` baseline output
  vectors of ``m`` bits.
* full: ``k x n`` output vectors of ``m`` bits.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List

from ..sim.responses import ResponseTable, Signature
from .full import FullDictionary
from .passfail import PassFailDictionary
from .samediff import SameDifferentDictionary


class BitWriter:
    """Accumulates values LSB-first into a byte buffer.

    Whole bytes are flushed into a ``bytearray`` as soon as they are
    complete, so memory stays proportional to the packed *byte* count —
    the earlier per-bit ``List[int]`` accumulator cost ~28 bytes of list
    slot per payload bit, which dominated packing of large dictionaries.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._pending = 0
        self._pending_bits = 0

    def write(self, value: int, width: int) -> None:
        """Append the low ``width`` bits of ``value``."""
        self._pending |= (value & ((1 << width) - 1)) << self._pending_bits
        self._pending_bits += width
        if self._pending_bits >= 8:
            whole = self._pending_bits // 8
            self._buffer += (self._pending & ((1 << (whole * 8)) - 1)).to_bytes(
                whole, "little"
            )
            self._pending >>= whole * 8
            self._pending_bits -= whole * 8

    @property
    def bit_count(self) -> int:
        return len(self._buffer) * 8 + self._pending_bits

    def to_bytes(self) -> bytes:
        out = bytes(self._buffer)
        if self._pending_bits:
            out += self._pending.to_bytes(1, "little")
        return out


class BitReader:
    """Reads back values written by :class:`BitWriter`, LSB-first."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0

    @property
    def bit_position(self) -> int:
        return self._position

    def read(self, width: int) -> int:
        start = self._position
        end = start + width
        if width and (end + 7) // 8 > len(self._data):
            raise ValueError(
                f"bit stream exhausted: read of {width} bits at bit {start} "
                f"overruns the {len(self._data)}-byte payload"
            )
        word = int.from_bytes(
            self._data[start // 8 : (end + 7) // 8], "little"
        )
        self._position = end
        return (word >> (start % 8)) & ((1 << width) - 1)


#: Backwards-compatible aliases for the pre-refactor private names.
_BitWriter = BitWriter
_BitReader = BitReader


def _signature_to_bits(table: ResponseTable, signature: Signature, test_index: int) -> int:
    """Baseline/response vector as an integer over the m output bits."""
    vector = table.signature_to_vector(signature, test_index)
    return int(vector[::-1], 2) if vector else 0


def _bits_to_signature(table: ResponseTable, bits: int, test_index: int) -> Signature:
    good = table.good_vector(test_index)
    flips = tuple(
        o for o in range(len(good)) if ((bits >> o) & 1) != int(good[o])
    )
    return flips


@dataclass
class PackedDictionary:
    """A serialised dictionary: payload bits + enough context to restore it."""

    kind: str
    n_faults: int
    n_tests: int
    n_outputs: int
    payload: bytes
    payload_bits: int

    def to_json(self) -> str:
        return json.dumps(
            {
                "kind": self.kind,
                "n_faults": self.n_faults,
                "n_tests": self.n_tests,
                "n_outputs": self.n_outputs,
                "payload_bits": self.payload_bits,
                "payload_hex": self.payload.hex(),
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "PackedDictionary":
        raw = json.loads(text)
        return cls(
            kind=raw["kind"],
            n_faults=raw["n_faults"],
            n_tests=raw["n_tests"],
            n_outputs=raw["n_outputs"],
            payload=bytes.fromhex(raw["payload_hex"]),
            payload_bits=raw["payload_bits"],
        )


def pack_passfail(dictionary: PassFailDictionary) -> PackedDictionary:
    table = dictionary.table
    writer = _BitWriter()
    for i in range(table.n_faults):
        writer.write(dictionary.row(i), table.n_tests)
    assert writer.bit_count == dictionary.size_bits
    return PackedDictionary(
        "pass/fail", table.n_faults, table.n_tests, table.n_outputs,
        writer.to_bytes(), writer.bit_count,
    )


def unpack_passfail(packed: PackedDictionary, table: ResponseTable) -> PassFailDictionary:
    if packed.kind != "pass/fail":
        raise ValueError(f"expected pass/fail payload, got {packed.kind!r}")
    reader = _BitReader(packed.payload)
    dictionary = PassFailDictionary(table)
    for i in range(table.n_faults):
        row = reader.read(table.n_tests)
        if row != dictionary.row(i):
            raise ValueError(f"payload row {i} does not match the response table")
    return dictionary


def pack_samediff(dictionary: SameDifferentDictionary) -> PackedDictionary:
    table = dictionary.table
    writer = _BitWriter()
    for j in range(table.n_tests):
        writer.write(
            _signature_to_bits(table, dictionary.baselines[j], j), table.n_outputs
        )
    for i in range(table.n_faults):
        writer.write(dictionary.row(i), table.n_tests)
    assert writer.bit_count == dictionary.size_bits
    return PackedDictionary(
        "same/different", table.n_faults, table.n_tests, table.n_outputs,
        writer.to_bytes(), writer.bit_count,
    )


def unpack_samediff(packed: PackedDictionary, table: ResponseTable) -> SameDifferentDictionary:
    if packed.kind != "same/different":
        raise ValueError(f"expected same/different payload, got {packed.kind!r}")
    reader = _BitReader(packed.payload)
    baselines: List[Signature] = []
    for j in range(table.n_tests):
        baselines.append(_bits_to_signature(table, reader.read(table.n_outputs), j))
    dictionary = SameDifferentDictionary(table, baselines)
    for i in range(table.n_faults):
        row = reader.read(table.n_tests)
        if row != dictionary.row(i):
            raise ValueError(f"payload row {i} does not match the response table")
    return dictionary


def pack_full(dictionary: FullDictionary) -> PackedDictionary:
    table = dictionary.table
    writer = _BitWriter()
    for i in range(table.n_faults):
        for j in range(table.n_tests):
            writer.write(
                _signature_to_bits(table, table.signature(i, j), j), table.n_outputs
            )
    assert writer.bit_count == dictionary.size_bits
    return PackedDictionary(
        "full", table.n_faults, table.n_tests, table.n_outputs,
        writer.to_bytes(), writer.bit_count,
    )


def unpack_full(packed: PackedDictionary, table: ResponseTable) -> FullDictionary:
    if packed.kind != "full":
        raise ValueError(f"expected full payload, got {packed.kind!r}")
    reader = _BitReader(packed.payload)
    for i in range(table.n_faults):
        for j in range(table.n_tests):
            bits = reader.read(table.n_outputs)
            if _bits_to_signature(table, bits, j) != table.signature(i, j):
                raise ValueError(
                    f"payload response ({i}, {j}) does not match the table"
                )
    return FullDictionary(table)
