"""Test selection for small dictionaries.

The size of every dictionary organisation is linear in the number of
tests ``k``, so the classical way to shrink a dictionary (the paper's
refs [9], [12]) is to keep only a subset of tests that preserves a chosen
property.  Greedy forward selection plus a reverse pruning pass, with two
preservable properties:

* **detection** — every fault detected by the full test set stays
  detected (enough for pass/fail go/no-go use);
* **resolution** — the full-dictionary partition of the faults is
  unchanged: every pair the whole test set distinguishes is still
  distinguished (what diagnosis actually needs).

The selected test indices can then be fed to
:meth:`repro.sim.responses.ResponseTable.subset` and any dictionary built
on the result.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..sim.responses import ResponseTable
from ..partition import Partition


def select_tests_preserving_detection(table: ResponseTable) -> List[int]:
    """Minimal-ish test subset keeping every detected fault detected.

    Greedy set cover (largest number of newly covered faults first, ties
    to the earlier test) followed by reverse pruning of redundant picks.
    """
    detectors: List[Set[int]] = [
        set(table.detected_indices(j)) for j in range(table.n_tests)
    ]
    must_cover: Set[int] = set().union(*detectors) if detectors else set()
    chosen: List[int] = []
    uncovered = set(must_cover)
    while uncovered:
        best = max(range(table.n_tests), key=lambda j: (len(detectors[j] & uncovered), -j))
        gained = detectors[best] & uncovered
        if not gained:
            break
        chosen.append(best)
        uncovered -= gained
    return _prune(chosen, lambda kept: set().union(*(detectors[j] for j in kept)) >= must_cover if kept else not must_cover)


def select_tests_preserving_resolution(table: ResponseTable) -> List[int]:
    """Test subset preserving the full-dictionary diagnostic resolution.

    Greedy: repeatedly take the test whose response signatures split the
    most still-indistinguished pairs, until the partition equals the one
    induced by all tests; then reverse-prune.  Detection is preserved as a
    side effect (an undetected-vs-detected split is a split).
    """
    target = _full_partition_classes(table)
    target_count = len(target)

    partition = Partition(range(table.n_faults))
    chosen: List[int] = []
    remaining = set(range(table.n_tests))
    while len(partition.classes) < target_count and remaining:
        best_j, best_gain = -1, 0
        for j in sorted(remaining):
            gain = _split_gain(table, j, partition)
            if gain > best_gain:
                best_j, best_gain = j, gain
        if best_gain == 0:
            break
        chosen.append(best_j)
        remaining.discard(best_j)
        for group in table.failing_groups(best_j):
            partition.split(group)

    def preserves(kept: Sequence[int]) -> bool:
        return len(_partition_classes_for(table, kept)) == target_count

    return _prune(chosen, preserves)


def _prune(chosen: List[int], preserves) -> List[int]:
    kept = list(chosen)
    for candidate in reversed(list(kept)):
        trial = [j for j in kept if j != candidate]
        if preserves(trial):
            kept = trial
    return sorted(kept)


def _split_gain(table: ResponseTable, test_index: int, partition: Partition) -> int:
    gain = 0
    class_of = partition.class_of
    classes = partition.classes
    counts: Dict[Tuple[int, int], int] = {}
    for sig_id, group in enumerate(table.failing_groups(test_index)):
        for index in group:
            key = (class_of[index], sig_id)
            counts[key] = counts.get(key, 0) + 1
    per_class: Dict[int, List[int]] = {}
    for (cid, _), count in counts.items():
        per_class.setdefault(cid, []).append(count)
    for cid, split_sizes in per_class.items():
        size = len(classes[cid])
        rest = size - sum(split_sizes)
        sizes = split_sizes + ([rest] if rest else [])
        gain += _pairs(size) - sum(_pairs(s) for s in sizes)
    return gain


def _pairs(size: int) -> int:
    return size * (size - 1) // 2


def _full_partition_classes(table: ResponseTable) -> List[Tuple[int, ...]]:
    return _partition_classes_for(table, range(table.n_tests))


def _partition_classes_for(
    table: ResponseTable, tests: Sequence[int]
) -> List[Tuple[int, ...]]:
    groups: Dict[tuple, List[int]] = {}
    for index in range(table.n_faults):
        key = tuple(table.signature(index, j) for j in tests)
        groups.setdefault(key, []).append(index)
    return [tuple(members) for members in groups.values()]
