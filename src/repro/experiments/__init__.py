"""Experiment harnesses reproducing the paper's tables and ablations."""

from .ablations import (
    calls_sweep,
    lower_sweep,
    mixed_storage_study,
    multi_baseline_study,
)
from .example_tables import example_table, render_all
from .fleet import (
    CellResult,
    FleetConfig,
    FleetReport,
    UnitResult,
    drive_unit,
    run_campaign,
    run_cell,
    render_report,
    synthesize_unit,
    synthetic_table,
)
from .pareto import (
    ParetoPoint,
    dominated_points,
    render_frontier,
    size_resolution_frontier,
)
from .reporting import (
    ReportPrinter,
    format_table,
    render_build_instrumentation,
    render_metrics,
)
from .scaling import ScalingPoint, scaling_study
from .table6 import (
    DEFAULT_CIRCUITS,
    EXTENDED_CIRCUITS,
    TEST_TYPES,
    Table6Row,
    render_table6,
    response_table_for,
    run_table6,
    table6_row,
)

__all__ = [
    "DEFAULT_CIRCUITS",
    "EXTENDED_CIRCUITS",
    "TEST_TYPES",
    "CellResult",
    "FleetConfig",
    "FleetReport",
    "ParetoPoint",
    "ReportPrinter",
    "ScalingPoint",
    "Table6Row",
    "UnitResult",
    "calls_sweep",
    "drive_unit",
    "run_campaign",
    "run_cell",
    "render_report",
    "synthesize_unit",
    "synthetic_table",
    "dominated_points",
    "example_table",
    "format_table",
    "lower_sweep",
    "render_frontier",
    "size_resolution_frontier",
    "mixed_storage_study",
    "multi_baseline_study",
    "render_all",
    "render_build_instrumentation",
    "render_metrics",
    "render_table6",
    "scaling_study",
    "response_table_for",
    "run_table6",
    "table6_row",
]
