"""Ablation studies for the design choices the paper discusses.

* :func:`lower_sweep` — the ``LOWER`` early-termination constant
  (Section 3: "the highest values of dist(z) are typically found after the
  first few output vectors").
* :func:`calls_sweep` — the number of random-restart calls of Procedure 1
  (``CALLS1``).
* :func:`multi_baseline_study` — the Section 2 remark that more than one
  baseline vector can be selected per test.
* :func:`mixed_storage_study` — the Section 2 remark that tests whose
  baseline is the fault-free vector need not store it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..api import DictionaryConfig, build as build_dictionary
from ..dictionaries import add_secondary_baselines, select_baselines
from ..obs import get_default_registry
from ..sim.responses import PASS
from .table6 import response_table_for


@dataclass
class LowerPoint:
    lower: int
    distinguished: int
    seconds: float


def lower_sweep(
    circuit: str,
    test_type: str = "diag",
    lowers: Sequence[int] = (1, 2, 5, 10, 20, 10**9),
    seed: int = 0,
) -> List[LowerPoint]:
    """Distinguished pairs and runtime of one Procedure 1 call per ``LOWER``.

    The last (huge) value disables the cutoff entirely and is the
    exhaustive reference.
    """
    _, table = response_table_for(circuit, test_type, seed)
    timer = get_default_registry().timer("ablations.lower_sweep_seconds")
    points = []
    for lower in lowers:
        with timer.time() as stopwatch:
            _, _, distinguished = select_baselines(
                table, config=DictionaryConfig(lower=lower)
            )
        points.append(LowerPoint(lower, distinguished, stopwatch.elapsed))
    return points


@dataclass
class CallsPoint:
    calls: int
    distinguished_procedure1: int
    procedure1_calls: int


def calls_sweep(
    circuit: str,
    test_type: str = "diag",
    calls_values: Sequence[int] = (1, 5, 20, 100),
    seed: int = 0,
    cache_dir=None,
) -> List[CallsPoint]:
    """Best Procedure 1 result as a function of the restart budget.

    ``cache_dir`` makes repeat sweeps reuse stored builds — each distinct
    ``calls`` value hashes to its own cache entry (see docs/artifacts.md).
    """
    _, table = response_table_for(circuit, test_type, seed)
    points = []
    for calls in calls_values:
        report = build_dictionary(
            table,
            config=DictionaryConfig(seed=seed, calls1=calls, procedure2=False),
            cache_dir=cache_dir,
        ).report
        points.append(
            CallsPoint(calls, report.distinguished_procedure1, report.procedure1_calls)
        )
    return points


@dataclass
class MultiBaselinePoint:
    baselines_per_test: int
    size_bits: int
    indistinguished: int


def multi_baseline_study(
    circuit: str,
    test_type: str = "diag",
    max_extra: int = 2,
    seed: int = 0,
    calls: int = 20,
    cache_dir=None,
) -> List[MultiBaselinePoint]:
    """Resolution/size trade-off of 1, 2, … baselines per test."""
    _, table = response_table_for(circuit, test_type, seed)
    dictionary = build_dictionary(
        table, config=DictionaryConfig(seed=seed, calls1=calls),
        cache_dir=cache_dir,
    ).dictionary
    points = [
        MultiBaselinePoint(1, dictionary.size_bits, dictionary.indistinguished_pairs())
    ]
    for extra in range(1, max_extra + 1):
        multi = add_secondary_baselines(table, dictionary, extra_per_test=extra)
        points.append(
            MultiBaselinePoint(
                1 + extra, multi.size_bits, multi.indistinguished_pairs()
            )
        )
    return points


@dataclass
class MixedStorageResult:
    plain_size_bits: int
    mixed_size_bits: int
    fault_free_baselines: int
    n_tests: int


def mixed_storage_study(
    circuit: str, test_type: str = "diag", seed: int = 0, calls: int = 20,
    cache_dir=None,
) -> MixedStorageResult:
    """How much the mixed (fault-free where possible) storage remark saves."""
    _, table = response_table_for(circuit, test_type, seed)
    dictionary = build_dictionary(
        table, config=DictionaryConfig(seed=seed, calls1=calls),
        cache_dir=cache_dir,
    ).dictionary
    fault_free = sum(1 for b in dictionary.baselines if b == PASS)
    return MixedStorageResult(
        plain_size_bits=dictionary.size_bits,
        mixed_size_bits=dictionary.mixed_size_bits(),
        fault_free_baselines=fault_free,
        n_tests=table.n_tests,
    )
