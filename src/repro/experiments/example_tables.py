"""The paper's worked example (Section 2/3, Tables 1-5), reproduced exactly.

Four faults, two tests, two outputs.  The concrete output vectors are:

====  ====  ====
row   t0    t1
====  ====  ====
ff    00    11
f0    00    10
f1    10    11
f2    01    10
f3    01    01
====  ====  ====

With these responses the paper's narrative holds verbatim: the full
dictionary distinguishes all six pairs, the pass/fail dictionary misses
(f2, f3), the baseline candidates for t0 score dist(00)=3, dist(10)=3,
dist(01)=4 (Table 4), z_bl,0 = 01 is selected, z_bl,1 = 10 distinguishes
the remaining pairs (Table 5), and the resulting same/different dictionary
(Table 3) distinguishes every pair.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..dictionaries import (
    DictionarySizes,
    FullDictionary,
    PassFailDictionary,
    Partition,
    SameDifferentDictionary,
    select_baselines,
)
from ..dictionaries.samediff import _candidate_distances
from ..faults.model import Fault
from ..sim.patterns import TestSet
from ..sim.responses import ResponseTable
from .reporting import format_table

#: The example's response matrix as output-vector strings.
EXAMPLE_RESPONSES: Dict[str, Tuple[str, str]] = {
    "ff": ("00", "11"),
    "f0": ("00", "10"),
    "f1": ("10", "11"),
    "f2": ("01", "10"),
    "f3": ("01", "01"),
}


def example_table() -> ResponseTable:
    """The worked example as a :class:`ResponseTable`."""
    faults = [Fault(f"f{i}", 0) for i in range(4)]
    tests = TestSet(("i0",), [0, 1])
    ff = EXAMPLE_RESPONSES["ff"]
    failing: List[Dict[int, tuple]] = []
    for i in range(4):
        vectors = EXAMPLE_RESPONSES[f"f{i}"]
        row: Dict[int, tuple] = {}
        for j in range(2):
            flips = tuple(
                o for o in range(2) if vectors[j][o] != ff[j][o]
            )
            if flips:
                row[j] = flips
        failing.append(row)
    good_words = {
        f"z{o}": sum(int(ff[j][o]) << j for j in range(2)) for o in range(2)
    }
    return ResponseTable(("z0", "z1"), faults, tests, failing, good_words)


def render_table1() -> str:
    """Table 1: the full fault dictionary (output vectors)."""
    rows = [
        (name, vectors[0], vectors[1])
        for name, vectors in EXAMPLE_RESPONSES.items()
    ]
    return format_table(("", "t0", "t1"), rows, "Table 1: A full fault dictionary")


def render_table2() -> str:
    """Table 2: the pass/fail fault dictionary."""
    table = example_table()
    dictionary = PassFailDictionary(table)
    rows = [("ff", 0, 0)]
    for i in range(4):
        word = dictionary.row(i)
        rows.append((f"f{i}", word & 1, (word >> 1) & 1))
    return format_table(("", "t0", "t1"), rows, "Table 2: A pass/fail fault dictionary")


def paper_baselines() -> SameDifferentDictionary:
    """The same/different dictionary with the paper's baselines (01, 10)."""
    table = example_table()
    baselines, _, _ = select_baselines(table)
    return SameDifferentDictionary(table, baselines)


def render_table3() -> str:
    """Table 3: the same/different fault dictionary."""
    dictionary = paper_baselines()
    rows = [("bl", dictionary.baseline_vector(0), dictionary.baseline_vector(1))]
    for i in range(4):
        word = dictionary.row(i)
        rows.append((f"f{i}", word & 1, (word >> 1) & 1))
    return format_table(
        ("", "t0", "t1"), rows, "Table 3: A same/different fault dictionary"
    )


def selection_trace(test_index: int, partition: Partition) -> List[Tuple[str, int]]:
    """dist(z) per candidate of ``Z_j`` against ``partition`` (Tables 4/5)."""
    table = example_table()
    trace = []
    for dist, signature, _ in _candidate_distances(table, test_index, partition):
        vector = table.signature_to_vector(signature, test_index)
        trace.append((vector, dist))
    return trace


def render_tables_4_and_5() -> str:
    """Tables 4 and 5: the baseline-selection traces for t0 and then t1."""
    table = example_table()
    partition = Partition(range(table.n_faults))
    trace0 = selection_trace(0, partition)
    # Apply the t0 selection (z_bl,0 = 01) before tracing t1, as the paper does.
    best = max(trace0, key=lambda item: item[1])
    for dist, signature, members in _candidate_distances(table, 0, partition):
        if table.signature_to_vector(signature, 0) == best[0]:
            partition.split(members)
            break
    trace1 = selection_trace(1, partition)
    part4 = format_table(("z", "dist(z)"), trace0, "Table 4: Selection of z_bl,0")
    part5 = format_table(("z", "dist(z)"), trace1, "Table 5: Selection of z_bl,1")
    return part4 + "\n\n" + part5


def render_all() -> str:
    """All five example tables, plus the size comparison of Section 2."""
    table = example_table()
    sizes = DictionarySizes.of(table)
    full = FullDictionary(table)
    passfail = PassFailDictionary(table)
    samediff = paper_baselines()
    summary = format_table(
        ("dictionary", "size (bits)", "indistinguished pairs"),
        [
            ("full", sizes.full, full.indistinguished_pairs()),
            ("pass/fail", sizes.pass_fail, passfail.indistinguished_pairs()),
            ("same/different", sizes.same_different, samediff.indistinguished_pairs()),
        ],
        "Section 2 size/resolution comparison",
    )
    return "\n\n".join(
        (render_table1(), render_table2(), render_table3(), render_tables_4_and_5(), summary)
    )
