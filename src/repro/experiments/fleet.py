"""Synthetic fleet campaigns: many noisy, possibly multi-fault units.

The paper evaluates dictionaries on one modelled single-stuck-at fault
with a noise-free tester.  A fleet is messier: thousands of defective
units, a fraction carrying *two* simultaneous faults (with masking on
shared outputs), and a tester that occasionally flips a test's
pass/fail.  This module synthesizes that population over a random
response table and drives one adaptive :class:`~repro.serve.session.
DiagnosisSession` per unit, comparing dictionary organisations
(pass/fail, same/different, full) and next-test strategies (greedy,
entropy) by how many tests each needs to resolve a unit.

Everything is deterministic in the config seed — two runs of the same
:class:`FleetConfig` produce identical reports — so the campaign can be
benchmarked (``benchmarks/test_fleet.py`` → ``BENCH_fleet.json``) and
recorded in ``EXPERIMENTS.md`` with an exact reproduce command
(``repro-fd fleet``).

Unit synthesis uses the same envelope model diagnosis assumes
(:func:`repro.diagnosis.multiplet.compose_observation`): a double-fault
unit fails every output exactly one constituent drives, while outputs
driven by both constituents mask with ``mask_probability``.  Noise then
flips each test independently with probability ``noise`` (a failing
test reads as a pass, a passing test fails one random output), which is
what the session ``flip_budget`` is there to absorb.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..diagnosis import metrics as FM
from ..diagnosis.multiplet import envelope
from ..dictionaries.full import FullDictionary
from ..dictionaries.passfail import PassFailDictionary
from ..dictionaries.samediff import SameDifferentDictionary
from ..faults.model import Fault
from ..obs import get_default_registry
from ..serve.session import STRATEGIES, DiagnosisSession
from ..sim.patterns import TestSet
from ..sim.responses import PASS, ResponseTable, Signature

#: Dictionary organisations a campaign compares, in report order.
KINDS = ("pass-fail", "same-different", "full")


@dataclass(frozen=True)
class FleetConfig:
    """One campaign's population and diagnosis settings."""

    #: Synthetic response-table shape.  The default density is high on
    #: purpose: when most faults fail most tests, the pass/fail detect
    #: bit carries little information and the s/d baseline comparison
    #: shows its resolution advantage — the regime the paper targets.
    n_faults: int = 120
    n_tests: int = 48
    n_outputs: int = 6
    density: float = 0.85
    #: Distinct faulty signatures per test.  Real faulty responses
    #: cluster into a few values per test (that clustering is what makes
    #: a same/different baseline informative); unconstrained random
    #: signatures would make every dictionary organisation look alike.
    signature_pool: int = 4
    #: Defective units to synthesize and diagnose.
    units: int = 200
    #: Fraction of units carrying two simultaneous faults.
    double_fraction: float = 0.0
    #: Per-test probability that the tester flips the outcome.
    noise: float = 0.0
    #: Probability that a maskable (test, output) of a double actually masks.
    mask_probability: float = 0.5
    #: Session noise tolerance (see :class:`DiagnosisSession`).
    flip_budget: int = 0
    #: Max tests applied per unit (None = the whole test set).
    max_tests: Optional[int] = None
    #: A unit counts as resolved once its candidate set is this small.
    resolve_at: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.units < 1:
            raise ValueError(f"units must be >= 1, got {self.units}")
        if not 0.0 <= self.double_fraction <= 1.0:
            raise ValueError(
                f"double_fraction must be in [0, 1], got {self.double_fraction}"
            )
        if not 0.0 <= self.noise <= 1.0:
            raise ValueError(f"noise must be in [0, 1], got {self.noise}")
        if self.flip_budget < 0:
            raise ValueError(
                f"flip_budget must be >= 0, got {self.flip_budget}"
            )
        if self.resolve_at < 1:
            raise ValueError(f"resolve_at must be >= 1, got {self.resolve_at}")

    @property
    def test_budget(self) -> int:
        return self.max_tests if self.max_tests is not None else self.n_tests


@dataclass(frozen=True)
class UnitResult:
    """One unit's diagnosis transcript summary."""

    #: True injected fault indices (one or two members).
    members: Tuple[int, ...]
    #: Observations applied before the session stopped.
    tests_used: int
    #: Observations until the candidate set first reached ``resolve_at``
    #: (the test budget when it never did).
    tests_to_resolution: int
    #: Candidate count when the session stopped.
    final_candidates: int
    #: A true member survived in the final candidate set.
    hit: bool
    #: Candidate count after each observation.
    curve: Tuple[int, ...]


@dataclass(frozen=True)
class CellResult:
    """One (dictionary kind × strategy) cell of the campaign grid."""

    kind: str
    strategy: str
    units: int
    mean_tests_to_resolution: float
    mean_tests_used: float
    mean_final_candidates: float
    hit_rate: float
    resolved_rate: float
    #: Mean candidate count after 1..N observations (units that stopped
    #: earlier contribute their final count — the curve EXPERIMENTS.md
    #: plots as resolution vs tests applied).
    mean_curve: Tuple[float, ...]


@dataclass(frozen=True)
class FleetReport:
    """The full campaign grid plus the population it ran over."""

    config: FleetConfig
    cells: Tuple[CellResult, ...]

    def cell(self, kind: str, strategy: str) -> CellResult:
        for cell in self.cells:
            if cell.kind == kind and cell.strategy == strategy:
                return cell
        raise KeyError(f"no campaign cell ({kind!r}, {strategy!r})")

    def as_dict(self) -> Dict[str, object]:
        """Plain-data form for JSON reports and bench info blocks."""
        return {
            "config": {
                "n_faults": self.config.n_faults,
                "n_tests": self.config.n_tests,
                "n_outputs": self.config.n_outputs,
                "units": self.config.units,
                "double_fraction": self.config.double_fraction,
                "noise": self.config.noise,
                "flip_budget": self.config.flip_budget,
                "resolve_at": self.config.resolve_at,
                "seed": self.config.seed,
            },
            "cells": [
                {
                    "kind": cell.kind,
                    "strategy": cell.strategy,
                    "units": cell.units,
                    "mean_tests_to_resolution": round(
                        cell.mean_tests_to_resolution, 3
                    ),
                    "mean_tests_used": round(cell.mean_tests_used, 3),
                    "mean_final_candidates": round(
                        cell.mean_final_candidates, 3
                    ),
                    "hit_rate": round(cell.hit_rate, 3),
                    "resolved_rate": round(cell.resolved_rate, 3),
                    "mean_curve": [round(c, 2) for c in cell.mean_curve],
                }
                for cell in self.cells
            ],
        }


# ----------------------------------------------------------------------
# population synthesis
# ----------------------------------------------------------------------
def synthetic_table(config: FleetConfig) -> ResponseTable:
    """A deterministic random response table for the campaign.

    Each (fault, test) pair fails with probability ``density``; a
    failing pair draws its signature from the test's pool of
    ``signature_pool`` distinct values with a skewed (rank-weighted)
    distribution — modelling how real faulty responses cluster per test,
    with one dominant value and a tail of rarer ones.
    """
    rng = random.Random(config.seed)
    faults = [Fault(f"f{i}", 0) for i in range(config.n_faults)]
    tests = TestSet(("i0",), [0] * config.n_tests)
    pools: List[List[Signature]] = []
    for _ in range(config.n_tests):
        pool: List[Signature] = []
        while len(pool) < config.signature_pool:
            signature = tuple(sorted(rng.sample(
                range(config.n_outputs),
                rng.randint(1, max(1, config.n_outputs // 2)),
            )))
            if signature not in pool:
                pool.append(signature)
        pools.append(pool)
    # Rank weights 1, 1/2, 1/3, ... — the first pool entry dominates.
    weights = [1.0 / (rank + 1) for rank in range(config.signature_pool)]
    failing: List[Dict[int, Signature]] = []
    for _ in range(config.n_faults):
        row: Dict[int, Signature] = {}
        for j in range(config.n_tests):
            if rng.random() < config.density:
                row[j] = rng.choices(pools[j], weights=weights, k=1)[0]
        failing.append(row)
    good = {
        f"z{o}": rng.getrandbits(config.n_tests)
        for o in range(config.n_outputs)
    }
    return ResponseTable(
        tuple(f"z{o}" for o in range(config.n_outputs)),
        faults, tests, failing, good,
    )


def synthesize_unit(
    table: ResponseTable, config: FleetConfig, rng: random.Random
) -> Tuple[Tuple[int, ...], List[Signature]]:
    """One defective unit: its true fault members and tester response.

    Doubles compose under the envelope model: uniquely-driven outputs
    always fail; outputs both members drive mask with
    ``mask_probability``.  Per-test noise then flips outcomes
    independently.
    """
    if rng.random() < config.double_fraction and table.n_faults >= 2:
        members = tuple(sorted(rng.sample(range(table.n_faults), 2)))
    else:
        members = (rng.randrange(table.n_faults),)

    observed: List[Signature] = []
    for j in range(table.n_tests):
        env = envelope(table, members, j)
        failing = set(env.lower)
        for output in sorted(env.upper - env.lower):
            if rng.random() >= config.mask_probability:
                failing.add(output)
        if config.noise and rng.random() < config.noise:
            if failing:
                failing = set()
            else:
                failing = {rng.randrange(table.n_outputs)}
        observed.append(tuple(sorted(failing)) if failing else PASS)
    return members, observed


# ----------------------------------------------------------------------
# driving one unit / one grid cell
# ----------------------------------------------------------------------
def drive_unit(
    dictionary,
    observed: Sequence[Signature],
    members: Tuple[int, ...],
    *,
    strategy: str,
    flip_budget: int,
    test_budget: int,
    resolve_at: int,
) -> UnitResult:
    """Adaptively test one unit until resolved, stalled or out of budget."""
    session = DiagnosisSession(
        dictionary,
        stall_after=test_budget,  # the budget, not stalling, ends a unit
        flip_budget=flip_budget,
    )
    curve: List[int] = []
    tests_to_resolution: Optional[int] = None
    while len(curve) < test_budget:
        suggestion = session.suggest_next_test(strategy)
        if suggestion is None:
            break  # no unobserved test splits the candidates any further
        session.observe(suggestion, observed[suggestion])
        curve.append(len(session.candidates))
        if (
            tests_to_resolution is None
            and len(session.candidates) <= resolve_at
        ):
            tests_to_resolution = len(curve)
    survivors = set(session.candidates)
    return UnitResult(
        members=members,
        tests_used=len(curve),
        tests_to_resolution=(
            tests_to_resolution
            if tests_to_resolution is not None else test_budget
        ),
        final_candidates=len(survivors),
        hit=any(member in survivors for member in members),
        curve=tuple(curve),
    )


def mode_baselines(table: ResponseTable) -> List[Signature]:
    """Per-test baseline = the most common *faulty* signature of the column.

    The build facade's Procedure 1/2 optimizes joint pairwise
    resolution, and on dense synthetic tables that objective saturates —
    every baseline assignment (including all-PASS, which degenerates to
    pass/fail) already distinguishes every pair, so the optimizer has no
    reason to prefer informative baselines.  Adaptive sessions care
    about a different quantity: *per-test split balance*.  The classic
    same/different configuration — baseline = the modal faulty response
    — maximizes exactly that (the "same" side carries the dominant
    cluster instead of the small passing set), which is where the s/d
    organisation beats pass/fail on tests-to-resolution.  Ties break on
    the smaller signature so the choice is deterministic.
    """
    baselines: List[Signature] = []
    for j in range(table.n_tests):
        counts: Dict[Signature, int] = {}
        for i in range(table.n_faults):
            signature = table.signature(i, j)
            if signature != PASS:
                counts[signature] = counts.get(signature, 0) + 1
        if not counts:
            baselines.append(PASS)
            continue
        baselines.append(
            min(counts, key=lambda sig: (-counts[sig], sig))
        )
    return baselines


def _dictionary_for(kind: str, table: ResponseTable, seed: int):
    if kind == "pass-fail":
        return PassFailDictionary(table)
    if kind == "full":
        return FullDictionary(table)
    if kind == "same-different":
        return SameDifferentDictionary(table, mode_baselines(table))
    raise ValueError(f"unknown dictionary kind {kind!r}: expected {KINDS}")


def run_cell(
    table: ResponseTable,
    population: Sequence[Tuple[Tuple[int, ...], List[Signature]]],
    config: FleetConfig,
    *,
    kind: str,
    strategy: str,
    dictionary=None,
) -> CellResult:
    """Diagnose the whole population against one (kind, strategy) cell."""
    registry = get_default_registry()
    if dictionary is None:
        dictionary = _dictionary_for(kind, table, config.seed)
    budget = config.test_budget
    results: List[UnitResult] = []
    with registry.timer(FM.FLEET_CELL_SECONDS).time():
        for members, observed in population:
            result = drive_unit(
                dictionary,
                observed,
                members,
                strategy=strategy,
                flip_budget=config.flip_budget,
                test_budget=budget,
                resolve_at=config.resolve_at,
            )
            results.append(result)
    n = len(results)
    registry.counter(FM.FLEET_UNITS).inc(n)
    registry.counter(FM.FLEET_OBSERVATIONS).inc(
        sum(r.tests_used for r in results)
    )
    resolved = [r for r in results if r.tests_to_resolution < budget]
    registry.counter(FM.FLEET_CONVERGED).inc(len(resolved))
    registry.counter(FM.FLEET_HITS).inc(sum(1 for r in results if r.hit))
    # Mean candidates after t observations; a unit that stopped before t
    # contributes its final count (its candidate set no longer changes).
    mean_curve: List[float] = []
    for t in range(budget):
        total = 0.0
        for r in results:
            if t < len(r.curve):
                total += r.curve[t]
            elif r.curve:
                total += r.curve[-1]
            else:
                total += table.n_faults
        mean_curve.append(total / n)
    return CellResult(
        kind=kind,
        strategy=strategy,
        units=n,
        mean_tests_to_resolution=(
            sum(r.tests_to_resolution for r in results) / n
        ),
        mean_tests_used=sum(r.tests_used for r in results) / n,
        mean_final_candidates=sum(r.final_candidates for r in results) / n,
        hit_rate=sum(1 for r in results if r.hit) / n,
        resolved_rate=len(resolved) / n,
        mean_curve=tuple(mean_curve),
    )


def run_campaign(
    config: FleetConfig,
    *,
    kinds: Sequence[str] = KINDS,
    strategies: Sequence[str] = STRATEGIES,
) -> FleetReport:
    """The full campaign grid: every dictionary kind × every strategy.

    The population is synthesized once (same units, same noise for every
    cell) so the grid isolates the dictionary/strategy effect.
    """
    for kind in kinds:
        if kind not in KINDS:
            raise ValueError(f"unknown dictionary kind {kind!r}: expected {KINDS}")
    for strategy in strategies:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}: expected {STRATEGIES}"
            )
    table = synthetic_table(config)
    rng = random.Random(config.seed + 1)
    population = [
        synthesize_unit(table, config, rng) for _ in range(config.units)
    ]
    cells: List[CellResult] = []
    for kind in kinds:
        dictionary = _dictionary_for(kind, table, config.seed)
        for strategy in strategies:
            cells.append(run_cell(
                table, population, config,
                kind=kind, strategy=strategy, dictionary=dictionary,
            ))
    return FleetReport(config=config, cells=tuple(cells))


def render_report(report: FleetReport) -> str:
    """The campaign grid as an aligned monospace table."""
    from .reporting import format_table

    config = report.config
    rows = [
        (
            cell.kind,
            cell.strategy,
            cell.mean_tests_to_resolution,
            cell.mean_final_candidates,
            cell.resolved_rate,
            cell.hit_rate,
        )
        for cell in report.cells
    ]
    title = (
        f"fleet: {config.units} units over {config.n_faults} faults x "
        f"{config.n_tests} tests (doubles={config.double_fraction:g}, "
        f"noise={config.noise:g}, flip_budget={config.flip_budget})"
    )
    return format_table(
        ("dictionary", "strategy", "tests-to-res", "final-cands",
         "resolved", "hit-rate"),
        rows,
        title=title,
    )
