"""Size-vs-resolution landscape of all dictionary organisations.

Puts the same/different dictionary in context: for one (circuit, test
set) cell, build every organisation the library implements and report
(size in bits, indistinguished pairs).  The paper's core argument is that
the same/different point sits almost on top of pass/fail in size while
moving a long way toward full in resolution — this experiment draws the
whole frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..api import DictionaryConfig, build as build_dictionary
from ..dictionaries import FullDictionary, PassFailDictionary
from ..dictionaries.compressed import (
    CountDictionary,
    DropOnDetectDictionary,
    FirstFailDictionary,
)
from .reporting import format_table
from .table6 import response_table_for


@dataclass(frozen=True)
class ParetoPoint:
    """One dictionary organisation's coordinates."""

    kind: str
    size_bits: int
    indistinguished: int


def size_resolution_frontier(
    circuit: str,
    test_type: str = "diag",
    seed: int = 0,
    calls: int = 20,
) -> List[ParetoPoint]:
    """All organisations' (size, indistinguished) points, smallest first."""
    _, table = response_table_for(circuit, test_type, seed)
    samediff = build_dictionary(
        table, config=DictionaryConfig(seed=seed, calls1=calls)
    ).dictionary
    dictionaries = [
        DropOnDetectDictionary(table),
        PassFailDictionary(table),
        samediff,
        CountDictionary(table),
        FirstFailDictionary(table),
        FullDictionary(table),
    ]
    points = [
        ParetoPoint(d.kind, d.size_bits, d.indistinguished_pairs())
        for d in dictionaries
    ]
    return sorted(points, key=lambda p: p.size_bits)


def dominated_points(points: List[ParetoPoint]) -> List[ParetoPoint]:
    """Points strictly dominated by another (bigger AND worse)."""
    dominated = []
    for p in points:
        for q in points:
            if (
                q.size_bits <= p.size_bits
                and q.indistinguished <= p.indistinguished
                and (q.size_bits < p.size_bits or q.indistinguished < p.indistinguished)
            ):
                dominated.append(p)
                break
    return dominated


def render_frontier(circuit: str, points: List[ParetoPoint]) -> str:
    rows = [(p.kind, p.size_bits, p.indistinguished) for p in points]
    return format_table(
        ("organisation", "size (bits)", "indistinguished pairs"),
        rows,
        f"Size/resolution landscape — {circuit}",
    )
