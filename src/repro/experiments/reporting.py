"""Plain-text rendering and routing for experiment reports.

Besides the table renderer this module owns two observability concerns:

* :class:`ReportPrinter` — the single funnel for human-readable output.
  When machine output (a ``--metrics-out -`` JSON snapshot) claims
  stdout, report text moves to stderr, so JSON consumers never see
  tables interleaved with their payload.
* :func:`render_metrics` / :func:`render_build_instrumentation` — fold a
  :class:`~repro.obs.MetricsRegistry` snapshot and the per-row
  :class:`~repro.dictionaries.BuildReport` statistics into the same
  table format as the paper's numbers.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Sequence, TextIO


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table.

    Cells are stringified; numeric-looking cells are right-aligned, the
    rest left-aligned.  ``None`` renders as '-' (the paper's omitted
    entries).
    """
    def cell(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    text_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    def align(value: str, width: int) -> str:
        stripped = value.lstrip("-")
        numeric = stripped.replace(".", "", 1).isdigit() if stripped else False
        return value.rjust(width) if numeric or value == "-" else value.ljust(width)

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(align(v, w) for v, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


class ReportPrinter:
    """Routes human-readable report text around machine output.

    ``machine_stdout=True`` means stdout is reserved for a machine
    payload (metrics JSON), so report text goes to stderr instead.  All
    CLI commands print through one instance of this class.
    """

    def __init__(
        self, machine_stdout: bool = False, stream: Optional[TextIO] = None
    ) -> None:
        if stream is not None:
            self.stream = stream
        else:
            self.stream = sys.stderr if machine_stdout else sys.stdout

    def emit(self, text: str = "") -> None:
        print(text, file=self.stream)


def render_metrics(snapshot: Dict[str, Dict[str, object]], title: str = "Metrics") -> str:
    """One table over a registry snapshot: counters, gauges, timer totals."""
    rows: List[Sequence[object]] = []
    for name, value in snapshot.get("counters", {}).items():
        rows.append((name, "counter", value))
    for name, value in snapshot.get("gauges", {}).items():
        rows.append((name, "gauge", value))
    for name, summary in snapshot.get("timers", {}).items():
        rows.append(
            (
                name,
                "timer",
                f"n={summary['count']} total={summary['total']:.3f}s "
                f"p95={summary['p95']:.3f}s",
            )
        )
    return format_table(("metric", "kind", "value"), rows, title)


def render_build_instrumentation(rows: Sequence[object]) -> str:
    """Per-row build statistics beside the paper's Table 6 numbers.

    ``rows`` are :class:`~repro.experiments.table6.Table6Row` objects (or
    anything exposing ``circuit``/``test_type``/``build``).
    """
    headers = (
        "circuit",
        "Ttype",
        "jobs",
        "P1 calls",
        "P1 s",
        "P1 cls",
        "P2 passes",
        "repl",
        "P2 s",
        "P2 cls",
    )
    body = [
        (
            row.circuit,
            row.test_type,
            row.build.jobs,
            row.build.procedure1_calls,
            row.build.procedure1_seconds,
            row.build.classes_after_procedure1,
            row.build.procedure2_passes,
            row.build.replacements,
            row.build.procedure2_seconds,
            row.build.classes_after_procedure2,
        )
        for row in rows
    ]
    return format_table(headers, body, "Build instrumentation")
