"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table.

    Cells are stringified; numeric-looking cells are right-aligned, the
    rest left-aligned.  ``None`` renders as '-' (the paper's omitted
    entries).
    """
    def cell(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    text_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    def align(value: str, width: int) -> str:
        stripped = value.lstrip("-")
        numeric = stripped.replace(".", "", 1).isdigit() if stripped else False
        return value.rjust(width) if numeric or value == "-" else value.ljust(width)

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(align(v, w) for v, w in zip(row, widths)).rstrip())
    return "\n".join(lines)
