"""Runtime scaling of the dictionary construction pipeline.

Measures how the cost of the pieces — fault simulation / response
capture, one Procedure 1 call, one Procedure 2 pass — grows with circuit
size across the benchmark proxies, confirming the complexity analysis in
DESIGN.md (everything is near-linear in faults × tests thanks to the
partition-refinement formulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..api import DictionaryConfig
from ..dictionaries import replace_baselines, select_baselines
from ..obs import get_default_registry
from ..faults.collapse import collapse
from ..sim.faultsim import FaultSimulator
from ..sim.patterns import TestSet
from ..sim.responses import ResponseTable
from ..circuit.library import load_circuit
from ..circuit.scan import prepare_for_test


@dataclass(frozen=True)
class ScalingPoint:
    """Measured costs for one circuit."""

    circuit: str
    gates: int
    faults: int
    tests: int
    build_table_seconds: float
    procedure1_seconds: float
    procedure2_seconds: float


def scaling_study(
    circuits: Sequence[str] = ("p208", "p298", "p344", "p641", "p1196"),
    tests_per_circuit: int = 128,
    seed: int = 0,
) -> List[ScalingPoint]:
    """Cost of each pipeline stage per circuit, with a fixed random test set."""
    registry = get_default_registry()
    points: List[ScalingPoint] = []
    for name in circuits:
        netlist = prepare_for_test(load_circuit(name))
        faults = collapse(netlist)
        tests = TestSet.random(netlist.inputs, tests_per_circuit, seed=seed)
        simulator = FaultSimulator(netlist, tests)
        detected = [f for f in faults if simulator.detection_word(f)]

        with registry.timer("scaling.build_table_seconds").time() as build:
            table = ResponseTable.build(netlist, detected, tests)

        with registry.timer("scaling.procedure1_seconds").time() as procedure1:
            baselines, _, _ = select_baselines(table)

        with registry.timer("scaling.procedure2_seconds").time() as procedure2:
            replace_baselines(
                table, baselines, max_passes=1, config=DictionaryConfig()
            )

        points.append(
            ScalingPoint(
                circuit=name,
                gates=netlist.num_gates,
                faults=len(detected),
                tests=tests_per_circuit,
                build_table_seconds=build.elapsed,
                procedure1_seconds=procedure1.elapsed,
                procedure2_seconds=procedure2.elapsed,
            )
        )
    return points
