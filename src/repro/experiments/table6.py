"""Reproduction harness for the paper's Table 6.

For every circuit and both test-set types (``diag``: a diagnostic test
set; ``10det``: a 10-detection test set) the harness reports the sizes of
the full / pass-fail / same-different dictionaries and the number of fault
pairs each leaves indistinguished — including the same/different result
after Procedure 1 with random restarts ("s/d rand") and after Procedure 2
("s/d repl", omitted when Procedure 2 brings no improvement, as in the
paper).

Substitution note (see DESIGN.md): circuits are the deterministic
synthetic proxies ``p208`` … ``p9234`` standing in for ISCAS-89, and the
dictionary fault list is the set of collapsed faults *detected by the test
set* — undetectable faults respond fault-free everywhere and would only
add a constant clique to every column.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from ..atpg.diagnostic import generate_diagnostic_tests
from ..atpg.ndetect import generate_ndetect_tests
from ..circuit.library import load_circuit
from ..circuit.netlist import Netlist
from ..circuit.scan import prepare_for_test
from ..api import DictionaryConfig, build as build_dictionary
from ..dictionaries import (
    BuildReport,
    DictionarySizes,
    FullDictionary,
    PassFailDictionary,
)
from ..faults.collapse import collapse
from ..obs import NullProgress, ProgressReporter, trace_span
from ..sim.faultsim import FaultSimulator
from ..sim.patterns import TestSet
from ..sim.responses import ResponseTable
from .reporting import format_table

#: Circuits of the default sweep (ordered as in the paper).
DEFAULT_CIRCUITS: Tuple[str, ...] = (
    "p208",
    "p298",
    "p344",
    "p382",
    "p386",
    "p400",
    "p420",
    "p510",
    "p526",
)

#: The larger proxies, enabled with ``REPRO_FULL_SWEEP=1`` in the benches.
EXTENDED_CIRCUITS: Tuple[str, ...] = (
    "p641",
    "p820",
    "p953",
    "p1196",
    "p1423",
    "p5378",
    "p9234",
)

TEST_TYPES: Tuple[str, ...] = ("diag", "10det")


@dataclass
class Table6Row:
    """One line of the reproduced Table 6."""

    circuit: str
    test_type: str
    n_tests: int
    n_faults: int
    n_outputs: int
    indist_full: int
    indist_passfail: int
    indist_sd_random: int
    indist_sd_replace: int
    build: BuildReport

    @property
    def sizes(self) -> DictionarySizes:
        return DictionarySizes(self.n_faults, self.n_tests, self.n_outputs)

    @property
    def sd_replace_or_none(self) -> Optional[int]:
        """Procedure 2 column, None when it brought no improvement (paper's '-')."""
        if self.indist_sd_replace < self.indist_sd_random:
            return self.indist_sd_replace
        return None


@lru_cache(maxsize=None)
def prepared_experiment(
    circuit: str, test_type: str, seed: int = 0
) -> Tuple[Netlist, TestSet]:
    """Scan-prepared netlist and generated test set for one table cell.

    Cached per process: the ``diag``/``10det`` generation dominates the
    cost of a row and is reused by ablations and benches.
    """
    netlist = prepare_for_test(load_circuit(circuit))
    faults = collapse(netlist)
    if test_type == "diag":
        tests, _ = generate_diagnostic_tests(netlist, faults, seed=seed)
    elif test_type == "10det":
        tests, _ = generate_ndetect_tests(netlist, faults, n=10, seed=seed)
    else:
        raise ValueError(f"unknown test type {test_type!r} (expected diag/10det)")
    return netlist, tests


def response_table_for(
    circuit: str, test_type: str, seed: int = 0
) -> "Tuple[Netlist, ResponseTable]":
    """The response table over the detected collapsed faults of one cell."""
    netlist, tests = prepared_experiment(circuit, test_type, seed)
    faults = collapse(netlist)
    simulator = FaultSimulator(netlist, tests)
    detected = [f for f in faults if simulator.detection_word(f)]
    return netlist, ResponseTable.build(netlist, detected, tests)


def table6_row(
    circuit: str,
    test_type: str,
    seed: int = 0,
    lower: int = 10,
    calls: int = 100,
    progress: Optional[ProgressReporter] = None,
    jobs: int = 1,
    backend: Optional[str] = None,
    cache_dir=None,
    checkpoint_dir=None,
    resume: bool = False,
) -> Table6Row:
    """Compute one row of Table 6 (``LOWER`` and ``CALLS1`` as in the paper).

    ``jobs > 1`` parallelises the Procedure 1 restarts; the row's numbers
    are identical for every ``jobs`` value (see ``docs/parallelism.md``)
    and for every kernel ``backend`` (see ``docs/kernels.md``).
    ``cache_dir`` reuses a previously stored build of the same cell
    (see ``docs/artifacts.md``); repeat sweeps then skip Procedures 1/2.
    ``checkpoint_dir`` / ``resume`` make each cell's restart loop
    resumable after a kill (see ``docs/scaling.md``).
    """
    with trace_span("table6.row", circuit=circuit, ttype=test_type):
        with trace_span("table6.prepare"):
            _, table = response_table_for(circuit, test_type, seed)
        full = FullDictionary(table)
        passfail = PassFailDictionary(table)
        built = build_dictionary(
            table,
            config=DictionaryConfig(
                seed=seed, calls1=calls, lower=lower, jobs=jobs, backend=backend
            ),
            progress=progress,
            cache_dir=cache_dir,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
        )
        build = built.report
    return Table6Row(
        circuit=circuit,
        test_type=test_type,
        n_tests=table.n_tests,
        n_faults=table.n_faults,
        n_outputs=table.n_outputs,
        indist_full=full.indistinguished_pairs(),
        indist_passfail=passfail.indistinguished_pairs(),
        indist_sd_random=build.indistinguished_procedure1,
        indist_sd_replace=build.indistinguished_procedure2,
        build=build,
    )


def run_table6(
    circuits: Sequence[str] = DEFAULT_CIRCUITS,
    test_types: Sequence[str] = TEST_TYPES,
    seed: int = 0,
    lower: int = 10,
    calls: int = 100,
    progress: Optional[ProgressReporter] = None,
    jobs: int = 1,
    backend: Optional[str] = None,
    cache_dir=None,
    checkpoint_dir=None,
    resume: bool = False,
) -> List[Table6Row]:
    """All requested rows, circuit-major / test-type-minor like the paper."""
    progress = progress if progress is not None else NullProgress()
    cells = [(c, t) for c in circuits for t in test_types]
    rows = []
    for done, (circuit, test_type) in enumerate(cells):
        progress.report(
            "table6", done, len(cells), circuit=circuit, ttype=test_type
        )
        rows.append(
            table6_row(
                circuit, test_type, seed=seed, lower=lower, calls=calls,
                progress=progress, jobs=jobs, backend=backend,
                cache_dir=cache_dir, checkpoint_dir=checkpoint_dir,
                resume=resume,
            )
        )
    progress.report("table6", len(cells), len(cells))
    return rows


def render_table6(rows: Sequence[Table6Row]) -> str:
    """Render rows in the layout of the paper's Table 6."""
    headers = (
        "circuit",
        "Ttype",
        "|T|",
        "size full",
        "size p/f",
        "size s/d",
        "ind full",
        "ind p/f",
        "ind s/d rand",
        "ind s/d repl",
    )
    body = [
        (
            row.circuit,
            row.test_type,
            row.n_tests,
            row.sizes.full,
            row.sizes.pass_fail,
            row.sizes.same_different,
            row.indist_full,
            row.indist_passfail,
            row.indist_sd_random,
            row.sd_replace_or_none,
        )
        for row in rows
    ]
    return format_table(headers, body, "Table 6: Experimental results")
