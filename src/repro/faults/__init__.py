"""Fault models: single stuck-at (with collapsing) and two-line bridges."""

from .bridging import (
    BridgingFault,
    enumerate_bridges,
    inject_bridge,
    is_feedback_bridge,
)
from .collapse import collapse, equivalence_classes
from .dominance import dominance_collapse
from .model import Fault
from .sites import all_faults, checkpoint_faults
from .transition import (
    TransitionFault,
    TransitionFaultSimulator,
    transition_faults,
    transition_response_table,
)

__all__ = [
    "BridgingFault",
    "Fault",
    "TransitionFault",
    "TransitionFaultSimulator",
    "all_faults",
    "checkpoint_faults",
    "collapse",
    "dominance_collapse",
    "enumerate_bridges",
    "equivalence_classes",
    "inject_bridge",
    "is_feedback_bridge",
    "transition_faults",
    "transition_response_table",
]
