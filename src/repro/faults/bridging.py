"""Two-line bridging fault model.

A bridging defect shorts two nets; under the classic wired-logic model
both shorted nets take the AND (wired-AND) or OR (wired-OR) of their
driven values.  Bridging faults are the canonical *non-modelled* defect
for stuck-at-dictionary diagnosis — the paper's reference [7] (Millman,
McCluskey, Acken) diagnoses them with stuck-at dictionaries, which is
exactly the experiment :mod:`repro.diagnosis.matching` supports.

:func:`inject_bridge` rewrites a netlist so both nets carry the wired
value; :func:`enumerate_bridges` samples feedback-free candidate bridges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist


@dataclass(frozen=True)
class BridgingFault:
    """A short between two nets with wired-AND or wired-OR behaviour."""

    net_a: str
    net_b: str
    wired: str = "AND"  # "AND" or "OR"

    def __post_init__(self) -> None:
        if self.wired not in ("AND", "OR"):
            raise ValueError(f"wired must be AND or OR, got {self.wired!r}")
        if self.net_a == self.net_b:
            raise ValueError("a bridge needs two distinct nets")

    def __str__(self) -> str:
        return f"bridge({self.net_a},{self.net_b})/{self.wired}"


def is_feedback_bridge(netlist: Netlist, fault: BridgingFault) -> bool:
    """True when one bridged net lies in the other's fan-out cone.

    Feedback bridges can oscillate or latch; the wired-logic combinational
    model only applies to non-feedback bridges.
    """
    return (
        fault.net_b in netlist.output_cone(fault.net_a)
        or fault.net_a in netlist.output_cone(fault.net_b)
    )


def inject_bridge(netlist: Netlist, fault: BridgingFault) -> Netlist:
    """A copy of ``netlist`` with the bridge structurally present.

    For a gate-driven net the driver is renamed to ``<net>__drv`` and the
    net is re-driven by the wired function of both driver values.  For a
    primary input the INPUT gate keeps its name (the circuit interface is
    unchanged) and its consumers are redirected to a fresh
    ``<net>__bridged`` wired gate instead.
    """
    for net in (fault.net_a, fault.net_b):
        if net not in netlist.gates:
            raise ValueError(f"unknown net {net!r}")
        if netlist.gates[net].gate_type is GateType.DFF:
            raise ValueError(f"cannot bridge flip-flop output {net!r} directly")
    if is_feedback_bridge(netlist, fault):
        raise ValueError(f"{fault} is a feedback bridge; not supported")
    wired_type = GateType.AND if fault.wired == "AND" else GateType.OR
    nets = (fault.net_a, fault.net_b)
    is_pi = {net: netlist.gates[net].gate_type is GateType.INPUT for net in nets}
    # The value each driver contributes to the short.
    driver_value = {net: (net if is_pi[net] else f"{net}__drv") for net in nets}
    # What consumers of each bridged net should now read.
    consumer_value = {net: (f"{net}__bridged" if is_pi[net] else net) for net in nets}
    wired_fanin = (driver_value[fault.net_a], driver_value[fault.net_b])

    bridged = Netlist(f"{netlist.name}__{fault}")
    for gate in netlist:
        if gate.name in nets and not is_pi[gate.name]:
            name = driver_value[gate.name]
        else:
            name = gate.name
        inputs = tuple(
            consumer_value.get(i, i) if i in nets else i for i in gate.inputs
        )
        bridged.add_gate(name, gate.gate_type, inputs)
    for net in nets:
        bridged.add_gate(consumer_value[net], wired_type, wired_fanin)
    for out in netlist.outputs:
        bridged.add_output(consumer_value.get(out, out))
    bridged.validate()
    return bridged


def enumerate_bridges(
    netlist: Netlist,
    count: int,
    seed: int = 0,
    wired: Optional[str] = None,
) -> List[BridgingFault]:
    """Sample ``count`` random non-feedback bridges between logic nets."""
    rng = random.Random(seed)
    candidates = [
        gate.name
        for gate in netlist
        if gate.gate_type not in (GateType.DFF,) and not gate.gate_type.is_constant
    ]
    bridges: List[BridgingFault] = []
    attempts = 0
    while len(bridges) < count and attempts < count * 50:
        attempts += 1
        net_a, net_b = rng.sample(candidates, 2)
        kind = wired or rng.choice(("AND", "OR"))
        fault = BridgingFault(net_a, net_b, kind)
        if is_feedback_bridge(netlist, fault):
            continue
        bridges.append(fault)
    return bridges
