"""Structural equivalence fault collapsing.

Two faults are structurally equivalent when every test distinguishes both
or neither of them from the fault-free circuit.  The classical gate-local
rules are applied transitively with a union-find:

* AND:  any input ``sa0``  ≡ output ``sa0``
* NAND: any input ``sa0``  ≡ output ``sa1``
* OR:   any input ``sa1``  ≡ output ``sa1``
* NOR:  any input ``sa1``  ≡ output ``sa0``
* BUF:  input ``saV`` ≡ output ``saV``;  NOT: input ``saV`` ≡ output ``sa(1-V)``

The paper evaluates on "the set of collapsed single stuck-at faults", which
is what :func:`collapse` produces.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..circuit.gates import CONTROLLED_OUTPUT, CONTROLLING_VALUE, GateType
from ..circuit.netlist import Netlist
from .model import Fault
from .sites import all_faults


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[Fault, Fault] = {}

    def find(self, item: Fault) -> Fault:
        parent = self._parent.setdefault(item, item)
        if parent is item or parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: Fault, b: Fault) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            # Deterministic representative: the smaller fault wins.
            if root_b < root_a:
                root_a, root_b = root_b, root_a
            self._parent[root_b] = root_a


def _input_fault(netlist: Netlist, net: str, sink: str, value: int) -> Fault:
    """The fault object representing ``net`` stuck at ``value`` as seen by ``sink``.

    For a multi-fan-out net that is the branch pin fault; for a single
    fan-out net the branch coincides with the stem.
    """
    if len(netlist.fanout_map()[net]) > 1:
        return Fault(net, value, input_of=sink)
    return Fault(net, value)


def equivalence_classes(netlist: Netlist, faults: Sequence[Fault] = None) -> Dict[Fault, List[Fault]]:
    """Group ``faults`` (default: the full universe) into structural classes.

    Returns a map from the class representative (its smallest member) to
    the sorted list of all members.
    """
    if faults is None:
        faults = all_faults(netlist)
    uf = _UnionFind()
    known = set(faults)
    for fault in faults:
        uf.find(fault)
    # A gate-input fault is equivalent to the matching gate-output fault
    # only when the input net is not directly observable: if the net is a
    # primary output (e.g. a scan pseudo-PO), a fault on it is seen there
    # while the gate-output fault is not.
    observable = set(netlist.outputs)
    for gate in netlist:
        if gate.gate_type in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
            control = CONTROLLING_VALUE[gate.gate_type]
            output_fault = Fault(gate.name, CONTROLLED_OUTPUT[gate.gate_type])
            for net in gate.inputs:
                pin = _input_fault(netlist, net, gate.name, control)
                if pin.is_stem and net in observable:
                    continue
                if pin in known and output_fault in known:
                    uf.union(pin, output_fault)
        elif gate.gate_type in (GateType.BUF, GateType.NOT):
            invert = gate.gate_type is GateType.NOT
            for value in (0, 1):
                pin = _input_fault(netlist, gate.inputs[0], gate.name, value)
                if pin.is_stem and gate.inputs[0] in observable:
                    break
                output_fault = Fault(gate.name, value ^ invert)
                if pin in known and output_fault in known:
                    uf.union(pin, output_fault)
    classes: Dict[Fault, List[Fault]] = {}
    for fault in faults:
        classes.setdefault(uf.find(fault), []).append(fault)
    return {root: sorted(members) for root, members in classes.items()}


def collapse(netlist: Netlist, faults: Sequence[Fault] = None) -> List[Fault]:
    """The collapsed fault list: one representative per equivalence class.

    Representatives are sorted, so the result is deterministic and usable
    as the canonical fault index order of dictionaries.
    """
    return sorted(equivalence_classes(netlist, faults))
