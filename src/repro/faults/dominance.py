"""Dominance fault collapsing.

Fault ``g`` *dominates* fault ``f`` when every test detecting ``f`` also
detects ``g``; for test generation ``g`` is then redundant — target ``f``
and ``g`` comes along for free.  The classical gate-local rules:

* AND:  output ``sa1`` dominates each input ``sa1``
* NAND: output ``sa0`` dominates each input ``sa1``
* OR:   output ``sa0`` dominates each input ``sa0``
* NOR:  output ``sa1`` dominates each input ``sa0``

(detecting the input fault requires all side inputs non-controlling, under
which the output fault produces the identical output effect).

Two caveats:

* the rules assume the input fault is observable only *through* the gate —
  a stem fault on a net that is itself a primary output can be detected
  without propagating through the gate, so it justifies nothing;
* dominance preserves detection, **not** diagnostic information — a
  dominance-collapsed list is for test generation only, never for
  building dictionaries (dominated faults are still distinct diagnosis
  candidates), which is why the dictionary experiments use equivalence
  collapsing alone.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist
from .collapse import collapse, equivalence_classes
from .model import Fault
from .sites import all_faults

_RULES: Dict[GateType, "tuple[int, int]"] = {
    # gate type -> (dominated input stuck value, dominating output stuck value)
    GateType.AND: (1, 1),
    GateType.NAND: (1, 0),
    GateType.OR: (0, 0),
    GateType.NOR: (0, 1),
}


def _input_fault(netlist: Netlist, net: str, sink: str, value: int) -> Fault:
    if len(netlist.fanout_map()[net]) > 1:
        return Fault(net, value, input_of=sink)
    return Fault(net, value)


def dominance_collapse(netlist: Netlist, faults: Sequence[Fault] = None) -> List[Fault]:
    """Equivalence + dominance collapsed fault list for test generation.

    Starting from the equivalence-collapsed list, drops every *output*
    fault dominated by some input fault of the same gate that is present
    in the universe.  Dominance chains compose transitively along the
    circuit, so a justification may itself have been dropped — its own
    justification chain bottoms out at a retained fault.
    """
    if faults is None:
        faults = collapse(netlist)
    universe: Set[Fault] = set(faults)
    observable = set(netlist.outputs)

    # Map every fault of the full universe to its retained equivalence
    # representative, so rule endpoints land on list members.
    classes = equivalence_classes(netlist, all_faults(netlist))
    representative: Dict[Fault, Fault] = {}
    for root, members in classes.items():
        for member in members:
            representative[member] = root

    dropped: Set[Fault] = set()
    for gate in netlist:
        rule = _RULES.get(gate.gate_type)
        if rule is None:
            continue
        input_value, output_value = rule
        output_rep = representative.get(Fault(gate.name, output_value))
        if output_rep is None or output_rep not in universe or output_rep in dropped:
            continue
        if gate.name in observable:
            # The output fault is observed directly at this PO for free
            # whenever activated; dominance still holds, but dropping an
            # observed fault buys nothing and complicates diagnosis reuse.
            continue
        for net in gate.inputs:
            pin = _input_fault(netlist, net, gate.name, input_value)
            if pin.is_stem and net in observable:
                continue  # detectable without propagating through this gate
            pin_rep = representative.get(pin)
            if pin_rep is None or pin_rep == output_rep:
                continue
            if pin_rep in universe:
                dropped.add(output_rep)
                break
    return sorted(f for f in universe if f not in dropped)
