"""Single stuck-at fault model.

A fault is a (line, stuck value) pair.  Lines are either gate *outputs*
(stem faults, ``Fault("n3", 1)``) or individual gate *input pins*
(``Fault("n3", 0, input_of="n7")`` — the branch of net ``n3`` feeding gate
``n7``).  Pin-level faults matter because a fan-out branch can be faulty
independently of its stem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault.

    Attributes:
        line: the net the fault sits on.
        stuck_at: 0 or 1.
        input_of: when set, the fault is on the branch of ``line`` that
            feeds gate ``input_of`` (a pin fault); when ``None`` it is on
            the stem, affecting all of ``line``'s fan-out.
    """

    line: str
    stuck_at: int
    input_of: Optional[str] = None

    def __post_init__(self) -> None:
        if self.stuck_at not in (0, 1):
            raise ValueError(f"stuck_at must be 0 or 1, got {self.stuck_at!r}")

    @property
    def is_stem(self) -> bool:
        return self.input_of is None

    @property
    def sort_key(self):
        """Deterministic total order; stem faults sort before pin faults."""
        return (self.line, self.stuck_at, self.input_of is not None, self.input_of or "")

    def __lt__(self, other: "Fault") -> bool:
        if not isinstance(other, Fault):
            return NotImplemented
        return self.sort_key < other.sort_key

    def __str__(self) -> str:
        location = self.line if self.is_stem else f"{self.line}->{self.input_of}"
        return f"{location}/sa{self.stuck_at}"
