"""Enumeration of the stuck-at fault universe of a netlist.

The *uncollapsed* universe contains, for every net, two stem faults
(``sa0``/``sa1``) and, for every fan-out branch of a multi-fan-out net, two
pin faults.  Single-fan-out nets get stem faults only (the stem and its one
branch are the same line).  This matches the conventional fault universe
used before equivalence collapsing.
"""

from __future__ import annotations

from typing import List

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist
from .model import Fault


def all_faults(netlist: Netlist) -> List[Fault]:
    """The uncollapsed single stuck-at fault universe of ``netlist``.

    Faults are enumerated on the combinational view: constant gates carry
    no fault (their output cannot change meaningfully for sa-at the tied
    value, and the other polarity is the tie fault itself), and DFF nets
    are treated as ordinary nets (callers normally pass a full-scan
    netlist, where DFFs have already become INPUTs).
    """
    fanout = netlist.fanout_map()
    faults: List[Fault] = []
    for gate in netlist:
        if gate.gate_type.is_constant:
            continue
        for value in (0, 1):
            faults.append(Fault(gate.name, value))
        sinks = fanout[gate.name]
        if len(sinks) > 1:
            for sink in sinks:
                for value in (0, 1):
                    faults.append(Fault(gate.name, value, input_of=sink))
    return faults


def checkpoint_faults(netlist: Netlist) -> List[Fault]:
    """Checkpoint fault set: faults on primary inputs and fan-out branches.

    A classical structural dominance result: in a fan-out-free region every
    fault is dominated by a fault at a checkpoint (PI or fan-out branch),
    so a test set detecting all checkpoint faults detects all single
    stuck-at faults.  Offered as a cheaper alternative universe.
    """
    fanout = netlist.fanout_map()
    faults: List[Fault] = []
    for gate in netlist:
        if gate.gate_type.is_constant:
            continue
        sinks = fanout[gate.name]
        if gate.gate_type is GateType.INPUT and len(sinks) <= 1:
            for value in (0, 1):
                faults.append(Fault(gate.name, value))
        if len(sinks) > 1:
            for sink in sinks:
                for value in (0, 1):
                    faults.append(Fault(gate.name, value, input_of=sink))
    return faults
