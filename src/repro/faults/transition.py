"""Transition (gross-delay) fault model.

A *slow-to-rise* fault on net ``n`` delays the 0→1 transition past the
capture edge: under a two-pattern test (launch vector ``v1``, capture
vector ``v2``) the net still shows its old value 0 when ``v2`` is
captured.  Detection therefore requires

1. a transition launched on the net (``n = 0`` under ``v1``, ``n = 1``
   under ``v2`` in the fault-free circuit — the enhanced-scan model where
   both vectors are arbitrary), and
2. the residual value to be observable: ``v2`` detects the corresponding
   stuck-at fault (``n`` stuck-at-0 for slow-to-rise).

Slow-to-fall is symmetric.  This reduction to stuck-at detection under
``v2`` is what lets the whole dictionary machinery — including the
same/different construction — apply to a second fault model unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..circuit.netlist import Netlist
from .model import Fault


@dataclass(frozen=True)
class TransitionFault:
    """A slow-to-rise (``rising=True``) or slow-to-fall delay fault."""

    line: str
    rising: bool

    @property
    def initial_value(self) -> int:
        """The value the net must hold under the launch vector."""
        return 0 if self.rising else 1

    @property
    def residual_stuck_at(self) -> Fault:
        """The stuck-at fault the capture vector must detect."""
        return Fault(self.line, self.initial_value)

    def __str__(self) -> str:
        return f"{self.line}/{'str' if self.rising else 'stf'}"

    @property
    def sort_key(self):
        return (self.line, self.rising)

    def __lt__(self, other: "TransitionFault") -> bool:
        if not isinstance(other, TransitionFault):
            return NotImplemented
        return self.sort_key < other.sort_key


def transition_faults(netlist: Netlist) -> List[TransitionFault]:
    """Both transition faults on every non-constant net (stem faults)."""
    faults: List[TransitionFault] = []
    for gate in netlist:
        if gate.gate_type.is_constant:
            continue
        faults.append(TransitionFault(gate.name, rising=True))
        faults.append(TransitionFault(gate.name, rising=False))
    return faults


class TransitionFaultSimulator:
    """Bit-parallel two-pattern transition fault simulation.

    ``launch`` and ``capture`` are equal-length test sets; pair ``j``
    consists of ``launch[j]`` followed by ``capture[j]``.
    """

    def __init__(self, netlist: Netlist, launch, capture) -> None:
        from ..sim.faultsim import FaultSimulator
        from ..sim.logicsim import simulate

        if len(launch) != len(capture):
            raise ValueError("launch and capture sets must pair up 1:1")
        self.netlist = netlist
        self.launch = launch
        self.capture = capture
        self._launch_values = simulate(netlist, launch)
        self._capture_simulator = FaultSimulator(netlist, capture)
        self.n_pairs = len(launch)
        self._mask = (1 << self.n_pairs) - 1

    def launch_word(self, fault: TransitionFault) -> int:
        """Bit ``j`` set when pair ``j`` launches the required transition."""
        v1 = self._launch_values[fault.line]
        v2 = self._capture_simulator.good_values[fault.line]
        if fault.rising:
            return (self._mask ^ v1) & v2
        return v1 & (self._mask ^ v2)

    def output_diffs(self, fault: TransitionFault) -> Dict[str, int]:
        """Per-output failing words, masked to pairs that launch."""
        gate = self.launch_word(fault)
        if not gate:
            return {}
        diffs = self._capture_simulator.output_diffs(fault.residual_stuck_at)
        masked = {net: word & gate for net, word in diffs.items()}
        return {net: word for net, word in masked.items() if word}

    def detection_word(self, fault: TransitionFault) -> int:
        word = 0
        for diff in self.output_diffs(fault).values():
            word |= diff
        return word

    def coverage(self, faults: Sequence[TransitionFault]) -> float:
        if not faults:
            return 1.0
        detected = sum(1 for f in faults if self.detection_word(f))
        return detected / len(faults)


def transition_response_table(netlist: Netlist, launch, capture, faults):
    """A :class:`~repro.sim.responses.ResponseTable` over transition faults.

    "Tests" are vector pairs; signatures are the failing outputs observed
    at capture.  Any dictionary organisation builds on the result.
    """
    from ..sim.bits import iter_bits
    from ..sim.responses import ResponseTable

    simulator = TransitionFaultSimulator(netlist, launch, capture)
    output_index = {net: o for o, net in enumerate(netlist.outputs)}
    failing = []
    for fault in faults:
        per_pair: Dict[int, List[int]] = {}
        diffs = simulator.output_diffs(fault)
        for net in netlist.outputs:
            word = diffs.get(net)
            if not word:
                continue
            for j in iter_bits(word):
                per_pair.setdefault(j, []).append(output_index[net])
        failing.append({j: tuple(sorted(v)) for j, v in per_pair.items()})
    good = {
        net: simulator._capture_simulator.good_values[net]
        for net in netlist.outputs
    }
    return ResponseTable(netlist.outputs, faults, capture, failing, good)
