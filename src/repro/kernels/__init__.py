"""Interchangeable pair-counting kernels for the dictionary procedures.

See :mod:`repro.kernels.base` for the :class:`KernelBackend` protocol and
``docs/kernels.md`` for the packing layout and performance notes.  The two
shipped backends are registered here:

* ``naive`` — pure-Python reference (:mod:`repro.kernels.naive`);
* ``packed`` — interned-column kernels (:mod:`repro.kernels.packed`),
  the default unless ``REPRO_BACKEND`` says otherwise.
"""

from .base import (
    BACKEND_ENV,
    DEFAULT_BACKEND,
    KernelBackend,
    Procedure1Run,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
)
from .interning import InternedTable, intern_response_table
from .naive import NaiveBackend
from .packed import PackedBackend

register_backend("naive", NaiveBackend)
register_backend("packed", PackedBackend)

__all__ = [
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "InternedTable",
    "KernelBackend",
    "NaiveBackend",
    "PackedBackend",
    "Procedure1Run",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "intern_response_table",
    "register_backend",
]
