"""Interchangeable pair-counting kernels for the dictionary procedures.

See :mod:`repro.kernels.base` for the :class:`KernelBackend` protocol and
``docs/kernels.md`` for the packing layouts and performance notes.  The
three shipped backends are registered here:

* ``naive`` — pure-Python reference (:mod:`repro.kernels.naive`);
* ``packed`` — interned-column kernels (:mod:`repro.kernels.packed`),
  the default unless ``REPRO_BACKEND`` says otherwise;
* ``vector`` — batched word-array scoring (:mod:`repro.kernels.vector`),
  numpy-accelerated when numpy is importable, stdlib ``array`` fallback
  otherwise.
"""

from .base import (
    BACKEND_ENV,
    DEFAULT_BACKEND,
    KernelBackend,
    Procedure1Run,
    available_backends,
    backend_choices_help,
    backend_descriptions,
    default_backend_name,
    get_backend,
    register_backend,
)
from .interning import (
    InternedTable,
    VectorLayout,
    build_vector_layout,
    intern_response_table,
    unpack_vector_layout,
)
from .naive import NaiveBackend
from .packed import PackedBackend
from .vector import VectorBackend

register_backend(
    "naive", NaiveBackend, "pure-Python reference, the differential oracle"
)
register_backend(
    "packed", PackedBackend, "interned columns with class-major scoring"
)
register_backend(
    "vector",
    VectorBackend,
    "batched word-array sweep, numpy-accelerated with a stdlib fallback",
)

__all__ = [
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "InternedTable",
    "KernelBackend",
    "NaiveBackend",
    "PackedBackend",
    "Procedure1Run",
    "VectorBackend",
    "VectorLayout",
    "available_backends",
    "backend_choices_help",
    "backend_descriptions",
    "build_vector_layout",
    "default_backend_name",
    "get_backend",
    "intern_response_table",
    "register_backend",
    "unpack_vector_layout",
]
