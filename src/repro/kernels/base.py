"""The kernel backend protocol and registry.

A *kernel backend* bundles the pair-counting primitives the dictionary
procedures spend their time in: ``dist(z)`` candidate scoring for
Procedure 1, the Procedure 2 hill-climb, and the indistinguished-pair
counts of the pass/fail, same/different and full organisations.  Two
implementations ship with the repo:

* ``naive`` — the original pure-Python reference paths in
  :mod:`repro.dictionaries.samediff`; trivially correct, used as the
  differential oracle.
* ``packed`` — interned integer signature ids over precomputed columns
  (:mod:`repro.kernels.interning`) with class-major scoring and
  detection-word skipping (:mod:`repro.kernels.packed`).

Backends must be *byte-identical*: same baselines, same counts, same
metrics, for every input.  ``REPRO_BACKEND`` selects the process-wide
default; see ``docs/kernels.md`` for the layout and for how to register
a third backend.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from ..sim.responses import ResponseTable, Signature

#: Environment variable holding the default backend name.
BACKEND_ENV = "REPRO_BACKEND"

#: Name used when neither an explicit name nor the environment chooses.
DEFAULT_BACKEND = "packed"


@dataclass
class Procedure1Run:
    """Outcome of one Procedure 1 call, backend-neutral.

    ``winners`` records, per test that split anything, ``(test_index,
    candidate_index)`` of the selected baseline (candidate 0 is the
    fault-free response) — enough to replay the splits into a
    :class:`~repro.dictionaries.resolution.Partition` when a caller needs
    the final partition, without paying for it on the restart hot path.
    ``partition`` is pre-materialised by backends that build one anyway
    (the naive path); ``None`` otherwise.
    """

    baselines: List[Signature]
    distinguished: int
    evaluated: int
    cutoffs: int
    winners: List[Tuple[int, int]] = field(default_factory=list)
    partition: Optional[object] = None


@runtime_checkable
class KernelBackend(Protocol):
    """The primitive operations a dictionary-construction backend provides.

    All methods must return values identical to the ``naive`` reference
    backend for the same inputs — backends trade time, never results.
    """

    name: str

    def procedure1(
        self,
        table: ResponseTable,
        order: Sequence[int],
        lower: int,
        timings: Optional[Dict[str, float]] = None,
    ) -> Procedure1Run:
        """Greedy per-test baseline selection over one test order.

        ``timings``, when a dict is passed, accumulates the seconds spent
        in the candidate-scoring loop under key ``"scoring"`` (bench
        instrumentation; pass ``None`` in production).
        """
        ...

    def candidate_distances(
        self, table: ResponseTable, test_index: int, partition
    ) -> List[Tuple[int, Signature, List[int]]]:
        """``(dist, signature, members)`` per candidate of ``Z_j``, eagerly."""
        ...

    def indistinguished_for(
        self, table: ResponseTable, baselines: Sequence[Signature]
    ) -> int:
        """Indistinguished pairs of the same/different rows under ``baselines``."""
        ...

    def passfail_indistinguished(self, table: ResponseTable) -> int:
        """Indistinguished pairs of the pass/fail dictionary."""
        ...

    def full_indistinguished(self, table: ResponseTable) -> int:
        """Indistinguished pairs of the full dictionary."""
        ...

    def replace(
        self,
        table: ResponseTable,
        baselines: Sequence[Signature],
        max_passes: int,
    ) -> Tuple[List[Signature], int, int, int, int]:
        """Procedure 2 hill-climb.

        Returns ``(baselines, distinguished, passes, replacements,
        attempts)``.
        """
        ...


_REGISTRY: Dict[str, Callable[[], KernelBackend]] = {}
_INSTANCES: Dict[str, KernelBackend] = {}


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register a backend factory under ``name`` (last registration wins)."""
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def default_backend_name() -> str:
    """The process-wide default: ``$REPRO_BACKEND`` or ``packed``."""
    return os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND


def get_backend(name: Optional[str] = None) -> KernelBackend:
    """Resolve a backend instance by name (default: :func:`default_backend_name`).

    Instances are cached per name — backends are stateless between calls.
    """
    resolved = name or default_backend_name()
    instance = _INSTANCES.get(resolved)
    if instance is None:
        try:
            factory = _REGISTRY[resolved]
        except KeyError:
            raise KeyError(
                f"unknown kernel backend {resolved!r}; "
                f"available: {', '.join(available_backends())}"
            ) from None
        instance = _INSTANCES[resolved] = factory()
    return instance
