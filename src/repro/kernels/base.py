"""The kernel backend protocol and registry.

A *kernel backend* bundles the pair-counting primitives the dictionary
procedures spend their time in: ``dist(z)`` candidate scoring for
Procedure 1, the Procedure 2 hill-climb, and the indistinguished-pair
counts of the pass/fail, same/different and full organisations.  Two
implementations ship with the repo:

* ``naive`` — the original pure-Python reference paths in
  :mod:`repro.dictionaries.samediff`; trivially correct, used as the
  differential oracle.
* ``packed`` — interned integer signature ids over precomputed columns
  (:mod:`repro.kernels.interning`) with class-major scoring and
  detection-word skipping (:mod:`repro.kernels.packed`).
* ``vector`` — batched word-array candidate scoring over the flat
  :class:`~repro.kernels.interning.VectorLayout` (numpy when importable,
  stdlib ``array`` fallback otherwise; :mod:`repro.kernels.vector`).

Backends must be *byte-identical*: same baselines, same counts, same
metrics, for every input.  ``REPRO_BACKEND`` selects the process-wide
default; see ``docs/kernels.md`` for the layouts and for how to register
another backend.

The registry is the single source of truth for what exists: the CLI's
``--backend`` choices *and* help text are generated from it
(:func:`backend_choices_help`), so a newly registered backend can never
drift out of the user-facing help string.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from ..sim.responses import ResponseTable, Signature

#: Environment variable holding the default backend name.
BACKEND_ENV = "REPRO_BACKEND"

#: Name used when neither an explicit name nor the environment chooses.
DEFAULT_BACKEND = "packed"


@dataclass
class Procedure1Run:
    """Outcome of one Procedure 1 call, backend-neutral.

    ``winners`` records, per test that split anything, ``(test_index,
    candidate_index)`` of the selected baseline (candidate 0 is the
    fault-free response) — enough to replay the splits into a
    :class:`~repro.partition.FaultPartition` when a caller needs
    the final partition, without paying for it on the restart hot path.
    ``partition`` is pre-materialised by backends that build one anyway
    (the naive path); ``None`` otherwise.
    """

    baselines: List[Signature]
    distinguished: int
    evaluated: int
    cutoffs: int
    winners: List[Tuple[int, int]] = field(default_factory=list)
    partition: Optional[object] = None


@runtime_checkable
class KernelBackend(Protocol):
    """The primitive operations a dictionary-construction backend provides.

    All methods must return values identical to the ``naive`` reference
    backend for the same inputs — backends trade time, never results.
    """

    name: str

    def prepare(self, table: ResponseTable) -> None:
        """Materialise whatever cached view this backend scores from.

        Called once per table by the build driver, outside the per-phase
        timers and before a parallel build pickles the table to its
        workers — so derived layouts ship with the table instead of
        being re-derived per worker process.  Must be idempotent; the
        naive backend's is a no-op.
        """
        ...

    def procedure1(
        self,
        table: ResponseTable,
        order: Sequence[int],
        lower: int,
        timings: Optional[Dict[str, float]] = None,
    ) -> Procedure1Run:
        """Greedy per-test baseline selection over one test order.

        ``timings``, when a dict is passed, accumulates the seconds spent
        in the candidate-scoring loop under key ``"scoring"`` (bench
        instrumentation; pass ``None`` in production).
        """
        ...

    def candidate_distances(
        self, table: ResponseTable, test_index: int, partition
    ) -> List[Tuple[int, Signature, List[int]]]:
        """``(dist, signature, members)`` per candidate of ``Z_j``, eagerly."""
        ...

    def refine_scores(
        self, table: ResponseTable, test_index: int, partition
    ) -> List[int]:
        """Class-major ``dist(z)`` per candidate id of ``Z_j`` (0 = fault-free).

        One pass over the live classes of ``partition`` (a
        :class:`~repro.partition.FaultPartition`) scores *every* candidate
        of the test at once; ``dist[sid]`` is the number of
        still-indistinguished pairs candidate ``sid`` would split.  The
        member lists of :meth:`candidate_distances` are not computed —
        this is the refinement-delta primitive the selection loops drive.
        """
        ...

    def indistinguished_for(
        self, table: ResponseTable, baselines: Sequence[Signature]
    ) -> int:
        """Indistinguished pairs of the same/different rows under ``baselines``."""
        ...

    def passfail_indistinguished(self, table: ResponseTable) -> int:
        """Indistinguished pairs of the pass/fail dictionary."""
        ...

    def full_indistinguished(self, table: ResponseTable) -> int:
        """Indistinguished pairs of the full dictionary."""
        ...

    def replace(
        self,
        table: ResponseTable,
        baselines: Sequence[Signature],
        max_passes: int,
    ) -> Tuple[List[Signature], int, int, int, int]:
        """Procedure 2 hill-climb.

        Returns ``(baselines, distinguished, passes, replacements,
        attempts)``.
        """
        ...


_REGISTRY: Dict[str, Callable[[], KernelBackend]] = {}
_INSTANCES: Dict[str, KernelBackend] = {}
_DESCRIPTIONS: Dict[str, str] = {}


def register_backend(
    name: str, factory: Callable[[], KernelBackend], description: str = ""
) -> None:
    """Register a backend factory under ``name`` (last registration wins).

    ``description`` is a short human-readable phrase surfaced wherever
    the registry is rendered for users — notably the CLI ``--backend``
    help via :func:`backend_choices_help`.
    """
    _REGISTRY[name] = factory
    _DESCRIPTIONS[name] = description
    _INSTANCES.pop(name, None)


def available_backends() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def backend_descriptions() -> Dict[str, str]:
    """``name -> description`` for every registered backend, name-sorted."""
    return {name: _DESCRIPTIONS.get(name, "") for name in available_backends()}


def backend_choices_help() -> str:
    """The one help string describing every registered backend.

    Generated from the registry so the CLI ``--backend`` flag (and any
    other surface quoting it) can never drift from
    :func:`available_backends` — a drift test in
    ``tests/kernels/test_backends.py`` holds them together.
    """
    parts = ", ".join(
        f"'{name}' ({description})" if description else f"'{name}'"
        for name, description in backend_descriptions().items()
    )
    return (
        f"kernel backend for the inner loops: {parts}; default "
        f"${BACKEND_ENV} or '{DEFAULT_BACKEND}'. Results are identical "
        f"for any choice, see docs/kernels.md"
    )


def default_backend_name() -> str:
    """The process-wide default: ``$REPRO_BACKEND`` or ``packed``."""
    return os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND


def get_backend(name: Optional[str] = None) -> KernelBackend:
    """Resolve a backend instance by name (default: :func:`default_backend_name`).

    Instances are cached per name — backends are stateless between calls.
    """
    resolved = name or default_backend_name()
    instance = _INSTANCES.get(resolved)
    if instance is None:
        try:
            factory = _REGISTRY[resolved]
        except KeyError:
            raise KeyError(
                f"unknown kernel backend {resolved!r}; "
                f"available: {', '.join(available_backends())}"
            ) from None
        instance = _INSTANCES[resolved] = factory()
    return instance
