"""Column interning: the packed representation of a response table.

A :class:`~repro.sim.responses.ResponseTable` stores per-fault sparse
signature dicts — ideal for construction, terrible for the inner loops,
which compare tuple signatures one pair at a time.  Interning replaces
every signature with a small integer id *per test column*:

* ``cols[j][i]`` is the id of fault ``i``'s response under test ``j``;
  id ``0`` is always the fault-free response, ids ``1..`` enumerate the
  distinct failing signatures in the order
  :meth:`~repro.sim.responses.ResponseTable.failing_signatures` reports
  them (first-fault order), so candidate index == signature id.
* ``sigs[j]`` maps ids back to signatures (``sigs[j][0] is PASS``).
* ``det_words[i]`` packs fault ``i``'s pass/fail row into one int (bit
  ``j`` set when test ``j`` detects it) — the uint64-style word layer the
  packed kernels popcount and mask against.

Everything is plain lists/dicts/ints, so an interned table pickles with
its :class:`ResponseTable` and ships to restart worker processes as-is.
Interning time lands in the ``kernel.pack_seconds`` timer.

On top of the interned view, :func:`build_vector_layout` derives the
*word-array layout* the ``vector`` backend sweeps: the same ids laid out
as flat, contiguous machine-word blocks (stdlib :mod:`array` storage, so
the layout pickles with the table; numpy views are derived zero-copy at
compute time and never pickled):

* ``col_words`` — every column concatenated test-major
  (``col_words[j * n + i] == cols[j][i]``), 32-bit;
* ``det_offsets`` / ``det_index`` / ``det_sid`` — a CSR encoding of the
  detected (test, fault) entries: for test ``j``, positions
  ``det_offsets[j]:det_offsets[j + 1]`` list the detected fault indices
  and their signature ids in ascending fault order;
* ``det_blocks`` — the pass/fail rows as fault-major 64-bit words
  (``W = ceil(n_tests / 64)`` words per fault, bit ``j`` of word
  ``j // 64`` set when test ``j`` detects the fault) — ``det_words``
  re-expressed as fixed-width blocks.

Layout-building time lands in ``kernel.vector_pack_seconds`` and counts
``kernel.vector_layouts``.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..obs import get_default_registry
from ..sim.responses import PASS, ResponseTable, Signature

#: Bits per ``det_blocks`` word.
WORD_BITS = 64
_WORD_MASK = (1 << WORD_BITS) - 1


@dataclass
class InternedTable:
    """The packed-column view of one response table."""

    n_faults: int
    n_tests: int
    #: Per test: signature id per fault (0 = fault-free).
    cols: List[List[int]]
    #: Per test: id -> signature (index 0 is PASS), i.e. the candidate set Z_j.
    sigs: List[List[Signature]]
    #: Per test: signature -> id (includes PASS -> 0).
    sig_ids: List[Dict[Signature, int]]
    #: Per fault: detection word (bit j = detected by test j).
    det_words: List[int]

    def n_candidates(self, test_index: int) -> int:
        """``|Z_j|``: the fault-free response plus the distinct failing ones."""
        return len(self.sigs[test_index])

    @property
    def vector(self) -> "VectorLayout":
        """The word-array layout (:class:`VectorLayout`), built lazily.

        Cached on the instance (outside the dataclass fields) so it
        pickles along with the interned view to restart workers.
        """
        layout = self.__dict__.get("_vector")
        if layout is None:
            layout = self.__dict__["_vector"] = build_vector_layout(self)
        return layout


def intern_response_table(table: ResponseTable) -> InternedTable:
    """Intern every column of ``table`` (see the module docstring)."""
    registry = get_default_registry()
    with registry.timer("kernel.pack_seconds").time():
        n = table.n_faults
        cols: List[List[int]] = []
        sigs: List[List[Signature]] = []
        sig_ids: List[Dict[Signature, int]] = []
        det_words = [0] * n
        for j in range(table.n_tests):
            failing = table.failing_signatures(j)
            groups = table.failing_groups(j)
            col = [0] * n
            bit = 1 << j
            for sid, group in enumerate(groups, 1):
                for i in group:
                    col[i] = sid
                    det_words[i] |= bit
            cols.append(col)
            sigs.append([PASS] + list(failing))
            sig_ids.append(
                {sig: sid for sid, sig in enumerate([PASS] + list(failing))}
            )
        registry.counter("kernel.tables_packed").inc()
    return InternedTable(n, table.n_tests, cols, sigs, sig_ids, det_words)


@dataclass
class VectorLayout:
    """Flat word-array view of an :class:`InternedTable` (module docstring).

    All storage is stdlib :class:`array.array` — ``'i'`` (32-bit signed)
    for ids and indices, ``'q'`` for offsets, ``'Q'`` for detection
    words — so the layout pickles compactly with its table.  Numpy
    consumers view the buffers zero-copy (``numpy.frombuffer``); those
    views are cached privately and stripped from the pickled state.
    """

    n_faults: int
    n_tests: int
    #: Words per fault in ``det_blocks``: ``ceil(n_tests / WORD_BITS)``.
    det_width: int
    #: Test-major flat columns: ``col_words[j * n_faults + i]``.
    col_words: array
    #: CSR offsets (length ``n_tests + 1``) into ``det_index``/``det_sid``.
    det_offsets: array
    #: Detected fault index per (test, fault) entry, ascending per test.
    det_index: array
    #: Failing-signature id (>= 1) per detected entry.
    det_sid: array
    #: Fault-major detection words: ``det_blocks[i * det_width + w]``.
    det_blocks: array

    def __getstate__(self):
        return {k: v for k, v in self.__dict__.items() if not k.startswith("_")}

    def __setstate__(self, state):
        self.__dict__.update(state)


def build_vector_layout(interned: InternedTable, use_numpy=None) -> VectorLayout:
    """Lay ``interned`` out as contiguous word arrays (module docstring).

    ``use_numpy`` forces the construction path: ``True``/``False`` pin
    it, ``None`` (default) uses numpy when importable.  Both paths
    produce byte-identical arrays — the round-trip property tests in
    ``tests/kernels/test_vector_layout.py`` hold them together.
    """
    if use_numpy is None:
        try:
            import numpy  # noqa: F401
            use_numpy = True
        except ImportError:
            use_numpy = False
    registry = get_default_registry()
    with registry.timer("kernel.vector_pack_seconds").time():
        n, k = interned.n_faults, interned.n_tests
        width = (k + WORD_BITS - 1) // WORD_BITS
        if use_numpy:
            layout = _build_layout_numpy(interned, n, k, width)
        else:
            layout = _build_layout_python(interned, n, k, width)
        registry.counter("kernel.vector_layouts").inc()
    return layout


def _build_layout_python(interned, n, k, width):
    col_words = array("i")
    det_offsets = array("q", bytes(8 * (k + 1)))
    det_index = array("i")
    det_sid = array("i")
    pos = 0
    for j, col in enumerate(interned.cols):
        col_words.extend(col)
        for i, sid in enumerate(col):
            if sid:
                det_index.append(i)
                det_sid.append(sid)
                pos += 1
        det_offsets[j + 1] = pos
    det_blocks = array("Q", bytes(8 * n * width))
    for i, word in enumerate(interned.det_words):
        base = i * width
        w = 0
        while word:
            det_blocks[base + w] = word & _WORD_MASK
            word >>= WORD_BITS
            w += 1
    return VectorLayout(
        n, k, width, col_words, det_offsets, det_index, det_sid, det_blocks
    )


def _build_layout_numpy(interned, n, k, width):
    import numpy as np

    colmat = np.zeros((k, n), dtype=np.int32)
    for j, col in enumerate(interned.cols):
        colmat[j] = col
    j_idx, i_idx = np.nonzero(colmat)  # row-major: test-major, faults ascending
    det_offsets_np = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(np.count_nonzero(colmat, axis=1), out=det_offsets_np[1:])
    det_index_np = i_idx.astype(np.int32)
    det_sid_np = colmat[j_idx, i_idx]
    bits = (colmat != 0).T  # (n, k) pass/fail rows
    padded = np.zeros((n, width * WORD_BITS), dtype=np.uint8)
    if k:
        padded[:, :k] = bits
    packed = np.packbits(padded, axis=1, bitorder="little")  # (n, width * 8)
    blocks_np = np.zeros((n, width), dtype=np.uint64)
    for byte in range(8):
        blocks_np |= packed[:, byte::8].astype(np.uint64) << np.uint64(8 * byte)

    def as_array(typecode, np_arr, dtype):
        out = array(typecode)
        out.frombytes(np.ascontiguousarray(np_arr, dtype=dtype).tobytes())
        return out

    return VectorLayout(
        n,
        k,
        width,
        as_array("i", colmat.reshape(-1), np.int32),
        as_array("q", det_offsets_np, np.int64),
        as_array("i", det_index_np, np.int32),
        as_array("i", det_sid_np, np.int32),
        as_array("Q", blocks_np.reshape(-1), np.uint64),
    )


def unpack_vector_layout(layout: VectorLayout) -> Tuple[List[List[int]], List[int]]:
    """Invert the packing: ``(cols, det_words)`` as plain lists/ints.

    Rebuilds the per-test id columns from ``col_words`` and the
    arbitrary-precision detection words from ``det_blocks`` — the
    round-trip property tests assert these equal the source
    :class:`InternedTable` exactly, and that the CSR entries agree with
    the rebuilt columns.
    """
    n, k, width = layout.n_faults, layout.n_tests, layout.det_width
    cols = [
        list(layout.col_words[j * n:(j + 1) * n]) for j in range(k)
    ]
    det_words = []
    for i in range(n):
        word = 0
        for w in range(width - 1, -1, -1):
            word = (word << WORD_BITS) | layout.det_blocks[i * width + w]
        det_words.append(word)
    return cols, det_words
