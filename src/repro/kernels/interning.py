"""Column interning: the packed representation of a response table.

A :class:`~repro.sim.responses.ResponseTable` stores per-fault sparse
signature dicts — ideal for construction, terrible for the inner loops,
which compare tuple signatures one pair at a time.  Interning replaces
every signature with a small integer id *per test column*:

* ``cols[j][i]`` is the id of fault ``i``'s response under test ``j``;
  id ``0`` is always the fault-free response, ids ``1..`` enumerate the
  distinct failing signatures in the order
  :meth:`~repro.sim.responses.ResponseTable.failing_signatures` reports
  them (first-fault order), so candidate index == signature id.
* ``sigs[j]`` maps ids back to signatures (``sigs[j][0] is PASS``).
* ``det_words[i]`` packs fault ``i``'s pass/fail row into one int (bit
  ``j`` set when test ``j`` detects it) — the uint64-style word layer the
  packed kernels popcount and mask against.

Everything is plain lists/dicts/ints, so an interned table pickles with
its :class:`ResponseTable` and ships to restart worker processes as-is.
Interning time lands in the ``kernel.pack_seconds`` timer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..obs import get_default_registry
from ..sim.responses import PASS, ResponseTable, Signature


@dataclass
class InternedTable:
    """The packed-column view of one response table."""

    n_faults: int
    n_tests: int
    #: Per test: signature id per fault (0 = fault-free).
    cols: List[List[int]]
    #: Per test: id -> signature (index 0 is PASS), i.e. the candidate set Z_j.
    sigs: List[List[Signature]]
    #: Per test: signature -> id (includes PASS -> 0).
    sig_ids: List[Dict[Signature, int]]
    #: Per fault: detection word (bit j = detected by test j).
    det_words: List[int]

    def n_candidates(self, test_index: int) -> int:
        """``|Z_j|``: the fault-free response plus the distinct failing ones."""
        return len(self.sigs[test_index])


def intern_response_table(table: ResponseTable) -> InternedTable:
    """Intern every column of ``table`` (see the module docstring)."""
    registry = get_default_registry()
    with registry.timer("kernel.pack_seconds").time():
        n = table.n_faults
        cols: List[List[int]] = []
        sigs: List[List[Signature]] = []
        sig_ids: List[Dict[Signature, int]] = []
        det_words = [0] * n
        for j in range(table.n_tests):
            failing = table.failing_signatures(j)
            groups = table.failing_groups(j)
            col = [0] * n
            bit = 1 << j
            for sid, group in enumerate(groups, 1):
                for i in group:
                    col[i] = sid
                    det_words[i] |= bit
            cols.append(col)
            sigs.append([PASS] + list(failing))
            sig_ids.append(
                {sig: sid for sid, sig in enumerate([PASS] + list(failing))}
            )
        registry.counter("kernel.tables_packed").inc()
    return InternedTable(n, table.n_tests, cols, sigs, sig_ids, det_words)
