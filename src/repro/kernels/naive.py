"""The naive reference backend: the original pure-Python paths.

This backend delegates to (or re-expresses) the signature-at-a-time code
in :mod:`repro.dictionaries.samediff` that predates the kernel layer.  It
exists as the differential oracle for ``packed`` and as the simplest
possible statement of the procedures' semantics — every other backend
must match it bit for bit.

The imports of ``samediff`` internals happen inside method bodies:
``samediff`` itself imports the kernel registry at module level, and a
top-level import back would cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.responses import ResponseTable, Signature
from .base import Procedure1Run


class NaiveBackend:
    """Reference implementations (see the module docstring)."""

    name = "naive"

    def prepare(self, table: ResponseTable) -> None:
        """No cached view to build: the reference paths read the table raw."""

    def procedure1(
        self,
        table: ResponseTable,
        order: Sequence[int],
        lower: int,
        timings: Optional[Dict[str, float]] = None,
    ) -> Procedure1Run:
        from ..dictionaries.samediff import _select_into_partition
        from ..partition import FaultPartition

        return _select_into_partition(
            table, order, lower, FaultPartition(range(table.n_faults)), timings
        )

    def candidate_distances(
        self, table: ResponseTable, test_index: int, partition
    ) -> List[Tuple[int, Signature, List[int]]]:
        from ..dictionaries.samediff import _candidate_distances

        return _candidate_distances(table, test_index, partition)

    def refine_scores(
        self, table: ResponseTable, test_index: int, partition
    ) -> List[int]:
        from ..dictionaries.samediff import _refine_scores

        return _refine_scores(table, test_index, partition)

    def indistinguished_for(
        self, table: ResponseTable, baselines: Sequence[Signature]
    ) -> int:
        from ..dictionaries.samediff import _rows_for
        from ..partition import rows_indistinguished

        return rows_indistinguished(_rows_for(table, baselines))

    def passfail_indistinguished(self, table: ResponseTable) -> int:
        from ..partition import rows_indistinguished

        return rows_indistinguished(
            table.detection_word(index) for index in range(table.n_faults)
        )

    def full_indistinguished(self, table: ResponseTable) -> int:
        from ..partition import rows_indistinguished

        return rows_indistinguished(
            table.full_row(index) for index in range(table.n_faults)
        )

    def replace(
        self,
        table: ResponseTable,
        baselines: Sequence[Signature],
        max_passes: int,
    ) -> Tuple[List[Signature], int, int, int, int]:
        from ..dictionaries.samediff import _replace_naive

        return _replace_naive(table, baselines, max_passes)
