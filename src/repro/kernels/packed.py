"""The packed kernel backend: interned columns, class-major scoring.

Where the naive reference walks every candidate's member list with
per-fault dict lookups, this backend works *class-major* over interned
integer columns (:mod:`repro.kernels.interning`):

* each unresolved partition class keeps a cached :func:`operator.itemgetter`
  over its members, so gathering the class's responses under a test is a
  single C call;
* one pass over a class accumulates ``a * (s - a)`` into the dist vector
  of *every* candidate at once (the fault-free candidate is just id 0),
  with C-level fast paths for the all-same and two-distinct cases;
* splits run through :func:`itertools.compress` masks instead of a
  Python filter loop;
* each class carries a *detection-union word* (the OR of its members'
  pass/fail rows, exact for small classes): one shift-and-mask decides
  whether a test can touch the class at all, which is what makes the
  late refinement stages — where almost every class is settled for
  almost every test — cheap.

Selection-loop semantics (best/``LOWER``-cutoff bookkeeping, tie-breaks,
split conditions) replicate :func:`repro.dictionaries.samediff.select_baselines`
exactly; the differential and property tests in ``tests/kernels`` hold the
two backends byte-identical.
"""

from __future__ import annotations

import time
from functools import reduce
from itertools import compress
from operator import itemgetter, not_, or_
from typing import Dict, List, Optional, Sequence, Tuple

from ..partition import indistinguished_after_split, pairs_within
from ..sim.responses import PASS, ResponseTable, Signature
from .base import Procedure1Run

#: Classes at or below this size keep an exact detection-union word
#: (recomputed on split); larger classes use the inherited superset,
#: which is almost always all-ones anyway and not worth maintaining.
EXACT_UNION_LIMIT = 16


class PackedBackend:
    """Interned-column kernels (see the module docstring)."""

    name = "packed"

    def prepare(self, table: ResponseTable) -> None:
        """Materialise the interned columns (idempotent, cached on the table)."""
        table.interned  # noqa: B018 - touch to materialise the cache

    # ------------------------------------------------------------------
    # Procedure 1
    # ------------------------------------------------------------------
    def procedure1(
        self,
        table: ResponseTable,
        order: Sequence[int],
        lower: int,
        timings: Optional[Dict[str, float]] = None,
    ) -> Procedure1Run:
        it = table.interned
        n, cols, sigs = it.n_faults, it.cols, it.sigs
        det_get = it.det_words.__getitem__

        classes: List[List[int]]
        getters: List[Optional[itemgetter]]
        if n >= 2:
            members0 = list(range(n))
            classes = [members0]
            getters = [itemgetter(*members0)]
            duws = [
                -1
                if n > EXACT_UNION_LIMIT
                else reduce(or_, map(det_get, members0), 0)
            ]
            live = [0]
        else:
            classes, getters, duws, live = [], [], [], []
        dead = 0

        distinguished = 0
        evaluated = 0
        cutoffs = 0
        baselines: List[Signature] = [PASS] * it.n_tests
        winners: List[Tuple[int, int]] = []

        for j in order:
            colj = cols[j]
            ncand = len(sigs[j])
            dist = [0] * ncand
            split_info: List[Tuple[int, tuple]] = []
            si_append = split_info.append

            if timings is not None:
                t0 = time.perf_counter()
            for c in live:
                if not duws[c] >> j & 1:
                    continue
                members = classes[c]
                s = len(members)
                if s == 2:
                    su, sv = getters[c](colj)
                    if su != sv:
                        dist[su] += 1
                        dist[sv] += 1
                        si_append((c, (su, sv)))
                elif s > 2:
                    tup = getters[c](colj)
                    first = tup[0]
                    a0 = tup.count(first)
                    if a0 != s:
                        last = tup[-1]
                        if last != first and a0 + (a1 := tup.count(last)) == s:
                            split_pairs = a0 * a1
                            dist[first] += split_pairs
                            dist[last] += split_pairs
                        else:
                            counts: Dict[int, int] = {}
                            for sid in tup:
                                counts[sid] = counts.get(sid, 0) + 1
                            for sid, a in counts.items():
                                dist[sid] += a * (s - a)
                        si_append((c, tup))
            if timings is not None:
                timings["scoring"] = timings.get("scoring", 0.0) + (
                    time.perf_counter() - t0
                )

            # The selection loop, bit-for-bit as in the naive path: first
            # maximum wins, LOWER consecutive non-improvements cut off.
            best = -1
            best_index = 0
            consecutive = 0
            for t in range(ncand):
                evaluated += 1
                d = dist[t]
                if d > best:
                    best = d
                    best_index = t
                    consecutive = 0
                elif d < best:
                    consecutive += 1
                    if consecutive >= lower:
                        cutoffs += 1
                        break
            baselines[j] = sigs[j][best_index]

            if best > 0:
                winners.append((j, best_index))
                for c, tup in split_info:
                    members = classes[c]
                    s = len(members)
                    if best_index:
                        a = tup.count(best_index)
                        if a == 0 or a == s:
                            continue
                        inside = map(best_index.__eq__, tup)
                        moved = list(compress(members, inside))
                        outside = map(best_index.__ne__, tup)
                        remaining = list(compress(members, outside))
                    else:
                        a = s - tup.count(0)
                        if a == 0 or a == s:
                            continue
                        moved = list(compress(members, tup))
                        remaining = list(compress(members, map(not_, tup)))
                    distinguished += a * (s - a)
                    classes[c] = remaining
                    new_cid = len(classes)
                    classes.append(moved)
                    n_remaining = len(remaining)
                    n_moved = len(moved)
                    old_union = duws[c]
                    if n_remaining >= 2:
                        getters[c] = itemgetter(*remaining)
                        if n_remaining <= EXACT_UNION_LIMIT:
                            duws[c] = reduce(or_, map(det_get, remaining), 0)
                    else:
                        dead += 1
                    if n_moved >= 2:
                        getters.append(itemgetter(*moved))
                        live.append(new_cid)
                        duws.append(
                            reduce(or_, map(det_get, moved), 0)
                            if n_moved <= EXACT_UNION_LIMIT
                            else old_union
                        )
                    else:
                        getters.append(None)
                        duws.append(0)
                if dead * 2 > len(live):
                    live = [c for c in live if len(classes[c]) >= 2]
                    dead = 0

        return Procedure1Run(baselines, distinguished, evaluated, cutoffs, winners)

    # ------------------------------------------------------------------
    # dist(z) against an externally maintained partition
    # ------------------------------------------------------------------
    def refine_scores(
        self, table: ResponseTable, test_index: int, partition
    ) -> List[int]:
        return interned_refine_scores(table, test_index, partition)

    def candidate_distances(
        self, table: ResponseTable, test_index: int, partition
    ) -> List[Tuple[int, Signature, List[int]]]:
        it = table.interned
        dist = interned_refine_scores(table, test_index, partition)
        groups = table.failing_groups(test_index)
        detected = [i for group in groups for i in group]
        candidates = [(dist[0], PASS, detected)]
        for sid, group in enumerate(groups, 1):
            candidates.append((dist[sid], it.sigs[test_index][sid], group))
        return candidates

    # ------------------------------------------------------------------
    # indistinguished-pair counts via partition refinement
    # ------------------------------------------------------------------
    def indistinguished_for(
        self, table: ResponseTable, baselines: Sequence[Signature]
    ) -> int:
        it = table.interned
        baseline_ids = [
            it.sig_ids[j].get(tuple(baseline), -1)
            for j, baseline in enumerate(baselines)
        ]
        classes = _initial_classes(it.n_faults)
        for j, baseline_id in enumerate(baseline_ids):
            if not classes:
                break
            if baseline_id < 0:
                # A baseline outside Z_j sets every row bit: no split.
                continue
            colj = it.cols[j]
            refined: List[List[int]] = []
            for members in classes:
                same = [i for i in members if colj[i] == baseline_id]
                if len(same) in (0, len(members)):
                    refined.append(members)
                    continue
                if len(same) > 1:
                    refined.append(same)
                if len(members) - len(same) > 1:
                    same_set = set(same)
                    refined.append([i for i in members if i not in same_set])
            classes = refined
        return sum(pairs_within(len(members)) for members in classes)

    def passfail_indistinguished(self, table: ResponseTable) -> int:
        groups: Dict[int, int] = {}
        for word in table.interned.det_words:
            groups[word] = groups.get(word, 0) + 1
        return sum(pairs_within(count) for count in groups.values())

    def full_indistinguished(self, table: ResponseTable) -> int:
        it = table.interned
        classes = _initial_classes(it.n_faults)
        for j in range(it.n_tests):
            if not classes:
                break
            colj = it.cols[j]
            refined: List[List[int]] = []
            for members in classes:
                buckets: Dict[int, List[int]] = {}
                for i in members:
                    buckets.setdefault(colj[i], []).append(i)
                for bucket in buckets.values():
                    if len(bucket) > 1:
                        refined.append(bucket)
            classes = refined
        return sum(pairs_within(len(members)) for members in classes)

    # ------------------------------------------------------------------
    # Procedure 2
    # ------------------------------------------------------------------
    def replace(
        self,
        table: ResponseTable,
        baselines: Sequence[Signature],
        max_passes: int,
    ) -> Tuple[List[Signature], int, int, int, int]:
        it = table.interned
        k, n = it.n_tests, it.n_faults
        current_ids = [
            it.sig_ids[j].get(tuple(baseline), -1)
            for j, baseline in enumerate(baselines)
        ]
        if any(sid < 0 for sid in current_ids):
            # A baseline outside Z_j can't be expressed as an interned id;
            # fall back to the reference implementation (it never improves
            # anything Procedure 2 wouldn't also find from Z_j, but the
            # public function accepts arbitrary baselines).
            from .naive import NaiveBackend

            return NaiveBackend().replace(table, baselines, max_passes)

        rows = [0] * n
        for j in range(k):
            colj = it.cols[j]
            baseline_id = current_ids[j]
            bit = 1 << j
            for i in range(n):
                if colj[i] != baseline_id:
                    rows[i] |= bit

        replacements = 0
        passes = 0
        attempts = 0
        for _ in range(max_passes):
            passes += 1
            improved = False
            for j in range(k):
                colj = it.cols[j]
                ncand = it.n_candidates(j)
                mask = ((1 << k) - 1) ^ (1 << j)
                outside: Dict[int, List[int]] = {}
                for i in range(n):
                    outside.setdefault(rows[i] & mask, []).append(i)
                class_sizes: List[int] = []
                per_id: Dict[int, List[Tuple[int, int]]] = {}
                base_indist = 0
                for cid, members in enumerate(outside.values()):
                    size = len(members)
                    class_sizes.append(size)
                    base_indist += pairs_within(size)
                    counts: Dict[int, int] = {}
                    for i in members:
                        sid = colj[i]
                        counts[sid] = counts.get(sid, 0) + 1
                    for sid, count in counts.items():
                        per_id.setdefault(sid, []).append((cid, count))
                best_id = current_ids[j]
                best_indist = indistinguished_after_split(
                    per_id.get(best_id, ()), class_sizes, base_indist
                )
                for sid in range(ncand):
                    if sid == current_ids[j]:
                        continue
                    attempts += 1
                    indist = indistinguished_after_split(
                        per_id.get(sid, ()), class_sizes, base_indist
                    )
                    if indist < best_indist:
                        best_indist = indist
                        best_id = sid
                if best_id != current_ids[j]:
                    improved = True
                    replacements += 1
                    current_ids[j] = best_id
                    bit = 1 << j
                    for i in range(n):
                        if colj[i] != best_id:
                            rows[i] |= bit
                        else:
                            rows[i] &= mask
            if not improved:
                break
        row_groups: Dict[int, int] = {}
        for row in rows:
            row_groups[row] = row_groups.get(row, 0) + 1
        indistinguished = sum(
            pairs_within(count) for count in row_groups.values()
        )
        distinguished = pairs_within(n) - indistinguished
        final = [it.sigs[j][current_ids[j]] for j in range(k)]
        return final, distinguished, passes, replacements, attempts


def _initial_classes(n_faults: int) -> List[List[int]]:
    return [list(range(n_faults))] if n_faults >= 2 else []


def interned_refine_scores(
    table: ResponseTable, test_index: int, partition
) -> List[int]:
    """Class-major ``dist(z)`` over interned columns, one pass per test.

    ``dist[sid]`` is the number of still-indistinguished pairs of
    ``partition`` that candidate ``sid`` of ``Z_j`` splits (id 0 is the
    fault-free response).  Shared by the ``packed`` and ``vector``
    backends' :meth:`refine_scores`; byte-identical to the naive
    reference scoring by the differential tests in ``tests/kernels``.
    """
    it = table.interned
    colj = it.cols[test_index]
    dist = [0] * it.n_candidates(test_index)
    for members in partition.classes:
        s = len(members)
        if s < 2:
            continue
        values = [colj[i] for i in members]
        first = values[0]
        a0 = values.count(first)
        if a0 == s:
            continue
        counts: Dict[int, int] = {}
        for sid in values:
            counts[sid] = counts.get(sid, 0) + 1
        for sid, a in counts.items():
            dist[sid] += a * (s - a)
    return dist
