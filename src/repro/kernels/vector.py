"""The vector kernel backend: batched word-array candidate scoring.

Where ``packed`` walks each unresolved class with per-class tuple
gathers, this backend scores *every* candidate of a test in one batched
sweep over the flat word-array layout
(:class:`~repro.kernels.interning.VectorLayout`):

* the detected (test, fault) entries of test ``j`` are one contiguous
  CSR slice — no per-class member lists on the hot path;
* each live (unresolved, size >= 2) class has a dense row index; one
  gather maps every detected fault to ``dense_class * ncand + sid`` and
  one histogram of those keys yields the full ``(class, candidate)``
  count matrix, from which every ``dist(z)`` drops out as
  ``sum_c a * (s - a)`` in a single vectorized expression;
* splits reuse the same counts: the winning candidate's column says how
  many members leave each class, so relabelling is one masked scatter.

Numpy drives the sweep when it is importable; otherwise (or when
``REPRO_VECTOR_FORCE_FALLBACK`` is set, or ``force_fallback=True`` is
passed) a dependency-free pure-Python path runs the *same algorithm*
over the stdlib :mod:`array` buffers.  Both paths — and the optional
within-restart sharded histogram (``REPRO_VECTOR_SHARDS``, see
:mod:`repro.parallel.shards`) — are byte-identical to ``naive`` and
``packed``: same baselines, counts, winners and metrics, held together
by the differential harness in ``tests/kernels``.

Procedure 2 (:meth:`VectorBackend.replace`) delegates to the packed
implementation: its inner loop is an id-at-a-time scan over one test at
a time by construction, and sharing the implementation keeps the
replacement trajectory trivially identical across backends.

Selection-loop semantics (first maximum wins, ``LOWER`` consecutive
non-improvements cut off) replicate
:func:`repro.dictionaries.samediff.select_baselines` exactly.
"""

from __future__ import annotations

import os
import time
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from ..partition import pairs_within
from ..sim.responses import PASS, ResponseTable, Signature
from .base import Procedure1Run
from .packed import PackedBackend

#: Set (to any non-empty value) to force the pure-Python fallback even
#: when numpy is importable.  Read when the backend instance is built.
FORCE_FALLBACK_ENV = "REPRO_VECTOR_FORCE_FALLBACK"

#: Within-restart candidate-scoring shards (>= 2 enables; numpy mode only).
SHARDS_ENV = "REPRO_VECTOR_SHARDS"

#: Minimum detected entries in a test before its histogram is sharded.
SHARD_MIN_ENV = "REPRO_VECTOR_SHARD_MIN"

#: Dense count matrices at or below this many cells always use one
#: ``bincount``; larger ones fall back to a sparse ``unique`` histogram
#: unless the entry count justifies the dense allocation.
_DENSE_MIN_CELLS = 1 << 16


def _np_views(layout):
    """Zero-copy numpy views of a layout's stdlib-array buffers, cached.

    The cache key starts with ``_`` so :meth:`VectorLayout.__getstate__`
    strips it — only the compact stdlib arrays ship to restart workers.
    """
    views = layout.__dict__.get("_np_views")
    if views is None:
        import numpy as np

        views = layout.__dict__["_np_views"] = {
            "col": np.frombuffer(layout.col_words, dtype=np.int32).reshape(
                layout.n_tests, layout.n_faults
            ),
            "offsets": np.frombuffer(layout.det_offsets, dtype=np.int64),
            "det_index": np.frombuffer(layout.det_index, dtype=np.int32),
            "det_sid": np.frombuffer(layout.det_sid, dtype=np.int32),
            "blocks": np.frombuffer(layout.det_blocks, dtype=np.uint64).reshape(
                layout.n_faults, layout.det_width
            ),
        }
    return views


class VectorBackend:
    """Batched word-array kernels (see the module docstring)."""

    name = "vector"

    def __init__(
        self,
        force_fallback: Optional[bool] = None,
        shards: Optional[int] = None,
        shard_min_entries: Optional[int] = None,
    ) -> None:
        if force_fallback is None:
            force_fallback = bool(os.environ.get(FORCE_FALLBACK_ENV))
        self._np = None
        if not force_fallback:
            try:
                import numpy

                self._np = numpy
            except ImportError:
                self._np = None
        self.uses_numpy = self._np is not None
        self._packed = PackedBackend()
        self._sharder = None
        if shards is None:
            shards = int(os.environ.get(SHARDS_ENV, "0") or 0)
        if self.uses_numpy and shards and shards > 1:
            # Imported lazily: repro.parallel reaches back into the
            # kernel registry, so a module-level import would cycle.
            from ..parallel.shards import CandidateSharder, default_min_entries

            if shard_min_entries is None:
                shard_min_entries = default_min_entries()
            self._sharder = CandidateSharder(
                shards, min_entries=shard_min_entries
            )

    # ------------------------------------------------------------------
    # preparation
    # ------------------------------------------------------------------
    def prepare(self, table: ResponseTable) -> None:
        """Materialise the interned view and its word-array layout."""
        layout = table.interned.vector
        if self.uses_numpy:
            _np_views(layout)

    # ------------------------------------------------------------------
    # Procedure 1
    # ------------------------------------------------------------------
    def procedure1(
        self,
        table: ResponseTable,
        order: Sequence[int],
        lower: int,
        timings: Optional[Dict[str, float]] = None,
    ) -> Procedure1Run:
        if self._np is None:
            return self._procedure1_python(table, order, lower, timings)
        return self._procedure1_numpy(table, order, lower, timings)

    def _procedure1_numpy(self, table, order, lower, timings):
        np = self._np
        it = table.interned
        views = _np_views(it.vector)
        offsets = views["offsets"]
        det_index = views["det_index"]
        det_sid = views["det_sid"]
        sigs = it.sigs
        n = it.n_faults

        baselines: List[Signature] = [PASS] * it.n_tests
        winners: List[Tuple[int, int]] = []
        distinguished = 0
        evaluated = 0
        cutoffs = 0

        # Class state: every fault starts in class 0; each split allocates
        # one new id, so at most n ids ever exist.  ``lmap`` maps a class
        # id to its dense row in the live (size >= 2) set, -1 when dead.
        labels = np.zeros(n, dtype=np.int64)
        cap = n + 2
        sizes = np.zeros(cap, dtype=np.int64)
        lmap = np.full(cap, -1, dtype=np.int64)
        if n >= 2:
            sizes[0] = n
            lmap[0] = 0
            live_ids = np.zeros(1, dtype=np.int64)
            live_sizes = np.array([n], dtype=np.int64)
        else:
            live_ids = np.zeros(0, dtype=np.int64)
            live_sizes = np.zeros(0, dtype=np.int64)
        nclasses = 1

        sharder = self._sharder

        for j in order:
            ncand = len(sigs[j])
            nlive = live_ids.size
            lo = int(offsets[j])
            hi = int(offsets[j + 1])
            counts = None
            sparse = None
            d_per = None
            if nlive and hi > lo:
                if timings is not None:
                    t0 = time.perf_counter()
                di = det_index[lo:hi]
                ds = det_sid[lo:hi]
                # Dead classes bucket into a trash row past the live ones,
                # dropped by the slice below — no boolean filter needed.
                dlab = lmap[labels[di]]
                dlab = np.where(dlab < 0, nlive, dlab)
                key = dlab * ncand + ds
                length = (nlive + 1) * ncand
                if length <= _DENSE_MIN_CELLS or length <= 4 * (hi - lo):
                    if sharder is not None and sharder.wants(hi - lo):
                        counts_flat = sharder.counts(key, length)
                    else:
                        counts_flat = np.bincount(key, minlength=length)
                    counts = counts_flat[: nlive * ncand].reshape(nlive, ncand)
                    d_per = counts.sum(axis=1)
                    dist_arr = (counts * (live_sizes[:, None] - counts)).sum(
                        axis=0
                    )
                    dist_arr[0] = (d_per * (live_sizes - d_per)).sum()
                else:
                    # Sparse histogram: the dense (live, candidate) matrix
                    # would be huge and almost empty.
                    ids, cnt = np.unique(key, return_counts=True)
                    keep = ids < nlive * ncand
                    ids = ids[keep]
                    cnt = cnt[keep]
                    cls = ids // ncand
                    sid = ids - cls * ncand
                    sparse = (cls, sid, cnt)
                    dist_arr = np.zeros(ncand, dtype=np.int64)
                    np.add.at(dist_arr, sid, cnt * (live_sizes[cls] - cnt))
                    d_per = np.zeros(nlive, dtype=np.int64)
                    np.add.at(d_per, cls, cnt)
                    dist_arr[0] = (d_per * (live_sizes - d_per)).sum()
                dist = dist_arr.tolist()
                if timings is not None:
                    timings["scoring"] = timings.get("scoring", 0.0) + (
                        time.perf_counter() - t0
                    )
            else:
                dist = [0] * ncand

            # The selection loop, bit-for-bit as in the naive path: first
            # maximum wins, LOWER consecutive non-improvements cut off.
            best = -1
            best_index = 0
            consecutive = 0
            for t in range(ncand):
                evaluated += 1
                d = dist[t]
                if d > best:
                    best = d
                    best_index = t
                    consecutive = 0
                elif d < best:
                    consecutive += 1
                    if consecutive >= lower:
                        cutoffs += 1
                        break
            baselines[j] = sigs[j][best_index]

            if best > 0:
                winners.append((j, best_index))
                bi = best_index
                if bi:
                    member_mask = ds == bi
                    if counts is not None:
                        a_dense = counts[:, bi]
                    else:
                        cls, sid, cnt = sparse
                        a_dense = np.zeros(nlive, dtype=np.int64)
                        sel = sid == bi
                        a_dense[cls[sel]] = cnt[sel]
                else:
                    member_mask = None  # every detected entry
                    a_dense = d_per
                split = (a_dense > 0) & (a_dense < live_sizes)
                if split.any():
                    distinguished += int(
                        (a_dense * (live_sizes - a_dense))[split].sum()
                    )
                    nsplit = int(split.sum())
                    # Dense row -> freshly allocated class id (valid only
                    # where ``split``; other rows never get read).
                    newid = np.cumsum(split) + (nclasses - 1)
                    split_ext = np.append(split, False)  # trash row: no move
                    move = split_ext[dlab]
                    if member_mask is not None:
                        move &= member_mask
                    labels[di[move]] = newid[dlab[move]]
                    a_split = a_dense[split]
                    sizes[nclasses:nclasses + nsplit] = a_split
                    sizes[live_ids[split]] -= a_split
                    nclasses += nsplit
                    live_ids = np.nonzero(sizes[:nclasses] >= 2)[0]
                    lmap[:nclasses] = -1
                    lmap[live_ids] = np.arange(live_ids.size)
                    live_sizes = sizes[live_ids]

        return Procedure1Run(baselines, distinguished, evaluated, cutoffs, winners)

    def _procedure1_python(self, table, order, lower, timings):
        it = table.interned
        layout = it.vector
        offsets = layout.det_offsets
        det_index = layout.det_index
        det_sid = layout.det_sid
        sigs = it.sigs
        n = it.n_faults

        baselines: List[Signature] = [PASS] * it.n_tests
        winners: List[Tuple[int, int]] = []
        distinguished = 0
        evaluated = 0
        cutoffs = 0

        labels = array("q", bytes(8 * n))  # class id per fault, all zero
        sizes = [n]  # class id -> member count
        nclasses = 1

        for j in order:
            ncand = len(sigs[j])
            lo = offsets[j]
            hi = offsets[j + 1]
            dist = [0] * ncand
            if timings is not None:
                t0 = time.perf_counter()
            pair_counts: Dict[int, int] = {}
            det_counts: Dict[int, int] = {}
            for pos in range(lo, hi):
                c = labels[det_index[pos]]
                if sizes[c] < 2:
                    continue
                key = c * ncand + det_sid[pos]
                pair_counts[key] = pair_counts.get(key, 0) + 1
                det_counts[c] = det_counts.get(c, 0) + 1
            for key, a in pair_counts.items():
                c, sid = divmod(key, ncand)
                dist[sid] += a * (sizes[c] - a)
            total0 = 0
            for c, d in det_counts.items():
                total0 += d * (sizes[c] - d)
            dist[0] = total0
            if timings is not None:
                timings["scoring"] = timings.get("scoring", 0.0) + (
                    time.perf_counter() - t0
                )

            best = -1
            best_index = 0
            consecutive = 0
            for t in range(ncand):
                evaluated += 1
                d = dist[t]
                if d > best:
                    best = d
                    best_index = t
                    consecutive = 0
                elif d < best:
                    consecutive += 1
                    if consecutive >= lower:
                        cutoffs += 1
                        break
            baselines[j] = sigs[j][best_index]

            if best > 0:
                winners.append((j, best_index))
                bi = best_index
                moved: Dict[int, List[int]] = {}
                for pos in range(lo, hi):
                    if bi and det_sid[pos] != bi:
                        continue
                    i = det_index[pos]
                    c = labels[i]
                    if sizes[c] < 2:
                        continue
                    moved.setdefault(c, []).append(i)
                for c, members in moved.items():
                    s = sizes[c]
                    a = len(members)
                    if a == s:
                        continue
                    distinguished += a * (s - a)
                    new_id = nclasses
                    nclasses += 1
                    sizes.append(a)
                    sizes[c] = s - a
                    for i in members:
                        labels[i] = new_id

        return Procedure1Run(baselines, distinguished, evaluated, cutoffs, winners)

    # ------------------------------------------------------------------
    # dist(z) against an externally maintained partition
    # ------------------------------------------------------------------
    def refine_scores(
        self, table: ResponseTable, test_index: int, partition
    ) -> List[int]:
        """Class-major ``dist(z)``, batched over the word-array layout."""
        if self._np is None:
            return self._packed.refine_scores(table, test_index, partition)
        np = self._np
        it = table.interned
        n = it.n_faults
        ncand = it.n_candidates(test_index)
        views = _np_views(it.vector)
        colj = views["col"][test_index]
        dist = [0] * ncand
        if n:
            labels = np.zeros(n, dtype=np.int64)
            sizes_list = []
            dense = 0
            for members in partition.classes:
                if len(members) < 2:
                    continue
                labels[members] = dense
                sizes_list.append(len(members))
                dense += 1
            if dense:
                # Faults in dead (size < 2) classes keep label 0; mask
                # them out by size: a singleton contributes a == s == 1
                # only to its own class, never to row 0 — so filter by
                # membership instead.
                member_mask = np.zeros(n, dtype=bool)
                for members in partition.classes:
                    if len(members) >= 2:
                        member_mask[members] = True
                sizes_np = np.array(sizes_list, dtype=np.int64)
                keep = member_mask & (colj != 0)
                cls = labels[keep]
                sid = colj[keep].astype(np.int64)
                key = cls * ncand + sid
                counts = np.bincount(key, minlength=dense * ncand).reshape(
                    dense, ncand
                )
                d_per = counts.sum(axis=1)
                dist_arr = (counts * (sizes_np[:, None] - counts)).sum(axis=0)
                dist_arr[0] = (d_per * (sizes_np - d_per)).sum()
                dist = dist_arr.tolist()
        return dist

    def candidate_distances(
        self, table: ResponseTable, test_index: int, partition
    ) -> List[Tuple[int, Signature, List[int]]]:
        if self._np is None:
            return self._packed.candidate_distances(table, test_index, partition)
        it = table.interned
        dist = self.refine_scores(table, test_index, partition)
        groups = table.failing_groups(test_index)
        detected = [i for group in groups for i in group]
        candidates = [(dist[0], PASS, detected)]
        for sid, group in enumerate(groups, 1):
            candidates.append((dist[sid], it.sigs[test_index][sid], group))
        return candidates

    # ------------------------------------------------------------------
    # indistinguished-pair counts via row grouping
    # ------------------------------------------------------------------
    def indistinguished_for(
        self, table: ResponseTable, baselines: Sequence[Signature]
    ) -> int:
        if self._np is None:
            return self._packed.indistinguished_for(table, baselines)
        np = self._np
        it = table.interned
        n = it.n_faults
        if n < 2:
            return 0
        k = len(baselines)
        if k == 0:
            return pairs_within(n)
        bids = np.array(
            [
                it.sig_ids[j].get(tuple(baseline), -1)
                for j, baseline in enumerate(baselines)
            ],
            dtype=np.int32,
        ).reshape(k, 1)
        colmat = _np_views(it.vector)["col"][:k]
        # A baseline outside Z_j (id -1) sets every row bit: no split.
        rows = np.packbits((colmat != bids).T, axis=1)
        return _group_pairs(np, rows)

    def passfail_indistinguished(self, table: ResponseTable) -> int:
        if self._np is None:
            return self._packed.passfail_indistinguished(table)
        it = table.interned
        if it.n_tests == 0:
            return pairs_within(it.n_faults)
        return _group_pairs(self._np, _np_views(it.vector)["blocks"])

    def full_indistinguished(self, table: ResponseTable) -> int:
        if self._np is None:
            return self._packed.full_indistinguished(table)
        it = table.interned
        if it.n_tests == 0:
            return pairs_within(it.n_faults)
        return _group_pairs(self._np, _np_views(it.vector)["col"].T)

    # ------------------------------------------------------------------
    # Procedure 2
    # ------------------------------------------------------------------
    def replace(
        self,
        table: ResponseTable,
        baselines: Sequence[Signature],
        max_passes: int,
    ) -> Tuple[List[Signature], int, int, int, int]:
        # Shared with packed on purpose — see the module docstring.
        return self._packed.replace(table, baselines, max_passes)


def _group_pairs(np, mat) -> int:
    """Indistinguished pairs of a row matrix: ``sum C(group, 2)``."""
    if mat.shape[0] < 2:
        return 0
    if mat.shape[1] == 0:
        return pairs_within(mat.shape[0])
    _, counts = np.unique(mat, axis=0, return_counts=True)
    return sum(pairs_within(int(c)) for c in counts.tolist())
