"""Observability: metrics registry, span tracing and progress reporting.

The measurement substrate of the repo — see ``docs/observability.md`` for
the metric name catalog and span taxonomy.  Everything here is
dependency-free and safe to leave on: the default tracer is a no-op, the
default registry costs a handful of dict operations per pipeline call,
and tests isolate themselves with :func:`scoped_registry`.
"""

from .bench import (
    BENCH_SCHEMA,
    BenchCase,
    BenchRecorder,
    BenchResult,
    BenchSchemaError,
    CaseRecorder,
    host_fingerprint,
    load_results,
)
from .metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    NullRegistry,
    Stopwatch,
    Timer,
    disabled,
    get_default_registry,
    scoped_registry,
    set_default_registry,
)
from .progress import (
    CallbackProgress,
    NullProgress,
    ProgressReporter,
    StderrProgress,
)
from .tracing import (
    NullTracer,
    Tracer,
    get_default_tracer,
    load_jsonl,
    scoped_tracer,
    set_default_tracer,
    trace_span,
    validate_nesting,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchCase",
    "BenchRecorder",
    "BenchResult",
    "BenchSchemaError",
    "CallbackProgress",
    "CaseRecorder",
    "host_fingerprint",
    "load_results",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NullProgress",
    "NullRegistry",
    "NullTracer",
    "ProgressReporter",
    "StderrProgress",
    "Stopwatch",
    "Timer",
    "Tracer",
    "disabled",
    "get_default_registry",
    "get_default_tracer",
    "load_jsonl",
    "scoped_registry",
    "scoped_tracer",
    "set_default_registry",
    "set_default_tracer",
    "trace_span",
    "validate_nesting",
]
