"""Machine-readable benchmark results: the ``BENCH_<area>.json`` schema.

Every suite under ``benchmarks/`` records its measurements through a
:class:`BenchRecorder` (handed out by the ``bench`` fixture in
``benchmarks/conftest.py``) instead of hand-rolled ``time.perf_counter()``
pairs, so each run leaves one schema-versioned ``BENCH_<area>.json``
behind.  That file — not a floor assertion in a test body — is what
``tools/bench_report.py`` diffs against the committed baselines in
``benchmarks/baselines/`` to track the perf trajectory PR over PR.

One result file holds:

* a **host fingerprint** (platform, python, CPU count, kernel backend) so
  cross-machine comparisons are visibly cross-machine;
* one entry per **case** — wall/CPU seconds (best of the recorded
  rounds), iteration count, derived throughput, free-form ``info`` and
  explicitly **gated** metrics with a direction and tolerance;
* a **metrics-registry snapshot** taken when the result is finalised,
  including every timer's p50/p90/p99.

The schema is versioned (:data:`BENCH_SCHEMA`); :func:`BenchResult.from_dict`
rejects files written by a different schema so the report tool never
silently misreads an old trajectory.  See ``docs/benchmarking.md``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional

from .metrics import get_default_registry

#: Version of the ``BENCH_*.json`` layout; bump on incompatible change.
BENCH_SCHEMA = 1

#: Result files are named ``BENCH_<area>.json``.
BENCH_PREFIX = "BENCH_"


class BenchSchemaError(ValueError):
    """A result file does not conform to the current bench schema."""


def host_fingerprint() -> Dict[str, object]:
    """Where a result was measured — attached to every ``BenchResult``.

    The report tool prints the fingerprint beside cross-machine deltas,
    because a wall-clock "regression" measured on different hardware is
    an observation about the hardware first.
    """
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 1,
        "backend": os.environ.get("REPRO_BACKEND", "packed"),
    }


@dataclass
class BenchCase:
    """One measured case of a suite (one parameter point of one bench)."""

    name: str
    params: Dict[str, object] = field(default_factory=dict)
    rounds: int = 0
    #: Work units per round; throughput is ``iterations / wall_seconds``.
    iterations: int = 1
    wall_seconds: Optional[float] = None  # best (minimum) over rounds
    cpu_seconds: Optional[float] = None
    wall_samples: List[float] = field(default_factory=list)
    info: Dict[str, object] = field(default_factory=dict)
    #: name -> {"value", "higher_is_better", "tolerance"}; the metrics the
    #: regression gate checks against the committed baseline.
    gates: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @property
    def throughput(self) -> Optional[float]:
        if self.wall_seconds is None or self.wall_seconds <= 0.0:
            return None
        return self.iterations / self.wall_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "params": dict(self.params),
            "rounds": self.rounds,
            "iterations": self.iterations,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "throughput": self.throughput,
            "wall_samples": list(self.wall_samples),
            "info": dict(self.info),
            "gates": {name: dict(spec) for name, spec in self.gates.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchCase":
        if not isinstance(data, dict) or not isinstance(data.get("name"), str):
            raise BenchSchemaError(f"malformed bench case: {data!r}")
        return cls(
            name=data["name"],
            params=dict(data.get("params", {})),
            rounds=int(data.get("rounds", 0)),
            iterations=int(data.get("iterations", 1)),
            wall_seconds=data.get("wall_seconds"),
            cpu_seconds=data.get("cpu_seconds"),
            wall_samples=list(data.get("wall_samples", [])),
            info=dict(data.get("info", {})),
            gates={
                name: dict(spec)
                for name, spec in data.get("gates", {}).items()
            },
        )

    # ------------------------------------------------------------------
    def merge(self, other: "BenchCase") -> None:
        """Fold a repeated run of the same case into this one.

        Timing keeps the best (minimum) side — the usual noise
        discipline; rounds and samples accumulate; gated metrics keep
        whichever value is better in their own direction; ``info`` is
        last-writer-wins.
        """
        if other.name != self.name:
            raise ValueError(
                f"cannot merge case {other.name!r} into {self.name!r}"
            )
        for attr in ("wall_seconds", "cpu_seconds"):
            theirs = getattr(other, attr)
            if theirs is not None:
                ours = getattr(self, attr)
                setattr(self, attr, theirs if ours is None else min(ours, theirs))
        self.rounds += other.rounds
        self.wall_samples.extend(other.wall_samples)
        self.iterations = max(self.iterations, other.iterations)
        self.params.update(other.params)
        self.info.update(other.info)
        for name, spec in other.gates.items():
            mine = self.gates.get(name)
            if mine is None:
                self.gates[name] = dict(spec)
                continue
            better = max if spec.get("higher_is_better", True) else min
            mine["value"] = better(mine["value"], spec["value"])


@dataclass
class BenchResult:
    """Everything one run of one bench area measured."""

    area: str
    quick: bool = False
    host: Dict[str, object] = field(default_factory=host_fingerprint)
    metrics: Dict[str, object] = field(default_factory=dict)
    cases: List[BenchCase] = field(default_factory=list)
    generated_unix: float = field(default_factory=time.time)
    runs: int = 1

    def case(self, name: str) -> Optional[BenchCase]:
        for case in self.cases:
            if case.name == name:
                return case
        return None

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": BENCH_SCHEMA,
            "area": self.area,
            "quick": self.quick,
            "generated_unix": self.generated_unix,
            "runs": self.runs,
            "host": dict(self.host),
            "metrics": self.metrics,
            "cases": [case.as_dict() for case in self.cases],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchResult":
        if not isinstance(data, dict):
            raise BenchSchemaError("bench result must be a JSON object")
        schema = data.get("schema")
        if schema != BENCH_SCHEMA:
            raise BenchSchemaError(
                f"bench schema {schema!r} is not the supported "
                f"schema {BENCH_SCHEMA}"
            )
        area = data.get("area")
        if not isinstance(area, str) or not area:
            raise BenchSchemaError(f"bench result has no area: {data!r}")
        result = cls(
            area=area,
            quick=bool(data.get("quick", False)),
            host=dict(data.get("host", {})),
            metrics=dict(data.get("metrics", {})),
            cases=[BenchCase.from_dict(c) for c in data.get("cases", [])],
            generated_unix=float(data.get("generated_unix", 0.0)),
            runs=int(data.get("runs", 1)),
        )
        return result

    @classmethod
    def load(cls, path: "Path | str") -> "BenchResult":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise BenchSchemaError(f"{path} is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def filename(self) -> str:
        return f"{BENCH_PREFIX}{self.area}.json"

    def write(self, directory: "Path | str") -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / self.filename()
        path.write_text(self.to_json() + "\n")
        return path

    # ------------------------------------------------------------------
    def merge(self, other: "BenchResult") -> None:
        """Fold a repeated run of the same area into this result.

        Cases are matched by name (new names append), ``quick`` stays
        quick only if both runs were quick, and the metrics snapshot and
        host fingerprint follow the most recent run.
        """
        if other.area != self.area:
            raise ValueError(
                f"cannot merge area {other.area!r} into {self.area!r}"
            )
        for theirs in other.cases:
            mine = self.case(theirs.name)
            if mine is None:
                self.cases.append(BenchCase.from_dict(theirs.as_dict()))
            else:
                mine.merge(theirs)
        self.quick = self.quick and other.quick
        if other.metrics:
            self.metrics = dict(other.metrics)
        if other.host:
            self.host = dict(other.host)
        self.generated_unix = max(self.generated_unix, other.generated_unix)
        self.runs += other.runs


class _Measurement:
    """Times one ``with`` block as one round of a case."""

    __slots__ = ("_case", "_wall0", "_cpu0")

    def __init__(self, case: BenchCase) -> None:
        self._case = case
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> "_Measurement":
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        if exc[0] is None:
            _record_round(self._case, wall, cpu)


def _record_round(case: BenchCase, wall: float, cpu: Optional[float]) -> None:
    case.rounds += 1
    case.wall_samples.append(wall)
    if case.wall_seconds is None or wall < case.wall_seconds:
        case.wall_seconds = wall
    if cpu is not None and (case.cpu_seconds is None or cpu < case.cpu_seconds):
        case.cpu_seconds = cpu


class CaseRecorder:
    """The per-case handle suites measure and annotate through."""

    def __init__(self, case: BenchCase) -> None:
        self._case = case

    @property
    def name(self) -> str:
        return self._case.name

    @property
    def wall_seconds(self) -> Optional[float]:
        return self._case.wall_seconds

    def measure(self) -> _Measurement:
        """Time one round: ``with case.measure(): <the measured work>``."""
        return _Measurement(self._case)

    def run(self, fn: Callable[[], object], *, rounds: int = 1) -> object:
        """Measure ``fn`` for ``rounds`` rounds; returns the last result."""
        result: object = None
        for _ in range(rounds):
            with self.measure():
                result = fn()
        return result

    def record(self, wall_seconds: float,
               cpu_seconds: Optional[float] = None) -> None:
        """Adopt one externally measured round (e.g. a kernel's own
        ``timings`` hook, where the wall clock of the block would include
        work the case deliberately excludes)."""
        _record_round(self._case, wall_seconds, cpu_seconds)

    def iterations(self, count: int) -> None:
        """Declare work units per round, for derived throughput."""
        self._case.iterations = max(1, int(count))

    def info(self, values: Optional[Dict[str, object]] = None,
             **kwargs: object) -> None:
        """Attach free-form result data (sizes, counts, resolutions…)."""
        if values:
            self._case.info.update(values)
        if kwargs:
            self._case.info.update(kwargs)

    def gate(self, name: str, value: float, *, higher_is_better: bool = True,
             tolerance: float = 0.25) -> None:
        """Declare a regression-gated metric.

        ``tools/bench_report.py --check`` fails when the measured value
        falls beyond ``tolerance`` (a fraction) on the losing side of the
        committed baseline; exactly at the tolerance boundary still
        passes.
        """
        self._case.gates[name] = {
            "value": float(value),
            "higher_is_better": bool(higher_is_better),
            "tolerance": float(tolerance),
        }


class BenchRecorder:
    """Collects a suite's cases and finalises them into a result file.

    The ``bench`` fixture in ``benchmarks/conftest.py`` creates one per
    suite module and writes ``BENCH_<area>.json`` at teardown; suites
    only ever talk to :meth:`case`.
    """

    def __init__(self, area: str, *, quick: bool = False) -> None:
        self.area = area
        self.quick = quick
        self._cases: List[BenchCase] = []

    def case(self, name: str, **params: object) -> CaseRecorder:
        """Create-or-get the named case (re-entry merges rounds)."""
        for case in self._cases:
            if case.name == name:
                case.params.update(params)
                return CaseRecorder(case)
        case = BenchCase(name=name, params=dict(params))
        self._cases.append(case)
        return CaseRecorder(case)

    def __iter__(self) -> Iterator[BenchCase]:
        return iter(self._cases)

    def __len__(self) -> int:
        return len(self._cases)

    def result(self) -> BenchResult:
        """Finalise: snapshot the metrics registry beside the cases."""
        return BenchResult(
            area=self.area,
            quick=self.quick,
            metrics=get_default_registry().snapshot(),
            cases=self._cases,
        )

    def write(self, directory: "Path | str") -> Path:
        return self.result().write(directory)


def load_results(directory: "Path | str") -> Dict[str, BenchResult]:
    """All ``BENCH_*.json`` under ``directory``, keyed by area."""
    directory = Path(directory)
    results: Dict[str, BenchResult] = {}
    for path in sorted(directory.glob(f"{BENCH_PREFIX}*.json")):
        result = BenchResult.load(path)
        if result.area in results:
            results[result.area].merge(result)
        else:
            results[result.area] = result
    return results
