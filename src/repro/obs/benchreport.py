"""Diff ``BENCH_*.json`` results against committed baselines.

This is the regression gate behind ``tools/bench_report.py`` and
``repro-fd bench-report``: load the current results (written by the
``bench`` fixture while the suites ran), load the committed baselines
from ``benchmarks/baselines/``, and render the trajectory per case —
wall-clock, throughput and every suite-declared gated metric.

Two kinds of checks with different teeth:

* **wall_seconds** is compared with one generous global tolerance
  (default ``--wall-tolerance 1.0``: fail only beyond 2x slower),
  because absolute wall time moves with the hardware;
* **gated metrics** (speedup ratios and other derived, mostly
  machine-independent numbers declared with ``case.gate(...)``) carry
  their own direction and per-metric tolerance in the result file.

Exactly *at* a tolerance boundary passes — only strictly beyond it
fails.  A current area or case with no baseline is reported as ``new``
and passes (that is how a fresh bench enters the trajectory: run it,
then commit its file with ``--update``).  Results measured in a
different quick/full mode than their baseline are compared for
information only.  See ``docs/benchmarking.md`` for the workflow.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from .bench import BenchResult, load_results

#: Default fractional tolerance on wall_seconds (1.0 == fail beyond 2x).
DEFAULT_WALL_TOLERANCE = 1.0

#: Default baselines directory, relative to the repo root.
BASELINES_DIR = "benchmarks/baselines"

OK = "ok"
IMPROVED = "improved"
REGRESSION = "regression"
NEW = "new"
MISSING = "missing"
INFO = "info"


@dataclass
class Delta:
    """One compared metric of one case — a row of the trajectory table."""

    area: str
    case: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    tolerance: Optional[float]
    status: str
    note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.baseline and self.current is not None and self.baseline > 0:
            return self.current / self.baseline
        return None


def _check(current: float, baseline: float, tolerance: float,
           higher_is_better: bool) -> str:
    """Strictly beyond the tolerated band fails; at the boundary passes."""
    if higher_is_better:
        if current < baseline * (1.0 - tolerance):
            return REGRESSION
        if current > baseline:
            return IMPROVED
        return OK
    if current > baseline * (1.0 + tolerance):
        return REGRESSION
    if current < baseline:
        return IMPROVED
    return OK


def compare_area(current: BenchResult, baseline: Optional[BenchResult],
                 wall_tolerance: float = DEFAULT_WALL_TOLERANCE) -> List[Delta]:
    """Every metric delta of one area, current vs committed baseline."""
    deltas: List[Delta] = []
    if baseline is None:
        for case in current.cases:
            deltas.append(Delta(
                current.area, case.name, "wall_seconds", None,
                case.wall_seconds, None, NEW, "no committed baseline",
            ))
        return deltas

    mode_mismatch = baseline.quick != current.quick
    note = (
        f"mode mismatch (baseline {'quick' if baseline.quick else 'full'}, "
        f"current {'quick' if current.quick else 'full'}); informational"
        if mode_mismatch else ""
    )
    for case in current.cases:
        base_case = baseline.case(case.name)
        if base_case is None:
            deltas.append(Delta(
                current.area, case.name, "wall_seconds", None,
                case.wall_seconds, None, NEW, "case not in baseline",
            ))
            continue
        if case.wall_seconds is not None and base_case.wall_seconds:
            status = (
                INFO if mode_mismatch else _check(
                    case.wall_seconds, base_case.wall_seconds,
                    wall_tolerance, higher_is_better=False,
                )
            )
            deltas.append(Delta(
                current.area, case.name, "wall_seconds",
                base_case.wall_seconds, case.wall_seconds,
                wall_tolerance, status, note,
            ))
        for name, spec in case.gates.items():
            base_spec = base_case.gates.get(name)
            if base_spec is None:
                deltas.append(Delta(
                    current.area, case.name, name, None, spec["value"],
                    spec.get("tolerance"), NEW, "gate not in baseline",
                ))
                continue
            status = (
                INFO if mode_mismatch else _check(
                    float(spec["value"]), float(base_spec["value"]),
                    float(spec.get("tolerance", 0.25)),
                    bool(spec.get("higher_is_better", True)),
                )
            )
            deltas.append(Delta(
                current.area, case.name, name,
                float(base_spec["value"]), float(spec["value"]),
                float(spec.get("tolerance", 0.25)), status, note,
            ))
    for base_case in baseline.cases:
        if current.case(base_case.name) is None:
            deltas.append(Delta(
                current.area, base_case.name, "wall_seconds",
                base_case.wall_seconds, None, None, MISSING,
                "case in baseline but not in this run",
            ))
    return deltas


def compare_all(current: Dict[str, BenchResult],
                baselines: Dict[str, BenchResult],
                wall_tolerance: float = DEFAULT_WALL_TOLERANCE) -> List[Delta]:
    deltas: List[Delta] = []
    for area in sorted(current):
        deltas.extend(
            compare_area(current[area], baselines.get(area), wall_tolerance)
        )
    return deltas


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 100:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.4f}"


def render_trajectory(deltas: List[Delta]) -> str:
    """The trajectory table: one row per compared metric."""
    headers = ("area", "case", "metric", "baseline", "current", "Δ", "status")
    rows = []
    for delta in deltas:
        ratio = delta.ratio
        if ratio is None:
            change = "-"
        else:
            change = f"{(ratio - 1.0) * 100:+.1f}%"
        rows.append((
            delta.area, delta.case, delta.metric, _fmt(delta.baseline),
            _fmt(delta.current), change,
            delta.status + (f" ({delta.note})" if delta.note else ""),
        ))
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def summarize(deltas: List[Delta]) -> str:
    counts: Dict[str, int] = {}
    for delta in deltas:
        counts[delta.status] = counts.get(delta.status, 0) + 1
    total = len(deltas)
    parts = ", ".join(
        f"{counts[s]} {s}" for s in
        (REGRESSION, IMPROVED, OK, NEW, MISSING, INFO) if s in counts
    )
    return f"{total} metrics compared: {parts or 'nothing to compare'}"


def add_report_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared flag set of ``tools/bench_report.py`` and the
    ``repro-fd bench-report`` subcommand."""
    parser.add_argument(
        "--results", metavar="DIR", default=".",
        help="directory holding the current BENCH_*.json files "
        "(default: current directory)",
    )
    parser.add_argument(
        "--baselines", metavar="DIR", default=None,
        help=f"committed baseline directory (default: {BASELINES_DIR} "
        "under the repo root, or under --results if that exists)",
    )
    parser.add_argument(
        "--wall-tolerance", type=float, default=DEFAULT_WALL_TOLERANCE,
        metavar="FRAC",
        help="fractional wall-clock tolerance before a regression is "
        "declared (default 1.0 = fail beyond 2x the baseline); gated "
        "metrics carry their own per-metric tolerance",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit nonzero if any metric regressed beyond tolerance "
        "(the CI gate)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="adopt the current results as the new committed baselines",
    )


def _default_baselines(results_dir: Path) -> Path:
    local = results_dir / "baselines"
    if local.is_dir() and results_dir.name == "benchmarks":
        return local
    # tools/ and src/repro/obs/ both sit two levels below the repo root.
    for root in (Path.cwd(), Path(__file__).resolve().parents[3]):
        candidate = root / BASELINES_DIR
        if candidate.is_dir():
            return candidate
    return Path(BASELINES_DIR)


def run_report(args: argparse.Namespace, *, out=None) -> int:
    out = out or sys.stdout
    results_dir = Path(args.results)
    baselines_dir = (
        Path(args.baselines) if args.baselines
        else _default_baselines(results_dir)
    )
    current = load_results(results_dir)
    if not current:
        print(f"bench-report: no {('BENCH_*.json')} results under "
              f"{results_dir}", file=sys.stderr)
        return 2
    if args.update:
        baselines_dir.mkdir(parents=True, exist_ok=True)
        for result in current.values():
            path = result.write(baselines_dir)
            print(f"baseline updated: {path}", file=out)
        return 0
    baselines = load_results(baselines_dir) if baselines_dir.is_dir() else {}
    deltas = compare_all(current, baselines, args.wall_tolerance)
    print(render_trajectory(deltas), file=out)
    print(summarize(deltas), file=out)
    regressions = [d for d in deltas if d.status == REGRESSION]
    if regressions:
        for delta in regressions:
            print(
                f"REGRESSION {delta.area}/{delta.case} {delta.metric}: "
                f"{_fmt(delta.baseline)} -> {_fmt(delta.current)} "
                f"(tolerance {delta.tolerance})",
                file=sys.stderr,
            )
        return 1 if args.check else 0
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_report",
        description="Diff BENCH_*.json results against committed baselines",
    )
    add_report_arguments(parser)
    return run_report(parser.parse_args(argv))
