"""A dependency-free metrics registry: counters, gauges and timers.

The registry is the pipeline's single sink for quantitative
instrumentation.  Three instrument kinds cover what the build and
diagnosis code needs:

* :class:`Counter` — monotonically increasing totals (candidate
  evaluations, ``LOWER`` cutoffs, replacements, faults simulated…);
* :class:`Gauge` — last-value-wins measurements (final stale streak,
  partition class counts…);
* :class:`Timer` — duration samples with summary statistics
  (count/total/min/max/p50/p90/p95/p99), backing every wall-clock
  measurement in the repo so no caller hand-rolls ``time.perf_counter()``
  pairs.

A process-global default registry is always installed, so instrumented
code never checks for ``None``; hot paths accumulate locally and flush
once per call, keeping the overhead of the always-on path negligible.
Tests (and the overhead benchmark) isolate or disable collection with
:func:`scoped_registry` / :func:`disabled`.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


#: Timers keep at most this many raw samples for percentile estimates;
#: count/total/min/max stay exact beyond it.
MAX_TIMER_SAMPLES = 8192


class Timer:
    """Duration samples with summary statistics.

    ``record`` takes seconds directly; :meth:`time` measures a ``with``
    block and exposes the elapsed seconds on the returned stopwatch, which
    is how the experiment harnesses obtain their per-stage timings.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if self.min is None or seconds < self.min:
            self.min = seconds
        if self.max is None or seconds > self.max:
            self.max = seconds
        if len(self._samples) < MAX_TIMER_SAMPLES:
            self._samples.append(seconds)

    def time(self) -> "Stopwatch":
        return Stopwatch(self)

    def dump(self) -> Dict[str, object]:
        """Complete mergeable state, including the retained raw samples."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "samples": list(self._samples),
        }

    def merge(self, dump: Dict[str, object]) -> None:
        """Fold another timer's :meth:`dump` into this one.

        Aggregates (count/total/min/max) stay exact; samples are adopted
        up to :data:`MAX_TIMER_SAMPLES`, so percentiles after a merge are
        estimates over whichever samples fit first.
        """
        self.count += int(dump.get("count", 0))
        self.total += float(dump.get("total", 0.0))
        for bound, pick in (("min", min), ("max", max)):
            theirs = dump.get(bound)
            if theirs is not None:
                ours = getattr(self, bound)
                setattr(self, bound, theirs if ours is None else pick(ours, theirs))
        room = MAX_TIMER_SAMPLES - len(self._samples)
        if room > 0:
            self._samples.extend(dump.get("samples", ())[:room])

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile of the retained samples (q in [0, 100])."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = max(1, -(-int(q) * len(ordered) // 100))  # ceil(q*n/100), >= 1
        return ordered[min(rank, len(ordered)) - 1]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(50) or 0.0,
            "p90": self.percentile(90) or 0.0,
            "p95": self.percentile(95) or 0.0,
            "p99": self.percentile(99) or 0.0,
        }


class Stopwatch:
    """Times one ``with`` block and records it into its timer."""

    __slots__ = ("timer", "elapsed", "_start")

    def __init__(self, timer: Optional[Timer]) -> None:
        self.timer = timer
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
        if self.timer is not None:
            self.timer.record(self.elapsed)


class MetricsRegistry:
    """Named instruments, created on first use.

    ``counter``/``gauge``/``timer`` are create-or-get: instrumented code
    addresses instruments purely by name and never registers anything up
    front.  :meth:`snapshot` renders the whole registry as plain data for
    JSON export and report folding.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.timers: Dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def timer(self, name: str) -> Timer:
        instrument = self.timers.get(name)
        if instrument is None:
            instrument = self.timers[name] = Timer(name)
        return instrument

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.timers.clear()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
            "timers": {name: t.summary() for name, t in sorted(self.timers.items())},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    # ------------------------------------------------------------------
    # cross-registry merging (worker → parent aggregation)
    # ------------------------------------------------------------------
    def dump(self) -> Dict[str, Dict[str, object]]:
        """Render the registry as plain picklable data, losslessly enough
        to be merged into another registry with :meth:`merge_dump`.

        Unlike :meth:`snapshot` (which summarises timers for human/JSON
        consumption), ``dump`` keeps the raw timer state so aggregates
        survive the round trip.  This is how worker processes ship their
        metrics back to the parent.
        """
        return {
            "counters": {name: c.value for name, c in self.counters.items()},
            "gauges": {name: g.value for name, g in self.gauges.items()},
            "timers": {name: t.dump() for name, t in self.timers.items()},
        }

    def merge_dump(self, dump: Dict[str, Dict[str, object]]) -> None:
        """Fold a :meth:`dump` into this registry.

        Counters add, timers aggregate, and gauges are last-writer-wins —
        the same semantics the instruments have in-process.  Instruments
        missing here are created, so merging into a fresh registry
        reconstructs the dumped one.
        """
        for name, value in dump.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in dump.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, timer_dump in dump.get("timers", {}).items():
            self.timer(name).merge(timer_dump)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one."""
        self.merge_dump(other.dump())


class NullRegistry(MetricsRegistry):
    """A registry whose instruments discard everything (the opt-out).

    Used by the overhead benchmark as the "un-instrumented" reference and
    available to any embedder that wants collection fully off.
    """

    def __init__(self) -> None:
        super().__init__()
        self._counter = _NullCounter()
        self._gauge = _NullGauge()
        self._timer = _NullTimer()

    def counter(self, name: str) -> Counter:
        return self._counter

    def gauge(self, name: str) -> Gauge:
        return self._gauge

    def timer(self, name: str) -> Timer:
        return self._timer


class _NullCounter(Counter):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def set(self, value: float) -> None:
        pass


class _NullTimer(Timer):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def record(self, seconds: float) -> None:
        pass

    def merge(self, dump: Dict[str, object]) -> None:
        pass


_default_registry: MetricsRegistry = MetricsRegistry()


def get_default_registry() -> MetricsRegistry:
    """The process-global registry instrumented code writes into."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process default; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


@contextmanager
def scoped_registry(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Temporarily install a registry (a fresh one by default).

    The standard test idiom: everything instrumented inside the block
    lands in an isolated registry, and the previous default is restored
    on exit regardless of exceptions.
    """
    installed = registry if registry is not None else MetricsRegistry()
    previous = set_default_registry(installed)
    try:
        yield installed
    finally:
        set_default_registry(previous)


@contextmanager
def disabled() -> Iterator[MetricsRegistry]:
    """Temporarily discard all metrics (a scoped :class:`NullRegistry`)."""
    with scoped_registry(NullRegistry()) as registry:
        yield registry
