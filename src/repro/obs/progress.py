"""Progress reporting with throttled emission.

Long-running stages (the restart driver, the Table 6 sweep) report
``(stage, done, total, **info)`` events through a
:class:`ProgressReporter`.  Reporters decide presentation:

* :class:`NullProgress` — the silent default;
* :class:`CallbackProgress` — forwards every event to a callable
  (embedders, tests);
* :class:`StderrProgress` — human-readable lines on stderr, throttled to
  one emission per ``min_interval`` seconds so tight loops do not flood
  the terminal.  Terminal events (``done == total``) always emit.

Stdout is deliberately never used: report text and ``--metrics-out -``
JSON own stdout (see :mod:`repro.experiments.reporting`).
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, Protocol, TextIO


class ProgressReporter(Protocol):
    """The event sink protocol every long-running stage accepts."""

    def report(
        self, stage: str, done: int, total: Optional[int] = None, **info: object
    ) -> None:
        """One progress event; ``total`` is None for open-ended stages."""


class NullProgress:
    """Discards every event (the default for library callers)."""

    def report(
        self, stage: str, done: int, total: Optional[int] = None, **info: object
    ) -> None:
        pass


class CallbackProgress:
    """Forwards every event, unthrottled, to one callable."""

    def __init__(self, callback: Callable[..., None]) -> None:
        self._callback = callback

    def report(
        self, stage: str, done: int, total: Optional[int] = None, **info: object
    ) -> None:
        self._callback(stage, done, total, **info)


class StderrProgress:
    """Writes throttled one-line progress updates to a text stream.

    ``clock`` is injectable for deterministic throttling tests; it must
    be monotonic.  The first event of a stage and any terminal event
    (``done == total``) bypass the throttle.
    """

    def __init__(
        self,
        min_interval: float = 0.2,
        stream: Optional[TextIO] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.min_interval = min_interval
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._last_emit: Optional[float] = None
        self._last_stage: Optional[str] = None
        self.emitted = 0

    def report(
        self, stage: str, done: int, total: Optional[int] = None, **info: object
    ) -> None:
        now = self._clock()
        terminal = total is not None and done >= total
        fresh_stage = stage != self._last_stage
        throttled = (
            not terminal
            and not fresh_stage
            and self._last_emit is not None
            and now - self._last_emit < self.min_interval
        )
        if throttled:
            return
        self._last_emit = now
        self._last_stage = stage
        self.emitted += 1
        progress = f"{done}/{total}" if total is not None else str(done)
        extras = " ".join(f"{key}={value}" for key, value in info.items())
        line = f"[{stage}] {progress}"
        if extras:
            line += " " + extras
        print(line, file=self.stream, flush=True)
