"""Span-based tracing: a nested timing tree exportable as JSONL.

A span is one timed region of the pipeline, opened with::

    with trace_span("procedure1.call", test=j):
        ...

Spans nest lexically (the tracer keeps an explicit stack), so every
finished span record carries its parent's id and its interval is
contained in the parent's.  The default tracer is a :class:`NullTracer`
whose ``span`` hands back one shared no-op context manager — tracing
costs nothing until a recording :class:`Tracer` is installed (the CLI
does this for ``--trace``).

Record format (one JSON object per line in the JSONL export)::

    {"name": ..., "id": n, "parent": n|null, "start": s, "end": s,
     "duration": s, "attrs": {...}}

``start``/``end`` are ``time.perf_counter()`` seconds relative to the
tracer's creation, so intervals compare exactly within one trace.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


class Tracer:
    """Records finished spans as flat dicts linked by parent ids."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._next_id = 0
        self._stack: List[int] = []
        self.records: List[Dict[str, object]] = []

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[None]:
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        self._stack.append(span_id)
        start = time.perf_counter() - self._epoch
        try:
            yield
        finally:
            end = time.perf_counter() - self._epoch
            self._stack.pop()
            self.records.append(
                {
                    "name": name,
                    "id": span_id,
                    "parent": parent,
                    "start": start,
                    "end": end,
                    "duration": end - start,
                    "attrs": attrs,
                }
            )

    def to_jsonl(self) -> str:
        """All finished spans, one JSON object per line, in finish order."""
        return "\n".join(json.dumps(record) for record in self.records)

    def export_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            text = self.to_jsonl()
            if text:
                handle.write(text + "\n")


def load_jsonl(text: str) -> List[Dict[str, object]]:
    """Parse a JSONL trace back into span records (the round-trip)."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def validate_nesting(records: List[Dict[str, object]]) -> None:
    """Assert every child interval lies within its parent's interval."""
    by_id = {record["id"]: record for record in records}
    for record in records:
        parent_id = record["parent"]
        if parent_id is None:
            continue
        parent = by_id[parent_id]
        if record["start"] < parent["start"] or record["end"] > parent["end"]:
            raise ValueError(
                f"span {record['name']!r} ({record['start']}, {record['end']}) "
                f"escapes parent {parent['name']!r} "
                f"({parent['start']}, {parent['end']})"
            )


class NullTracer(Tracer):
    """The zero-overhead default: ``span`` is one shared no-op."""

    def __init__(self) -> None:
        super().__init__()
        self._null = _NULL_SPAN

    def span(self, name: str, **attrs: object):
        return self._null


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()

_default_tracer: Tracer = NullTracer()


def get_default_tracer() -> Tracer:
    return _default_tracer


def set_default_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process default; returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


@contextmanager
def scoped_tracer(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Temporarily install a tracer (a recording one by default)."""
    installed = tracer if tracer is not None else Tracer()
    previous = set_default_tracer(installed)
    try:
        yield installed
    finally:
        set_default_tracer(previous)


def trace_span(name: str, **attrs: object):
    """Open a span on the process-default tracer (no-op unless recording)."""
    return _default_tracer.span(name, **attrs)
