"""Parallel restart engine for the same/different dictionary build.

Procedure 1 restarts are independent given the response table, so the
restarted driver fans them out over worker processes; deterministic
per-restart seed streams keep ``jobs=N`` byte-identical to the serial
path.  See ``docs/parallelism.md`` for the seeding model, batch
semantics and metrics-merge caveats.

:mod:`repro.parallel.shards` shards *within* one restart: the vector
backend's candidate-scoring histogram folds over contiguous fault-entry
blocks, byte-identically for any shard count.
:mod:`repro.parallel.hierarchy` composes the two levels explicitly —
fault-block shards inside a restart, the restart fold outside — over
shared read-only layouts (see ``docs/scaling.md``).
"""

from .hierarchy import (
    FAULT_BLOCKS_ENV,
    FaultBlockPlan,
    HierarchicalFold,
    block_counts,
    fault_blocks_from_env,
    fold_block_counts,
    scores_from_counts,
    sharded_procedure1,
    sharded_refine_scores,
)
from .scheduler import RestartFold, RestartScheduler, ScheduleOutcome
from .seeds import derive_restart_seed, restart_order, restart_rng
from .shards import CandidateSharder, count_block, fold_counts, shard_slices
from .worker import RestartResult, init_worker, run_restart, run_restart_inline

__all__ = [
    "CandidateSharder",
    "FAULT_BLOCKS_ENV",
    "FaultBlockPlan",
    "HierarchicalFold",
    "RestartFold",
    "RestartResult",
    "RestartScheduler",
    "ScheduleOutcome",
    "block_counts",
    "count_block",
    "derive_restart_seed",
    "fault_blocks_from_env",
    "fold_block_counts",
    "fold_counts",
    "init_worker",
    "restart_order",
    "restart_rng",
    "run_restart",
    "run_restart_inline",
    "scores_from_counts",
    "shard_slices",
    "sharded_procedure1",
    "sharded_refine_scores",
]
