"""Parallel restart engine for the same/different dictionary build.

Procedure 1 restarts are independent given the response table, so the
restarted driver fans them out over worker processes; deterministic
per-restart seed streams keep ``jobs=N`` byte-identical to the serial
path.  See ``docs/parallelism.md`` for the seeding model, batch
semantics and metrics-merge caveats.
"""

from .scheduler import RestartFold, RestartScheduler, ScheduleOutcome
from .seeds import derive_restart_seed, restart_order, restart_rng
from .worker import RestartResult, init_worker, run_restart, run_restart_inline

__all__ = [
    "RestartFold",
    "RestartResult",
    "RestartScheduler",
    "ScheduleOutcome",
    "derive_restart_seed",
    "init_worker",
    "restart_order",
    "restart_rng",
    "run_restart",
    "run_restart_inline",
]
