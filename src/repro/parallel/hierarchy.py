"""Hierarchical two-level fold: fault-block shards within a restart.

The restart engine (:mod:`repro.parallel.scheduler`) folds at one level:
whole Procedure 1 restarts, in index order.  At ITC-99 scale a *single*
restart is itself a fold — the class-major ``dist(z)`` scoring of one
test decomposes over contiguous fault blocks, because what it sums are
per-``(class, candidate)`` member counts and histogram addition is
commutative and associative (the same algebra
:mod:`repro.parallel.shards` proved for the vector backend's entries).
This module makes that two-level structure explicit:

* **level 1** — :func:`block_counts` counts one fault block's
  ``(class, candidate)`` members against a shared read-only layout
  (interned columns + the live partition), :func:`fold_block_counts`
  merges the partials, :func:`scores_from_counts` turns the folded
  counts plus class sizes into the exact ``dist`` vector;
* **level 2** — :class:`HierarchicalFold` is a
  :class:`~repro.parallel.scheduler.RestartFold` that evaluates each
  restart through the sharded scorer before folding it, so the whole
  build is a fold of folds.

Because the level 1 fold is exact (integer histogram addition), a
sharded restart is byte-identical to an unsharded one for any block
plan — ``tests/parallel/test_hierarchy.py`` holds that equality against
every backend's ``refine_scores``.  ``REPRO_FAULT_BLOCKS=N`` (``N >= 2``)
opts the serial build path into block-sharded scoring.

Metrics: ``parallel.block_folds`` counts sharded scoring passes,
``parallel.fault_blocks`` the blocks folded.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import get_default_registry
from ..partition import FaultPartition
from ..sim.responses import PASS, ResponseTable, Signature
from .scheduler import RestartFold
from .seeds import restart_order
from .shards import shard_slices

#: Environment variable opting the serial build into fault-block shards.
FAULT_BLOCKS_ENV = "REPRO_FAULT_BLOCKS"

BlockCounts = Dict[Tuple[int, int], int]


def fault_blocks_from_env() -> int:
    """``$REPRO_FAULT_BLOCKS`` as an int (< 2 means unsharded)."""
    raw = os.environ.get(FAULT_BLOCKS_ENV)
    try:
        return int(raw) if raw else 0
    except ValueError:
        raise ValueError(
            f"{FAULT_BLOCKS_ENV} must be an integer, got {raw!r}"
        ) from None


class FaultBlockPlan:
    """A deterministic cut of ``range(n_faults)`` into contiguous blocks.

    Pure arithmetic over ``(n_faults, n_blocks)`` — every process (or
    future remote worker) derives the identical plan, which is what lets
    shards share the read-only layout instead of shipping slices of it.
    """

    def __init__(self, n_faults: int, n_blocks: int) -> None:
        if n_faults < 0:
            raise ValueError(f"n_faults must be >= 0, got {n_faults}")
        if n_blocks < 1:
            raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
        self.n_faults = n_faults
        self.blocks: List[Tuple[int, int]] = shard_slices(n_faults, n_blocks)

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    def __repr__(self) -> str:
        return f"FaultBlockPlan(n_faults={self.n_faults}, blocks={self.blocks})"


def block_counts(
    colj: Sequence[int],
    classes: Sequence[Sequence[int]],
    block: Tuple[int, int],
) -> BlockCounts:
    """Level 1 map: one block's ``(class, candidate) -> member count``.

    Only members of live (size >= 2) classes whose fault index falls in
    ``[lo, hi)`` are counted; class member lists are ascending (splits
    preserve order), so the block's slice of each class is found by
    bisection rather than a scan.
    """
    lo, hi = block
    counts: BlockCounts = {}
    for cid, members in enumerate(classes):
        if len(members) < 2:
            continue
        start = bisect_left(members, lo)
        stop = bisect_left(members, hi, start)
        for i in members[start:stop]:
            key = (cid, colj[i])
            counts[key] = counts.get(key, 0) + 1
    return counts


def fold_block_counts(partials: Sequence[BlockCounts]) -> BlockCounts:
    """Level 1 fold: sum the per-block histograms (order-independent)."""
    folded: BlockCounts = {}
    for partial in partials:
        for key, count in partial.items():
            folded[key] = folded.get(key, 0) + count
    return folded


def scores_from_counts(
    counts: BlockCounts, class_sizes: Sequence[int], n_candidates: int
) -> List[int]:
    """Folded counts + class sizes -> the exact ``dist`` vector.

    A class of size ``s`` with ``a`` members on candidate ``sid``
    contributes ``a * (s - a)`` to ``dist[sid]`` — all-same classes
    contribute 0, so the result equals the unsharded
    ``refine_scores`` entry for entry.
    """
    dist = [0] * n_candidates
    for (cid, sid), a in counts.items():
        s = class_sizes[cid]
        dist[sid] += a * (s - a)
    return dist


def sharded_refine_scores(
    table: ResponseTable,
    test_index: int,
    partition: FaultPartition,
    plan: FaultBlockPlan,
) -> List[int]:
    """Class-major ``dist(z)`` of one test as a fold over fault blocks."""
    it = table.interned
    colj = it.cols[test_index]
    partials = [
        block_counts(colj, partition.classes, block) for block in plan.blocks
    ]
    registry = get_default_registry()
    registry.counter("parallel.block_folds").inc()
    registry.counter("parallel.fault_blocks").inc(len(partials))
    class_sizes = [len(members) for members in partition.classes]
    return scores_from_counts(
        fold_block_counts(partials), class_sizes, it.n_candidates(test_index)
    )


def sharded_procedure1(
    table: ResponseTable,
    order: Sequence[int],
    lower: int,
    plan: FaultBlockPlan,
):
    """One Procedure 1 restart scored through the block fold.

    Selection semantics replicate the reference loop exactly (first
    maximum wins, ``LOWER`` cutoff, split deltas applied through
    :class:`~repro.partition.FaultPartition`), so the run is
    byte-identical to any backend's ``procedure1`` for the same order.
    """
    from ..dictionaries.samediff import _candidate_members
    from ..kernels import Procedure1Run

    it = table.interned
    partition = FaultPartition(range(table.n_faults))
    baselines: List[Signature] = [PASS] * table.n_tests
    distinguished = 0
    evaluated = 0
    cutoffs = 0
    winners: List[Tuple[int, int]] = []
    for j in order:
        dist = sharded_refine_scores(table, j, partition, plan)
        best_dist = -1
        best_index = 0
        consecutive_lower = 0
        for index, d in enumerate(dist):
            evaluated += 1
            if d > best_dist:
                best_dist = d
                best_index = index
                consecutive_lower = 0
            elif d < best_dist:
                consecutive_lower += 1
                if consecutive_lower >= lower:
                    cutoffs += 1
                    break
        baselines[j] = it.sigs[j][best_index]
        if best_dist > 0:
            winners.append((j, best_index))
            distinguished += partition.split(_candidate_members(table, j, best_index))
    return Procedure1Run(
        baselines, distinguished, evaluated, cutoffs, winners, partition
    )


class HierarchicalFold(RestartFold):
    """The two-level fold: block shards inside restarts, restarts outside.

    Level 2 is the inherited :class:`RestartFold` reduction (index
    order, stale budget, ceiling early-exit, observer hook).  Level 1 is
    per restart: :meth:`run_restart` evaluates Procedure 1 through
    :func:`sharded_refine_scores` over the shared read-only layout and
    folds the outcome immediately.  Since both levels are exact folds,
    the result is byte-identical to the serial unsharded build.
    """

    def __init__(
        self,
        table: ResponseTable,
        lower: int,
        plan: FaultBlockPlan,
        **fold_kwargs,
    ) -> None:
        super().__init__(**fold_kwargs)
        self.table = table
        self.lower = lower
        self.plan = plan

    def run_restart(self, seed: int, restart: Optional[int] = None):
        """Evaluate one restart through the block fold and consume it.

        ``restart`` defaults to the fold's own cursor (``calls_made``) —
        the same seed-stream position rule the scheduler and checkpoints
        use.
        """
        if restart is None:
            restart = self.calls_made
        order = restart_order(seed, restart, self.table.n_tests)
        run = sharded_procedure1(self.table, order, self.lower, self.plan)
        from ..dictionaries.samediff import _flush_procedure1

        _flush_procedure1(run)
        self.consume(run.distinguished, run.baselines)
        return run
