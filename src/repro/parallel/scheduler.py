"""Batched scheduling of Procedure 1 restarts over a process pool.

The restart loop of :func:`~repro.dictionaries.samediff.build_same_different`
is a sequential fold: restarts arrive in index order, the best result so
far and a stale counter decide when to stop (``CALLS1`` consecutive
non-improvements, or the full-dictionary ceiling).  :class:`RestartFold`
captures exactly that reduction, and both execution strategies drive it:

* the serial path evaluates restart ``r`` and folds it immediately;
* :class:`RestartScheduler` speculatively fans restarts out over a
  ``ProcessPoolExecutor`` in batches sized at least the remaining stale
  budget (so a batch with no improvement is guaranteed to finish the
  loop), collects results as they complete, and folds them in strict
  index order.

Because each restart's test order is a pure function of ``(seed, r)``
(see :mod:`~repro.parallel.seeds`) and the fold consumes results in index
order with the serial stopping rule, ``jobs=N`` produces byte-identical
baselines, distinguished-pair counts and logical call counts to the
serial path.  Results computed beyond the stopping point are discarded
from the fold but their worker metrics are still merged (counted under
``parallel.speculative_restarts``), so ``procedure1.*`` counters reflect
all work actually done.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..obs import NullProgress, ProgressReporter, get_default_registry
from ..sim.responses import ResponseTable, Signature
from .worker import RestartResult, init_worker, run_restart


class RestartFold:
    """The order-preserving reduction shared by serial and parallel paths.

    Seeded with the all-PASS (pass/fail) assignment as restart "-1", so a
    build can never end worse than the pass/fail dictionary — that floor
    is what makes the documented resolution chain
    ``passfail <= s/d(P1) <= s/d(P2) <= full`` an invariant rather than
    an empirical tendency.
    """

    def __init__(
        self,
        calls: int,
        ceiling: int,
        baselines: Sequence[Signature],
        distinguished: int,
        progress: Optional[ProgressReporter] = None,
        observer: Optional[Callable[["RestartFold"], None]] = None,
    ) -> None:
        if calls < 1:
            raise ValueError(f"calls (CALLS1) must be >= 1, got {calls}")
        self.calls = calls
        self.ceiling = ceiling
        self.best_baselines: List[Signature] = list(baselines)
        self.best_distinguished = distinguished
        self.progress = progress if progress is not None else NullProgress()
        #: Called after every folded restart with the fold itself — the
        #: hook the ``RFDC`` checkpoint layer hangs off (and anything
        #: else that wants the exact post-fold state, observers never
        #: change the fold).
        self.observer = observer
        self.stale = 0
        self.calls_made = 0
        #: Restarts folded before this fold was constructed (a resumed
        #: checkpointed build); folded into ``calls_made`` so restart
        #: cursors and reports stay continuous across the kill.
        self.resumed_calls = 0
        self.ceiling_hit = False
        self._started = time.perf_counter()
        self._check_ceiling()

    @property
    def done(self) -> bool:
        return self.ceiling_hit or self.stale >= self.calls

    def eta_seconds(self) -> float:
        """Remaining-work estimate for multi-minute builds.

        Average seconds per restart folded *this process* times the
        restarts left before the stale budget runs out (the worst case
        when no further restart improves; an improvement extends it).
        ``0.0`` until one restart has been folded, and once done.
        """
        folded = self.calls_made - self.resumed_calls
        if folded <= 0 or self.done:
            return 0.0
        average = (time.perf_counter() - self._started) / folded
        return round(average * max(self.calls - self.stale, 0), 3)

    def consume(self, distinguished: int, baselines: Sequence[Signature]) -> None:
        """Fold the next restart (they must arrive in restart-index order)."""
        self.calls_made += 1
        if distinguished > self.best_distinguished:
            self.best_distinguished = distinguished
            self.best_baselines = list(baselines)
            self.stale = 0
        else:
            self.stale += 1
        self._check_ceiling()
        # Observers (the checkpoint layer) persist the folded state
        # before progress is announced: anything a consumer learns from
        # the report is already durable.
        if self.observer is not None:
            self.observer(self)
        self.progress.report(
            "build.procedure1",
            self.calls_made,
            stale=self.stale,
            best=self.best_distinguished,
            eta_s=self.eta_seconds(),
        )

    def restore(
        self,
        *,
        calls_made: int,
        stale: int,
        best_distinguished: int,
        best_baselines: Sequence[Signature],
    ) -> None:
        """Install checkpointed state: the fold position of a killed build.

        ``calls_made`` doubles as the restart cursor — restarts fold in
        index order from 0, so the next restart to evaluate is exactly
        ``calls_made`` (the checkpoint's seed-stream position).
        """
        if calls_made < 0 or stale < 0 or stale > calls_made:
            raise ValueError(
                f"inconsistent fold state: calls_made={calls_made} stale={stale}"
            )
        self.calls_made = calls_made
        self.resumed_calls = calls_made
        self.stale = stale
        self.best_distinguished = best_distinguished
        self.best_baselines = list(best_baselines)
        self._check_ceiling()

    def _check_ceiling(self) -> None:
        if not self.ceiling_hit and self.best_distinguished >= self.ceiling:
            # Nothing left that any dictionary could distinguish.
            self.ceiling_hit = True
            get_default_registry().counter("build.ceiling_early_exits").inc()


@dataclass
class ScheduleOutcome:
    """Bookkeeping of one parallel run (the fold carries the result)."""

    batches: int = 0
    #: Restarts whose results were computed (folded + speculative).
    executed: int = 0
    #: Computed beyond the serial stopping point and discarded.
    speculative: int = 0
    #: Cancelled before a worker picked them up.
    cancelled: int = 0
    errors: List[str] = field(default_factory=list)


class RestartScheduler:
    """Fans Procedure 1 restarts out over worker processes, in batches.

    The schedule is speculative but the fold is exact: batch ``size`` is
    ``max(calls - stale, jobs)`` so that an improvement-free batch always
    drains the stale budget, results are folded in restart-index order,
    and any member reaching the full-dictionary ceiling immediately
    cancels every higher-indexed restart still waiting for a worker
    (early-exit propagation).
    """

    def __init__(
        self,
        table: ResponseTable,
        lower: int = 10,
        seed: int = 0,
        jobs: int = 2,
        executor_factory=None,
        backend: Optional[str] = None,
    ) -> None:
        if jobs < 2:
            raise ValueError(f"RestartScheduler needs jobs >= 2, got {jobs}")
        self.table = table
        self.lower = lower
        self.seed = seed
        self.jobs = jobs
        self.backend = backend
        self._executor_factory = executor_factory or (
            lambda: ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=init_worker,
                initargs=(self.table, self.lower, self.backend),
            )
        )

    def run(self, fold: RestartFold) -> ScheduleOutcome:
        """Drive ``fold`` to completion; returns the schedule bookkeeping."""
        registry = get_default_registry()
        registry.gauge("parallel.jobs").set(self.jobs)
        outcome = ScheduleOutcome()
        # Restarts fold in index order from 0, so a fold restored from a
        # checkpoint dictates the first restart still to evaluate.
        next_restart = fold.calls_made
        with self._executor_factory() as pool:
            while not fold.done:
                size = max(fold.calls - fold.stale, self.jobs)
                futures: Dict[int, Future] = {
                    r: pool.submit(run_restart, self.seed, r)
                    for r in range(next_restart, next_restart + size)
                }
                next_restart += size
                outcome.batches += 1
                self._fold_batch(futures, fold, outcome, registry)
        registry.counter("parallel.batches").inc(outcome.batches)
        registry.counter("parallel.speculative_restarts").inc(outcome.speculative)
        registry.counter("parallel.cancelled_restarts").inc(outcome.cancelled)
        return outcome

    def _fold_batch(
        self,
        futures: Dict[int, Future],
        fold: RestartFold,
        outcome: ScheduleOutcome,
        registry,
    ) -> None:
        """Collect one batch: fold in index order, cancel what can't matter.

        Completed-but-unfoldable results (the fold stopped at a lower
        index) still have their metrics merged — the work happened.  The
        batch always drains fully before returning so no worker output is
        silently dropped; cancellation only saves restarts no worker has
        picked up yet.
        """
        first = min(futures)
        arrived: Dict[int, RestartResult] = {}
        expect = first
        ceiling_at: Optional[int] = None
        pending = set(futures.values())
        while pending:
            completed, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in completed:
                if future.cancelled():
                    outcome.cancelled += 1
                    continue
                error = future.exception()
                if error is not None:
                    # Surface the first worker failure with its restart
                    # context instead of an opaque pool traceback.
                    raise RuntimeError(
                        f"restart worker failed: {error!r}"
                    ) from error
                result: RestartResult = future.result()
                outcome.executed += 1
                registry.merge_dump(result.metrics)
                arrived[result.restart] = result
                if result.distinguished >= fold.ceiling and (
                    ceiling_at is None or result.restart < ceiling_at
                ):
                    # Early-exit propagation: no restart after the first
                    # ceiling-reaching one can be needed by the fold.
                    ceiling_at = result.restart
                    self._cancel_after(futures, ceiling_at)
            while not fold.done and expect in arrived:
                folded = arrived.pop(expect)
                fold.consume(folded.distinguished, folded.baselines)
                expect += 1
            if fold.done:
                self._cancel_after(futures, expect - 1)
        # Folded results were popped as they were consumed; whatever is
        # still in ``arrived`` was computed beyond the stopping point.
        outcome.speculative += len(arrived)

    @staticmethod
    def _cancel_after(futures: Dict[int, Future], index: int) -> None:
        for r, future in futures.items():
            if r > index:
                future.cancel()
