"""Deterministic per-restart seed streams for the restart engine.

The serial restart driver used to thread one ``random.Random`` through
consecutive shuffles, which made restart ``r``'s test order depend on
having executed restarts ``0..r-1`` — impossible to reproduce in a
worker that only receives ``r``.  Instead, every restart derives an
independent child seed from ``(seed, restart)`` by hashing, in the
spirit of ``numpy.random.SeedSequence.spawn``: streams are decorrelated,
any restart's order can be recomputed from two integers anywhere (parent
or worker process), and the serial and parallel paths are byte-identical
by construction.

Restart 0 is special-cased to the natural test order, preserving the
paper's convention that the first Procedure 1 call runs un-shuffled.
"""

from __future__ import annotations

import hashlib
import random
from typing import List

#: Domain-separation tag so restart streams never collide with any other
#: hash-derived randomness a later subsystem might add.
_STREAM_TAG = "repro.parallel.restart"


def derive_restart_seed(seed: int, restart: int) -> int:
    """An independent 128-bit child seed for one restart of one build."""
    if restart < 0:
        raise ValueError(f"restart index must be >= 0, got {restart}")
    payload = f"{_STREAM_TAG}:{seed}:{restart}".encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:16], "big")


def restart_rng(seed: int, restart: int) -> random.Random:
    """The private RNG of one restart (used for its test-order shuffle)."""
    return random.Random(derive_restart_seed(seed, restart))


def restart_order(seed: int, restart: int, n_tests: int) -> List[int]:
    """The test order of restart ``restart``: natural for 0, shuffled after.

    Pure in ``(seed, restart, n_tests)`` — the contract every determinism
    and differential test in ``tests/parallel/`` leans on.
    """
    order = list(range(n_tests))
    if restart:
        restart_rng(seed, restart).shuffle(order)
    return order
