"""Within-restart candidate-scoring shards for the vector backend.

The restart engine (:mod:`repro.parallel.scheduler`) shards *across*
restarts: each worker evaluates whole Procedure 1 calls.  This module
shards *inside* one call: the histogram at the heart of the vector
backend's candidate sweep — counting ``(class, candidate)`` keys over a
test's detected entries — is additive over any partition of those
entries, so the key array can be cut into contiguous fault blocks,
counted independently, and summed.  Integer addition is commutative and
associative, which makes the fold order-independent: the sharded counts
are *equal*, not approximately equal, to the unsharded ``bincount``, and
the backend stays byte-identical for any shard count.

Sharding is opt-in (``REPRO_VECTOR_SHARDS=N`` with ``N >= 2``, or the
``shards=`` argument of :class:`~repro.kernels.vector.VectorBackend`)
and only engages on tests whose detected-entry slice is at least
``REPRO_VECTOR_SHARD_MIN`` entries (default ``2**15``) — below that the
serialization cost dwarfs the counting cost.  ``inline=True`` runs the
shard fold in-process (no pool), which is what the identity tests use
and what keeps the fold logic exercised even where process pools are
unavailable.

Per-fold metrics: ``parallel.sharded_tests`` counts sharded histograms,
``parallel.shard_tasks`` the shard blocks counted.
"""

from __future__ import annotations

import os
from array import array
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Tuple

from ..obs import get_default_registry

#: Default minimum detected entries before a test's histogram shards.
DEFAULT_MIN_ENTRIES = 1 << 15

SHARD_MIN_ENV = "REPRO_VECTOR_SHARD_MIN"


def default_min_entries() -> int:
    """``$REPRO_VECTOR_SHARD_MIN`` or :data:`DEFAULT_MIN_ENTRIES`."""
    raw = os.environ.get(SHARD_MIN_ENV)
    return int(raw) if raw else DEFAULT_MIN_ENTRIES


def shard_slices(n_entries: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous, near-equal, deterministic ``[lo, hi)`` blocks.

    Covers ``range(n_entries)`` exactly with at most ``shards`` non-empty
    blocks; pure arithmetic, so every process derives the same cut.
    """
    if n_entries <= 0:
        return []
    if shards <= 1:
        return [(0, n_entries)]
    shards = min(shards, n_entries)
    bounds = [n_entries * s // shards for s in range(shards + 1)]
    return [(bounds[s], bounds[s + 1]) for s in range(shards)]


def count_block(data: bytes) -> Tuple[List[int], List[int]]:
    """Histogram one block of int64 key bytes: ``(ids, counts)``, ids sorted.

    Runs in shard worker processes; numpy when importable, a
    :class:`collections.Counter` otherwise — both produce the same exact
    integer pairs.
    """
    try:
        import numpy as np
    except ImportError:
        from collections import Counter

        values = array("q")
        values.frombytes(data)
        histogram = Counter(values)
        ids = sorted(histogram)
        return ids, [histogram[i] for i in ids]
    ids, counts = np.unique(np.frombuffer(data, dtype=np.int64), return_counts=True)
    return ids.tolist(), counts.tolist()


def fold_counts(partials, length: int):
    """Sum per-shard ``(ids, counts)`` pairs into one dense int64 vector.

    Requires numpy (the only caller is the vector backend's numpy path).
    Order-independent: see the module docstring.
    """
    import numpy as np

    out = np.zeros(length, dtype=np.int64)
    for ids, counts in partials:
        if ids:
            out[np.asarray(ids, dtype=np.int64)] += np.asarray(
                counts, dtype=np.int64
            )
    return out


class CandidateSharder:
    """Shards one test's key histogram over processes (or inline).

    The process pool is created lazily on first sharded fold and sized
    to ``shards`` workers; :meth:`close` shuts it down (the interpreter's
    atexit hook does too).
    """

    def __init__(
        self,
        shards: int,
        min_entries: int = DEFAULT_MIN_ENTRIES,
        inline: bool = False,
    ) -> None:
        self.shards = max(2, int(shards))
        self.min_entries = max(0, int(min_entries))
        self.inline = bool(inline)
        self._pool: Optional[ProcessPoolExecutor] = None

    def wants(self, n_entries: int) -> bool:
        """True when a test with ``n_entries`` detected entries shards."""
        return n_entries >= self.min_entries

    def counts(self, key, length: int):
        """The exact equivalent of ``numpy.bincount(key, minlength=length)``."""
        import numpy as np

        key = np.ascontiguousarray(key, dtype=np.int64)
        payloads = [
            key[lo:hi].tobytes() for lo, hi in shard_slices(key.size, self.shards)
        ]
        if self.inline or len(payloads) <= 1:
            partials = [count_block(payload) for payload in payloads]
        else:
            partials = list(self._executor().map(count_block, payloads))
        registry = get_default_registry()
        registry.counter("parallel.sharded_tests").inc()
        registry.counter("parallel.shard_tasks").inc(len(payloads))
        return fold_counts(partials, length)

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.shards)
        return self._pool

    def close(self) -> None:
        """Shut the shard pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
