"""The process-pool worker side of the restart engine.

Each worker process receives the :class:`~repro.sim.responses.ResponseTable`
once (through the pool initializer, not per task), then evaluates restarts
identified only by ``(seed, restart_index)``: the test order is re-derived
locally from the seed stream, so a task costs two integers on the wire.
The kernel backend name travels with the initializer too, and a packed
table's interned columns (pre-materialised by the parent before the pool
spawns) pickle along with it — workers never re-derive them.

Workers run Procedure 1 under a private scoped metrics registry and ship
its :meth:`~repro.obs.MetricsRegistry.dump` back with the result; the
scheduler merges those dumps into the parent registry so ``procedure1.*``
counters stay accurate under parallelism.  Spans are *not* captured —
worker processes trace into their own (null by default) tracer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dictionaries.samediff import _procedure1_call
from ..kernels import get_backend
from ..obs import scoped_registry
from ..sim.responses import ResponseTable, Signature
from .seeds import restart_order


@dataclass
class RestartResult:
    """One restart's outcome, as shipped from worker to scheduler."""

    restart: int
    distinguished: int
    baselines: List[Signature]
    metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)


# Per-worker-process state installed by the pool initializer.  A module
# global (not a closure) because the submitted callable must be picklable
# by qualified name.
_WORKER_STATE: Optional[Tuple[ResponseTable, int, Optional[str]]] = None


def init_worker(
    table: ResponseTable, lower: int, backend: Optional[str] = None
) -> None:
    """Pool initializer: pin the shared response table in this process."""
    global _WORKER_STATE
    _WORKER_STATE = (table, lower, backend)


def run_restart(seed: int, restart: int) -> RestartResult:
    """Evaluate one Procedure 1 restart against the pinned table."""
    if _WORKER_STATE is None:
        raise RuntimeError("worker used before init_worker installed a table")
    table, lower, backend_name = _WORKER_STATE
    backend = get_backend(backend_name)
    order = restart_order(seed, restart, table.n_tests)
    with scoped_registry() as registry:
        run = _procedure1_call(table, order, lower, backend)
        metrics = registry.dump()
    return RestartResult(restart, run.distinguished, run.baselines, metrics)


def run_restart_inline(
    table: ResponseTable,
    seed: int,
    restart: int,
    lower: int,
    backend: Optional[str] = None,
) -> Tuple[List[Signature], int]:
    """The same evaluation, in-process (the serial path and tests use it).

    Unlike :func:`run_restart` it writes straight into the ambient
    registry — in-process there is no merge boundary to cross.
    """
    order = restart_order(seed, restart, table.n_tests)
    run = _procedure1_call(table, order, lower, get_backend(backend))
    return run.baselines, run.distinguished
