"""Partition refinement: the class-based pair state of the build core.

One canonical home for the pair arithmetic and the refinement engine
that the dictionary procedures, kernel backends, checkpoint records and
scale benchmarks all share.  See :mod:`repro.partition.core` for the
representation argument and ``docs/scaling.md`` for how it changes the
memory story at ITC-99 scale.
"""

from .core import (
    FaultPartition,
    indistinguished_after_split,
    indistinguished_pairs,
    pairs_within,
    partition_by_key,
    refine,
    rows_indistinguished,
    total_pairs,
)
from .reference import MaterializedPairPartition

#: Historical name, kept as a true alias: ``Partition`` grew into
#: :class:`FaultPartition` when it moved here from
#: ``repro.dictionaries.resolution``.
Partition = FaultPartition

__all__ = [
    "FaultPartition",
    "MaterializedPairPartition",
    "Partition",
    "indistinguished_after_split",
    "indistinguished_pairs",
    "pairs_within",
    "partition_by_key",
    "refine",
    "rows_indistinguished",
    "total_pairs",
]
