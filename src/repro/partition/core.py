"""The canonical partition-refinement engine.

The paper's Procedures 1 and 2 are written over the set ``P`` of
still-indistinguished fault pairs.  Materialising ``P`` costs
``O(F^2)`` memory and time; this module is the repo's single home for
the observation that makes large builds possible: two faults remain in
``P`` exactly when their dictionary rows so far are identical, so ``P``
is the set of within-class pairs of an *equivalence partition* of the
faults, and every pair count the procedures need — ``dist(z)``,
indistinguished totals, split deltas — is a function of class sizes,
computable in ``O(F)``.

Contents:

* the pair arithmetic (:func:`pairs_within`, :func:`total_pairs`,
  :func:`indistinguished_pairs`, :func:`indistinguished_after_split`,
  :func:`rows_indistinguished`) previously duplicated between
  ``dictionaries.resolution`` and ``dictionaries.samediff``;
* the grouping helpers (:func:`partition_by_key`, :func:`refine`);
* :class:`FaultPartition` — the mutable refinement engine the build
  stack runs on: interned integer class ids, an incrementally maintained
  indistinguished-pair count, column-driven :meth:`FaultPartition.refine`
  returning split deltas, a class-size multiset, and a stable canonical
  serialisation (:meth:`FaultPartition.to_doc`) used by the ``RFDC``
  build checkpoints.

``repro.dictionaries.resolution`` remains as a deprecation shim
re-exporting these names (``Partition`` is an alias of
:class:`FaultPartition`).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence


def pairs_within(size: int) -> int:
    """Number of unordered pairs inside one class: C(size, 2)."""
    return size * (size - 1) // 2


def indistinguished_pairs(partition: Iterable[Sequence[int]]) -> int:
    """Total within-class pairs of a partition (the paper's indistinguished count)."""
    return sum(pairs_within(len(members)) for members in partition)


def total_pairs(n_faults: int) -> int:
    """All unordered fault pairs C(n, 2) — the initial size of ``P``."""
    return pairs_within(n_faults)


def indistinguished_after_split(
    counts: Sequence[tuple], class_sizes: Sequence[int], base: int
) -> int:
    """Indistinguished pairs when classes split by a candidate's counts.

    ``base`` is the indistinguished count with no split anywhere; a class
    of size ``s`` with ``a`` members matching the candidate contributes
    ``C(a,2) + C(s-a,2)`` instead of ``C(s,2)``.  ``counts`` lists
    ``(class_id, a)`` pairs for the classes the candidate touches.
    """
    indist = base
    for cid, a in counts:
        size = class_sizes[cid]
        indist += pairs_within(a) + pairs_within(size - a) - pairs_within(size)
    return indist


def rows_indistinguished(rows: Iterable[Hashable]) -> int:
    """Indistinguished pairs of faults whose encoded rows are equal.

    The canonical form of the helper previously private to
    ``dictionaries.samediff`` (``_partition_indistinguished``): group by
    row value, sum within-group pairs.
    """
    groups: Dict[Hashable, int] = {}
    for row in rows:
        groups[row] = groups.get(row, 0) + 1
    return sum(pairs_within(count) for count in groups.values())


def partition_by_key(indices: Sequence[int], key) -> List[List[int]]:
    """Group ``indices`` by ``key(index)``, preserving first-seen order."""
    groups: Dict[Hashable, List[int]] = {}
    for index in indices:
        groups.setdefault(key(index), []).append(index)
    return list(groups.values())


def refine(partition: Sequence[Sequence[int]], key) -> List[List[int]]:
    """Split every class of ``partition`` by ``key``; singletons pass through."""
    refined: List[List[int]] = []
    for members in partition:
        if len(members) == 1:
            refined.append(list(members))
        else:
            refined.extend(partition_by_key(members, key))
    return refined


class FaultPartition:
    """A mutable partition of fault indices with O(1) class lookup.

    The engine behind baseline selection, checkpoint snapshots and the
    scale path: ``class_of[i]`` gives the interned class id of fault
    ``i`` and ``classes[cid]`` its member list.  Split classes keep
    their surviving members under the old id; the split-off part gets a
    fresh id, so ids are stable enough to use as dict keys within one
    operation.

    The still-indistinguished pair count is maintained *incrementally*
    from class sizes: :meth:`split` and :meth:`refine` adjust it by the
    exact delta they distinguish, so :meth:`indistinguished` is O(1)
    regardless of fault count — the property the 10k-fault builds rely
    on.
    """

    def __init__(self, indices: Sequence[int]) -> None:
        self.classes: List[List[int]] = [list(indices)]
        self.class_of: Dict[int, int] = {i: 0 for i in indices}
        self._indistinguished = pairs_within(len(self.classes[0]))

    @classmethod
    def from_groups(cls, groups: Sequence[Sequence[int]]) -> "FaultPartition":
        partition = cls([])
        partition.classes = [list(g) for g in groups]
        partition.class_of = {
            i: cid for cid, members in enumerate(partition.classes) for i in members
        }
        partition._indistinguished = indistinguished_pairs(partition.classes)
        return partition

    @property
    def n_indices(self) -> int:
        return len(self.class_of)

    @property
    def n_classes(self) -> int:
        """Number of non-empty classes (dead split remnants excluded)."""
        return sum(1 for members in self.classes if members)

    def sizes(self) -> List[int]:
        """The class-size multiset, descending (non-empty classes only)."""
        return sorted(
            (len(members) for members in self.classes if members), reverse=True
        )

    def indistinguished(self) -> int:
        return self._indistinguished

    def distinguished(self) -> int:
        return total_pairs(self.n_indices) - self._indistinguished

    @property
    def all_singletons(self) -> bool:
        """True when no pair is left to distinguish (refinement can stop)."""
        return self._indistinguished == 0

    def nontrivial_classes(self) -> List[List[int]]:
        return [members for members in self.classes if len(members) > 1]

    def split(self, inside: Iterable[int]) -> int:
        """Split every class into (members in ``inside``) / (the rest).

        Returns the number of pairs distinguished by the split, i.e. the
        decrease of :meth:`indistinguished`.
        """
        inside_by_class: Dict[int, List[int]] = {}
        for index in inside:
            inside_by_class.setdefault(self.class_of[index], []).append(index)
        distinguished = 0
        for cid, moved in inside_by_class.items():
            members = self.classes[cid]
            if len(moved) == len(members):
                continue
            distinguished += len(moved) * (len(members) - len(moved))
            moved_set = set(moved)
            # Both halves keep the class's existing member order, so
            # ascending lists stay ascending no matter how ``inside``
            # was ordered — the invariant the fault-block shards bisect
            # on (see repro.parallel.hierarchy.block_counts).
            remaining = [i for i in members if i not in moved_set]
            moved = [i for i in members if i in moved_set]
            self.classes[cid] = remaining
            new_cid = len(self.classes)
            self.classes.append(moved)
            for index in moved:
                self.class_of[index] = new_cid
        self._indistinguished -= distinguished
        return distinguished

    def refine(self, column: Sequence, value=None) -> int:
        """Refine by a response column; returns the pairs distinguished.

        With ``value`` given this is the binary split of :meth:`split`
        over ``column[i] == value`` (the same/different row bit of one
        test under one baseline).  Without it every class splits
        *multiway* by its members' column values — one pass over the
        live classes instead of one pass per candidate, which is how the
        checkpoint snapshots and class-trajectory counts stay cheap.
        """
        if value is not None:
            return self.split(
                [i for members in self.classes for i in members if column[i] == value]
            )
        distinguished = 0
        for cid in range(len(self.classes)):
            members = self.classes[cid]
            size = len(members)
            if size < 2:
                continue
            buckets: Dict[Hashable, List[int]] = {}
            for i in members:
                buckets.setdefault(column[i], []).append(i)
            if len(buckets) == 1:
                continue
            parts = list(buckets.values())
            distinguished += pairs_within(size) - sum(
                pairs_within(len(part)) for part in parts
            )
            self.classes[cid] = parts[0]
            for part in parts[1:]:
                new_cid = len(self.classes)
                self.classes.append(part)
                for i in part:
                    self.class_of[i] = new_cid
        self._indistinguished -= distinguished
        return distinguished

    def copy(self) -> "FaultPartition":
        clone = type(self)([])
        clone.classes = [list(members) for members in self.classes]
        clone.class_of = dict(self.class_of)
        clone._indistinguished = self._indistinguished
        return clone

    # ------------------------------------------------------------------
    # stable serialisation (RFDC checkpoint snapshots)
    # ------------------------------------------------------------------
    def to_doc(self) -> Dict[str, object]:
        """A canonical JSON-ready snapshot, independent of split history.

        Class labels are renumbered by first appearance over the sorted
        fault indices, so two partitions with the same classes serialise
        identically no matter how they were refined.
        """
        indices = sorted(self.class_of)
        remap: Dict[int, int] = {}
        labels = [
            remap.setdefault(self.class_of[i], len(remap)) for i in indices
        ]
        return {"version": 1, "indices": indices, "labels": labels}

    @classmethod
    def from_doc(cls, doc: Dict[str, object]) -> "FaultPartition":
        if doc.get("version") != 1:
            raise ValueError(
                f"unknown partition snapshot version {doc.get('version')!r}"
            )
        indices = doc["indices"]
        labels = doc["labels"]
        if len(indices) != len(labels):
            raise ValueError(
                f"{len(indices)} indices but {len(labels)} class labels"
            )
        groups: List[List[int]] = []
        seen = -1
        for index, label in zip(indices, labels):
            if label == seen + 1:
                groups.append([])
                seen = label
            elif label > seen:
                raise ValueError(
                    "class labels must appear in first-use order "
                    f"(saw {label} after {seen})"
                )
            groups[label].append(index)
        return cls.from_groups(groups)
