"""The pair-materialising reference partition.

:class:`MaterializedPairPartition` keeps what :class:`~repro.partition.core.FaultPartition`
deliberately avoids: the explicit set of still-indistinguished fault
pairs, each encoded as ``min(i,j) * n + max(i,j)``.  It refines through
the exact same :meth:`split` API, so any selection loop can run on
either representation and produce byte-identical baselines — which is
how two things get proven rather than claimed:

* the Hypothesis property suite checks that :class:`FaultPartition`'s
  incremental split deltas equal brute-force recomputation over the
  materialised set on random tables;
* ``benchmarks/test_scale_build.py`` measures the peak-memory gap
  between the two representations under the same refinement stream —
  the ≥5x scale gate of the partition-refinement core.

This is the seed path's ``O(F^2)`` shape kept alive as an oracle; never
use it on the build hot path.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, List, Sequence, Set

from .core import FaultPartition


class MaterializedPairPartition(FaultPartition):
    """A :class:`FaultPartition` that also materialises the pair set."""

    def __init__(self, indices: Sequence[int]) -> None:
        super().__init__(indices)
        members = self.classes[0]
        self._encode_base = (max(members) + 1) if members else 1
        self.pairs: Set[int] = {
            self._encode(a, b) for a, b in combinations(members, 2)
        }

    def _encode(self, a: int, b: int) -> int:
        if a > b:
            a, b = b, a
        return a * self._encode_base + b

    def split(self, inside: Iterable[int]) -> int:
        inside_by_class: Dict[int, List[int]] = {}
        for index in inside:
            inside_by_class.setdefault(self.class_of[index], []).append(index)
        removed = 0
        for cid, moved in inside_by_class.items():
            members = self.classes[cid]
            if len(moved) == len(members):
                continue
            moved_set = set(moved)
            for a in moved:
                for b in members:
                    if b not in moved_set:
                        self.pairs.discard(self._encode(a, b))
                        removed += 1
        delta = super().split(
            [i for moved in inside_by_class.values() for i in moved]
        )
        if delta != removed:
            raise AssertionError(
                f"pair-set delta {removed} disagrees with class-size delta {delta}"
            )
        return delta

    def indistinguished(self) -> int:
        """Counted from the materialised set — must equal the class-size count."""
        materialised = len(self.pairs)
        incremental = super().indistinguished()
        if materialised != incremental:
            raise AssertionError(
                f"materialised pair count {materialised} disagrees with "
                f"incremental count {incremental}"
            )
        return materialised
