"""Batch diagnosis serving: pool, server, sessions, structured outcomes.

The build side of the repo ends at an on-disk artifact
(:mod:`repro.store`); this package is the other half of the paper's
"build once, diagnose many" economics at service shape:

* :class:`ArtifactPool` — a bounded LRU pool of loaded (memory-mapped at
  load time) artifacts keyed by content hash, with single-flight load
  deduplication;
* :class:`DiagnosisServer` — batch fan-out over a worker pool with
  per-request deadlines, retry-with-backoff on transient artifact
  errors, and graceful degradation to reason-coded
  :class:`DiagnosisOutcome` values;
* :class:`DiagnosisSession` — incremental multi-observation diagnosis
  that narrows the candidate set test by test and reports when
  resolution stops improving.

All three entry points — ``repro.api.serve()`` (the facade),
``repro-fd serve`` (JSONL batches) and ``repro-fd daemon`` (the asyncio
network daemon, :mod:`repro.serve.daemon`) — speak the typed, versioned
wire schemas of :mod:`repro.serve.schemas`.  Semantics, sizing guidance
and the reason-code table live in ``docs/serving.md``; the daemon
protocol in ``docs/daemon.md``.
"""

from .outcomes import (
    ARTIFACT_ERROR,
    BAD_REQUEST,
    DEADLINE_EXPIRED,
    INTERNAL_ERROR,
    OK,
    REASON_CODES,
    UNMODELED_RESPONSE,
    BadRequest,
    DiagnosisOutcome,
    DiagnosisRequest,
    parse_batch_docs,
    parse_jsonl,
    parse_request,
)
from .pool import ArtifactPool, PoolEntry
from .schemas import (
    SCHEMA_VERSION,
    DiagnoseRequest,
    DiagnoseResult,
    SchemaError,
    SessionAdvance,
)
from .server import DiagnosisServer, ServeConfig
from .session import DiagnosisSession, SessionUpdate

__all__ = [
    "ARTIFACT_ERROR",
    "ArtifactPool",
    "BAD_REQUEST",
    "BadRequest",
    "DEADLINE_EXPIRED",
    "DiagnoseRequest",
    "DiagnoseResult",
    "DiagnosisOutcome",
    "DiagnosisRequest",
    "DiagnosisServer",
    "DiagnosisSession",
    "INTERNAL_ERROR",
    "OK",
    "PoolEntry",
    "REASON_CODES",
    "SCHEMA_VERSION",
    "SchemaError",
    "ServeConfig",
    "SessionAdvance",
    "SessionUpdate",
    "UNMODELED_RESPONSE",
    "parse_batch_docs",
    "parse_jsonl",
    "parse_request",
]
