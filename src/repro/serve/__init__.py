"""Batch diagnosis serving: pool, server, sessions, structured outcomes.

The build side of the repo ends at an on-disk artifact
(:mod:`repro.store`); this package is the other half of the paper's
"build once, diagnose many" economics at service shape:

* :class:`ArtifactPool` — a bounded LRU pool of loaded (memory-mapped at
  load time) artifacts keyed by content hash, with single-flight load
  deduplication;
* :class:`DiagnosisServer` — batch fan-out over a worker pool with
  per-request deadlines, retry-with-backoff on transient artifact
  errors, and graceful degradation to reason-coded
  :class:`DiagnosisOutcome` values;
* :class:`DiagnosisSession` — incremental multi-observation diagnosis
  that narrows the candidate set test by test and reports when
  resolution stops improving.

Entry points: ``repro.api.serve()`` (the facade) and ``repro-fd serve``
(JSONL batches on the command line).  Semantics, sizing guidance and the
reason-code table live in ``docs/serving.md``.
"""

from .outcomes import (
    ARTIFACT_ERROR,
    BAD_REQUEST,
    DEADLINE_EXPIRED,
    INTERNAL_ERROR,
    OK,
    REASON_CODES,
    UNMODELED_RESPONSE,
    BadRequest,
    DiagnosisOutcome,
    DiagnosisRequest,
    parse_jsonl,
    parse_request,
)
from .pool import ArtifactPool, PoolEntry
from .server import DiagnosisServer, ServeConfig
from .session import DiagnosisSession, SessionUpdate

__all__ = [
    "ARTIFACT_ERROR",
    "ArtifactPool",
    "BAD_REQUEST",
    "BadRequest",
    "DEADLINE_EXPIRED",
    "DiagnosisOutcome",
    "DiagnosisRequest",
    "DiagnosisServer",
    "DiagnosisSession",
    "INTERNAL_ERROR",
    "OK",
    "PoolEntry",
    "REASON_CODES",
    "ServeConfig",
    "SessionUpdate",
    "UNMODELED_RESPONSE",
    "parse_jsonl",
    "parse_request",
]
