"""The asyncio diagnosis daemon (``repro-fd daemon``).

A stdlib-only long-running network front end over the serve stack:
:class:`DiagnosisDaemon` speaks minimal HTTP/1.1 on a TCP socket,
validates every body against the typed wire schemas of
:mod:`repro.serve.schemas`, runs diagnosis on a worker executor through
:meth:`~repro.serve.server.DiagnosisServer.diagnose_one`, and holds
multi-observation sessions plus a hot-registerable artifact pool across
requests.  Protocol, endpoints and operations guidance live in
``docs/daemon.md``.
"""

from .daemon import (
    DaemonConfig,
    DaemonHandle,
    DiagnosisDaemon,
    start_in_thread,
)
from .http import (
    DEFAULT_MAX_BODY_BYTES,
    DEFAULT_MAX_HEADER_BYTES,
    FrameError,
    HttpRequest,
    read_request,
    render_response,
)

__all__ = [
    "DEFAULT_MAX_BODY_BYTES",
    "DEFAULT_MAX_HEADER_BYTES",
    "DaemonConfig",
    "DaemonHandle",
    "DiagnosisDaemon",
    "FrameError",
    "HttpRequest",
    "read_request",
    "render_response",
    "start_in_thread",
]
