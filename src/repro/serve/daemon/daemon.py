"""The asyncio diagnosis daemon: admission control, sessions, hot artifacts.

:class:`DiagnosisDaemon` is a long-lived network front end over the
existing serve stack — one :class:`~repro.serve.pool.ArtifactPool`, one
:class:`~repro.serve.server.DiagnosisServer`, the typed wire schemas of
:mod:`repro.serve.schemas` — speaking the minimal HTTP/1.1 of
:mod:`repro.serve.daemon.http` on a plain TCP socket.

Division of labour:

* the **event loop** owns framing, routing, admission control, quotas
  and session bookkeeping — nothing on the loop blocks;
* a **worker executor** (``config.serve.workers`` threads) runs the
  actual diagnosis via :meth:`DiagnosisServer.diagnose_one`, so the
  deadline/retry/degradation semantics of the batch server apply to
  every network request unchanged.

Admission is a bounded in-flight counter, not a queue: once
``max_inflight`` work units are running, further work is answered
``429 overloaded`` immediately — callers retry with backoff rather than
stacking requests into an invisible backlog.  Per-tenant quotas
(``X-Tenant`` header or the request's ``tenant`` field) bound how much
of that global budget one tenant can hold.

Shutdown drains: :meth:`stop` closes the listener, answers new work
``503 shutting_down``, waits up to ``drain_grace_s`` for in-flight work
to finish, then closes connections and the executor.
"""

from __future__ import annotations

import asyncio
import tempfile
import threading
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

from ...obs import get_default_registry
from .. import metrics as M
from ..outcomes import parse_batch_docs
from ..pool import ArtifactPool
from ..schemas import (
    BAD_REQUEST,
    SCHEMA_VERSION,
    DiagnoseRequest,
    DiagnoseResult,
    SchemaError,
    SessionAdvance,
)
from ..server import DiagnosisServer, ServeConfig
from ..session import DiagnosisSession
from . import http as H


@dataclass(frozen=True)
class DaemonConfig:
    """Operating envelope of one :class:`DiagnosisDaemon`.

    ``serve`` carries the per-request policy (workers, deadline,
    retries) — the daemon adds only network-facing knobs on top.
    ``max_inflight`` bounds concurrently *running* work units (a batch
    counts as one); ``tenant_quotas`` bounds named tenants below that,
    and ``default_tenant_quota`` applies to tenants not named (``None``
    means only the global bound applies).  Body/header ceilings are
    enforced before any buffering.
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the kernel pick (tests); CLI defaults to 8132
    serve: ServeConfig = field(default_factory=ServeConfig)
    default_artifact: Optional[str] = None
    max_inflight: int = 16
    max_batch: int = 256
    max_body_bytes: int = H.DEFAULT_MAX_BODY_BYTES
    max_header_bytes: int = H.DEFAULT_MAX_HEADER_BYTES
    drain_grace_s: float = 5.0
    tenant_quotas: Tuple[Tuple[str, int], ...] = ()
    default_tenant_quota: Optional[int] = None
    #: Where uploaded artifacts are spooled; ``None`` = system temp dir.
    spool_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        for name, quota in self.tenant_quotas:
            if quota < 1:
                raise ValueError(
                    f"tenant quota for {name!r} must be >= 1, got {quota}"
                )
        if self.default_tenant_quota is not None \
                and self.default_tenant_quota < 1:
            raise ValueError(
                "default_tenant_quota must be >= 1, got "
                f"{self.default_tenant_quota}"
            )

    def quota_for(self, tenant: str) -> Optional[int]:
        for name, quota in self.tenant_quotas:
            if name == tenant:
                return quota
        return self.default_tenant_quota


class _Admission:
    """The bounded in-flight budget, global and per-tenant.

    Loop-only state (no lock needed): acquire/release happen on the
    event loop; the executor threads never touch it.
    """

    def __init__(self, config: DaemonConfig) -> None:
        self.config = config
        self.inflight = 0
        self.per_tenant: Dict[str, int] = {}

    def try_acquire(self, tenant: Optional[str]) -> Optional[Tuple[str, str]]:
        """``None`` on admit, else ``(reason_code, detail)``."""
        if self.inflight >= self.config.max_inflight:
            return (
                H.OVERLOADED,
                f"{self.inflight} work units in flight "
                f"(max_inflight={self.config.max_inflight}); retry later",
            )
        if tenant is not None:
            quota = self.config.quota_for(tenant)
            held = self.per_tenant.get(tenant, 0)
            if quota is not None and held >= quota:
                return (
                    H.QUOTA_EXCEEDED,
                    f"tenant {tenant!r} holds {held} of {quota} "
                    "admission slots; retry later",
                )
        self.inflight += 1
        if tenant is not None:
            self.per_tenant[tenant] = self.per_tenant.get(tenant, 0) + 1
        get_default_registry().gauge(M.DAEMON_INFLIGHT).set(self.inflight)
        return None

    def release(self, tenant: Optional[str]) -> None:
        self.inflight -= 1
        if tenant is not None:
            held = self.per_tenant.get(tenant, 1) - 1
            if held <= 0:
                self.per_tenant.pop(tenant, None)
            else:
                self.per_tenant[tenant] = held
        get_default_registry().gauge(M.DAEMON_INFLIGHT).set(self.inflight)


class _Session:
    """One daemon-held session plus the lock serialising its advances."""

    __slots__ = ("session", "lock", "artifact")

    def __init__(self, session: DiagnosisSession, artifact: str) -> None:
        self.session = session
        self.lock = asyncio.Lock()
        self.artifact = artifact


class DiagnosisDaemon:
    """Serve the diagnosis protocol on a TCP socket until stopped."""

    def __init__(
        self,
        config: Optional[DaemonConfig] = None,
        *,
        server: Optional[DiagnosisServer] = None,
    ) -> None:
        self.config = config if config is not None else DaemonConfig()
        self.server = server if server is not None else DiagnosisServer(
            self.config.serve, default_artifact=self.config.default_artifact
        )
        self.pool: ArtifactPool = self.server.pool
        self._admission = _Admission(self.config)
        self._sessions: Dict[str, _Session] = {}
        self._listener: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._connections: set = set()
        self._busy = 0  # requests between frame-parsed and response-written
        self._state = "idle"  # idle -> ready -> draining -> stopped
        self._stopped = asyncio.Event()

    @property
    def _registry(self):
        # Resolved per use, not cached: tests swap the process default
        # with ``scoped_registry()`` while the daemon is running.
        return get_default_registry()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — port resolved after :meth:`start`."""
        if self._listener is None:
            raise RuntimeError("daemon is not started")
        sock = self._listener.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> Tuple[str, int]:
        """Bind the listener and start accepting; returns the address."""
        if self._state != "idle":
            raise RuntimeError(f"daemon already {self._state}")
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.serve.workers,
            thread_name_prefix="repro-daemon",
        )
        self._listener = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_header_bytes,
        )
        self._state = "ready"
        self._registry.gauge(M.DAEMON_READY).set(1)
        return self.address

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, then tear down."""
        if self._state in ("draining", "stopped"):
            return
        self._state = "draining"
        self._registry.gauge(M.DAEMON_READY).set(0)
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
        deadline = (
            asyncio.get_running_loop().time() + self.config.drain_grace_s
        )
        while self._admission.inflight > 0 or self._busy > 0:
            if asyncio.get_running_loop().time() >= deadline:
                break
            await asyncio.sleep(0.01)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self._sessions.clear()
        self._registry.gauge(M.DAEMON_OPEN_SESSIONS).set(0)
        self._state = "stopped"
        self._stopped.set()

    async def run_until_stopped(self) -> None:
        """Start (if needed) and block until :meth:`stop` completes."""
        if self._state == "idle":
            await self.start()
        await self._stopped.wait()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._registry.counter(M.DAEMON_CONNECTIONS).inc()
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass
        except ConnectionError:
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await H.read_request(
                    reader,
                    max_header_bytes=self.config.max_header_bytes,
                    max_body_bytes=self.config.max_body_bytes,
                )
            except H.FrameError as exc:
                self._registry.counter(M.DAEMON_BAD_FRAMES).inc()
                self._registry.counter(M.DAEMON_HTTP_ERRORS).inc()
                writer.write(H.json_response(
                    exc.status,
                    H.error_document(exc.code, str(exc)),
                    keep_alive=False,
                ))
                await writer.drain()
                return
            if request is None:
                return
            self._registry.counter(M.DAEMON_HTTP_REQUESTS).inc()
            # Busy from frame-parsed to response-written: the drain in
            # :meth:`stop` waits on this, so an admitted request always
            # gets its response before connections are torn down.
            self._busy += 1
            try:
                with self._registry.timer(M.DAEMON_REQUEST_SECONDS).time():
                    try:
                        status, document = await self._dispatch(request)
                    except H.FrameError as exc:
                        # Body-level JSON failures: framing is intact, so
                        # the connection survives, but the frame counts.
                        self._registry.counter(M.DAEMON_BAD_FRAMES).inc()
                        status = exc.status
                        document = H.error_document(exc.code, str(exc))
                    except Exception as exc:  # noqa: BLE001 - boundary
                        status = 500
                        document = H.error_document(
                            "internal_error", f"{type(exc).__name__}: {exc}"
                        )
                if status >= 400:
                    self._registry.counter(M.DAEMON_HTTP_ERRORS).inc()
                keep_alive = request.keep_alive
                writer.write(H.json_response(
                    status, document, keep_alive=keep_alive
                ))
                await writer.drain()
            finally:
                self._busy -= 1
            if not keep_alive:
                return

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(self, request: H.HttpRequest):
        """Route one request; returns ``(status, json_document)``."""
        path = request.path
        method = request.method

        if path == "/healthz":
            return self._require(request, "GET") or (200, self._health())
        if path == "/readyz":
            bad = self._require(request, "GET")
            if bad:
                return bad
            if self._state != "ready":
                return 503, H.error_document(
                    H.SHUTTING_DOWN if self._state == "draining"
                    else "not_ready",
                    f"daemon is {self._state}",
                )
            return 200, self._health()
        if path == "/metrics":
            return self._require(request, "GET") or (
                200, {"schema": SCHEMA_VERSION,
                      "metrics": self._registry.snapshot()}
            )

        if path == "/v1/diagnose":
            return self._require(request, "POST") \
                or await self._handle_diagnose(request)
        if path == "/v1/diagnose/batch":
            return self._require(request, "POST") \
                or await self._handle_batch(request)

        if path == "/v1/sessions":
            return self._require(request, "POST") \
                or await self._handle_session_open(request)
        if path.startswith("/v1/sessions/"):
            session_id = path[len("/v1/sessions/"):]
            if method == "POST":
                return await self._handle_session_advance(request, session_id)
            if method == "DELETE":
                return self._handle_session_close(session_id)
            return 405, H.error_document(
                H.METHOD_NOT_ALLOWED, f"{method} not allowed on {path}"
            )

        if path == "/v1/artifacts":
            if method == "GET":
                return 200, {
                    "schema": SCHEMA_VERSION,
                    "artifacts": self.pool.resident(),
                    "pinned": self.pool.pinned_hashes(),
                }
            if method == "POST":
                return await self._handle_artifact_register(request)
            return 405, H.error_document(
                H.METHOD_NOT_ALLOWED, f"{method} not allowed on {path}"
            )
        if path.startswith("/v1/artifacts/"):
            content_hash = path[len("/v1/artifacts/"):]
            if method == "DELETE":
                return self._handle_artifact_evict(content_hash)
            return 405, H.error_document(
                H.METHOD_NOT_ALLOWED, f"{method} not allowed on {path}"
            )

        return 404, H.error_document(H.NOT_FOUND, f"no route for {path}")

    def _require(self, request: H.HttpRequest, method: str):
        if request.method != method:
            return 405, H.error_document(
                H.METHOD_NOT_ALLOWED,
                f"{request.method} not allowed on {request.path} "
                f"(use {method})",
            )
        return None

    def _health(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "state": self._state,
            "inflight": self._admission.inflight,
            "max_inflight": self.config.max_inflight,
            "open_sessions": len(self._sessions),
            "pool": {
                "resident": len(self.pool),
                "capacity": self.pool.capacity,
                "pinned": len(self.pool.pinned_hashes()),
            },
            "workers": self.config.serve.workers,
        }

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _admit(self, tenant: Optional[str]):
        """``None`` on admit, else a ready ``(status, document)`` rejection."""
        if self._state != "ready":
            self._registry.counter(M.DAEMON_REJECTED_DRAINING).inc()
            return 503, H.error_document(
                H.SHUTTING_DOWN, f"daemon is {self._state}; not accepting work"
            )
        refused = self._admission.try_acquire(tenant)
        if refused is not None:
            code, detail = refused
            counter = (
                M.DAEMON_REJECTED_QUOTA if code == H.QUOTA_EXCEEDED
                else M.DAEMON_REJECTED_OVERLOAD
            )
            self._registry.counter(counter).inc()
            return 429, H.error_document(code, detail)
        return None

    @staticmethod
    def _tenant_of(request: H.HttpRequest, doc: object) -> Optional[str]:
        header = request.header("x-tenant")
        if header:
            return header
        if isinstance(doc, dict):
            tenant = doc.get("tenant")
            if isinstance(tenant, str) and tenant:
                return tenant
        return None

    async def _run_in_worker(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn, *args)

    # ------------------------------------------------------------------
    # work routes
    # ------------------------------------------------------------------
    async def _handle_diagnose(self, request: H.HttpRequest):
        doc = request.json_body()
        tenant = self._tenant_of(request, doc)
        try:
            parsed = DiagnoseRequest.from_dict(
                doc, default_id=f"http-{uuid.uuid4().hex[:12]}"
            )
        except SchemaError as exc:
            return 200, DiagnoseResult(
                request_id=self._doc_id(doc),
                code=exc.code,
                detail=str(exc),
            ).as_dict()
        rejected = self._admit(tenant)
        if rejected:
            return rejected
        try:
            outcome = await self._run_in_worker(
                self.server.diagnose_one, parsed
            )
        finally:
            self._admission.release(tenant)
        return 200, DiagnoseResult.from_outcome(outcome).as_dict()

    async def _handle_batch(self, request: H.HttpRequest):
        doc = request.json_body()
        tenant = self._tenant_of(request, doc)
        if isinstance(doc, dict):
            raw = doc.get("requests")
        else:
            raw = doc
        if not isinstance(raw, list):
            raise H.FrameError(
                400, H.MALFORMED_FRAME,
                'batch body must be {"requests": [...]} or a JSON array',
            )
        if len(raw) > self.config.max_batch:
            return 413, H.error_document(
                H.BATCH_TOO_LARGE,
                f"batch of {len(raw)} requests exceeds "
                f"max_batch={self.config.max_batch}",
            )
        rejected = self._admit(tenant)
        if rejected:
            return rejected
        try:
            entries = parse_batch_docs(raw)
            outcomes = await self._run_in_worker(
                self.server.diagnose_batch, entries
            )
        finally:
            self._admission.release(tenant)
        return 200, {
            "schema": SCHEMA_VERSION,
            "results": [
                DiagnoseResult.from_outcome(outcome).as_dict(
                    include_schema=False
                )
                for outcome in outcomes
            ],
        }

    @staticmethod
    def _doc_id(doc: object) -> str:
        if isinstance(doc, dict) and isinstance(doc.get("id"), str) \
                and doc["id"]:
            return doc["id"]
        return f"http-{uuid.uuid4().hex[:12]}"

    # ------------------------------------------------------------------
    # session routes
    # ------------------------------------------------------------------
    async def _handle_session_open(self, request: H.HttpRequest):
        doc = request.json_body()
        if not isinstance(doc, dict):
            raise H.FrameError(
                400, H.MALFORMED_FRAME, "session open body must be an object"
            )
        unknown = set(doc) - {"schema", "artifact", "stall_after", "flip_budget"}
        if unknown:
            return 200, self._schema_rejection(
                f"unknown session-open fields: {sorted(unknown)}"
            )
        artifact = doc.get("artifact")
        if artifact is not None and (
            not isinstance(artifact, str) or not artifact
        ):
            return 200, self._schema_rejection(
                f"artifact must be a non-empty path, got {artifact!r}"
            )
        stall_after = doc.get("stall_after", 3)
        if isinstance(stall_after, bool) or not isinstance(stall_after, int) \
                or stall_after < 1:
            return 200, self._schema_rejection(
                f"stall_after must be a positive integer, got {stall_after!r}"
            )
        flip_budget = doc.get("flip_budget")
        if flip_budget is not None and (
            isinstance(flip_budget, bool) or not isinstance(flip_budget, int)
            or flip_budget < 0
        ):
            return 200, self._schema_rejection(
                f"flip_budget must be a non-negative integer, "
                f"got {flip_budget!r}"
            )
        tenant = self._tenant_of(request, doc)
        rejected = self._admit(tenant)
        if rejected:
            return rejected
        try:
            session = await self._run_in_worker(
                lambda: self.server.session(
                    artifact, stall_after=stall_after, flip_budget=flip_budget
                )
            )
        except Exception as exc:  # noqa: BLE001 - load failures -> document
            return 200, self._schema_rejection(
                f"{type(exc).__name__}: {exc}", code="artifact_error"
            )
        finally:
            self._admission.release(tenant)
        session_id = uuid.uuid4().hex[:16]
        path = artifact if artifact is not None else self.server.default_artifact
        self._sessions[session_id] = _Session(session, str(path))
        self._registry.gauge(M.DAEMON_OPEN_SESSIONS).set(len(self._sessions))
        return 201, {
            "schema": SCHEMA_VERSION,
            "session": session_id,
            "report": session.report(),
        }

    @staticmethod
    def _schema_rejection(detail: str, *, code: str = BAD_REQUEST):
        return {"schema": SCHEMA_VERSION, "code": code, "detail": detail}

    async def _handle_session_advance(
        self, request: H.HttpRequest, session_id: str
    ):
        doc = request.json_body()
        held = self._sessions.get(session_id)
        if held is None:
            return 404, H.error_document(
                H.UNKNOWN_SESSION, f"no open session {session_id!r}"
            )
        try:
            advance = SessionAdvance.from_dict(doc, session_id=session_id)
        except SchemaError as exc:
            return 200, self._schema_rejection(str(exc), code=exc.code)
        tenant = self._tenant_of(request, doc)
        rejected = self._admit(tenant)
        if rejected:
            return rejected
        try:
            async with held.lock:
                return 200, await self._run_in_worker(
                    self._advance_session, held, advance
                )
        except ValueError as exc:
            return 200, self._schema_rejection(
                str(exc), code="unmodeled_response"
            )
        finally:
            self._admission.release(tenant)

    def _advance_session(
        self, held: _Session, advance: SessionAdvance
    ) -> Dict[str, object]:
        session = held.session
        for test_index, signature in advance.observations:
            session.observe(test_index, signature)
        candidates = [str(fault) for fault in session.candidate_faults()]
        if advance.limit:
            candidates = candidates[: advance.limit]
        document: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "session": advance.session_id,
            "report": session.report(),
            "candidates": candidates,
        }
        if advance.suggest:
            strategy = (
                advance.strategy
                if advance.strategy is not None
                else self.server.config.strategy
            )
            document["suggested_test"] = session.suggest_next_test(strategy)
        return document

    def _handle_session_close(self, session_id: str):
        held = self._sessions.pop(session_id, None)
        self._registry.gauge(M.DAEMON_OPEN_SESSIONS).set(len(self._sessions))
        if held is None:
            return 404, H.error_document(
                H.UNKNOWN_SESSION, f"no open session {session_id!r}"
            )
        return 200, {
            "schema": SCHEMA_VERSION,
            "session": session_id,
            "report": held.session.report(),
        }

    # ------------------------------------------------------------------
    # artifact routes
    # ------------------------------------------------------------------
    async def _handle_artifact_register(self, request: H.HttpRequest):
        content_type = request.header("content-type", "application/json")
        if content_type.startswith("application/octet-stream"):
            return await self._register_upload(request)
        doc = request.json_body()
        if not isinstance(doc, dict) or not isinstance(doc.get("path"), str) \
                or not doc["path"]:
            raise H.FrameError(
                400, H.MALFORMED_FRAME,
                'artifact registration body must be {"path": "<artifact>"} '
                "(or an application/octet-stream upload)",
            )
        pin = doc.get("pin", True)
        if not isinstance(pin, bool):
            raise H.FrameError(
                400, H.MALFORMED_FRAME, f"pin must be a boolean, got {pin!r}"
            )
        return await self._register_path(doc["path"], pin=pin)

    async def _register_upload(self, request: H.HttpRequest):
        spool = Path(
            self.config.spool_dir
            if self.config.spool_dir is not None
            else tempfile.gettempdir()
        )
        spool.mkdir(parents=True, exist_ok=True)
        name = request.header("x-artifact-name") or uuid.uuid4().hex[:12]
        safe = "".join(c for c in name if c.isalnum() or c in "-_.") or "upload"
        target = spool / f"repro-daemon-{safe}.fdict"
        body = request.body
        await self._run_in_worker(target.write_bytes, body)
        return await self._register_path(str(target), pin=True)

    async def _register_path(self, path: str, *, pin: bool):
        try:
            if pin:
                entry = await self._run_in_worker(self.pool.pin, path)
            else:
                entry = await self._run_in_worker(self.pool.get, path)
        except Exception as exc:  # noqa: BLE001 - load failures -> document
            return 422, H.error_document(
                "artifact_error", f"{type(exc).__name__}: {exc}"
            )
        self._registry.counter(M.DAEMON_ARTIFACTS_REGISTERED).inc()
        return 201, {
            "schema": SCHEMA_VERSION,
            "content_hash": entry.content_hash,
            "path": entry.path,
            "pinned": pin,
            "faults": entry.table.n_faults,
            "tests": entry.table.n_tests,
        }

    def _handle_artifact_evict(self, content_hash: str):
        removed = self.pool.evict(content_hash)
        if not removed:
            return 404, H.error_document(
                H.NOT_FOUND, f"no resident artifact {content_hash!r}"
            )
        self._registry.counter(M.DAEMON_ARTIFACTS_EVICTED).inc()
        return 200, {
            "schema": SCHEMA_VERSION,
            "content_hash": content_hash,
            "evicted": True,
        }


# ----------------------------------------------------------------------
# threaded harness (tests, benchmarks, embedding)
# ----------------------------------------------------------------------
class DaemonHandle:
    """A running daemon on a background thread, stoppable from any thread.

    The test/benchmark harness: the daemon's event loop runs on a
    dedicated thread; ``host``/``port`` are readable once ``started``
    fires; :meth:`stop` performs the graceful drain from the caller's
    thread and joins the loop thread.
    """

    def __init__(self, daemon: DiagnosisDaemon) -> None:
        self.daemon = daemon
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.started = threading.Event()
        self.error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-daemon-loop", daemon=True
        )

    def _run(self) -> None:
        async def main() -> None:
            try:
                self.host, self.port = await self.daemon.start()
            except BaseException as exc:  # noqa: BLE001 - surface to caller
                self.error = exc
                self.started.set()
                return
            self._loop = asyncio.get_running_loop()
            self.started.set()
            await self.daemon.run_until_stopped()

        asyncio.run(main())

    def start(self, timeout: float = 10.0) -> "DaemonHandle":
        self._thread.start()
        if not self.started.wait(timeout):
            raise RuntimeError("daemon did not start within the timeout")
        if self.error is not None:
            raise self.error
        return self

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and not self._loop.is_closed():
            future = asyncio.run_coroutine_threadsafe(
                self.daemon.stop(), self._loop
            )
            try:
                future.result(timeout)
            except (asyncio.CancelledError, TimeoutError):
                pass
        self._thread.join(timeout)

    def __enter__(self) -> "DaemonHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(
    config: Optional[DaemonConfig] = None,
    *,
    server: Optional[DiagnosisServer] = None,
    timeout: float = 10.0,
) -> DaemonHandle:
    """Boot a daemon on a background thread and wait for its address."""
    return DaemonHandle(DiagnosisDaemon(config, server=server)).start(timeout)
