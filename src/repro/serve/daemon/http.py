"""Minimal HTTP/1.1 framing over asyncio streams — stdlib only.

The daemon does not pull in an HTTP framework; this module implements
exactly the slice of HTTP/1.1 the diagnosis protocol needs: request-line
plus headers, ``Content-Length`` bodies with hard size limits, keep-alive
connection reuse, and reason-coded rejection of everything else
(malformed frames, oversized headers/bodies, chunked transfer encoding).

Framing failures raise :class:`FrameError` carrying the HTTP status, a
machine reason code and a human detail; the daemon renders those as a
JSON error document and — because a connection that failed to frame
cannot be resynchronised — closes the connection.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

#: Hard ceiling on the request head (request line + headers), bytes.
DEFAULT_MAX_HEADER_BYTES = 32 * 1024
#: Hard ceiling on a request body, bytes (artifact uploads included).
DEFAULT_MAX_BODY_BYTES = 32 * 1024 * 1024

#: Transport-level reason codes (distinct from the diagnosis outcome
#: codes in :mod:`repro.serve.schemas`; documented in ``docs/daemon.md``).
MALFORMED_FRAME = "malformed_frame"
OVERSIZED_HEADER = "oversized_header"
OVERSIZED_BODY = "oversized_body"
UNSUPPORTED_TRANSFER = "unsupported_transfer_encoding"
NOT_FOUND = "not_found"
METHOD_NOT_ALLOWED = "method_not_allowed"
OVERLOADED = "overloaded"
QUOTA_EXCEEDED = "quota_exceeded"
SHUTTING_DOWN = "shutting_down"
BATCH_TOO_LARGE = "batch_too_large"
UNKNOWN_SESSION = "unknown_session"

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class FrameError(Exception):
    """An HTTP frame that cannot be parsed (or exceeds a hard limit).

    ``status`` is the HTTP status to answer with, ``code`` the machine
    reason code, ``str(exc)`` the human detail.  Framing errors always
    close the connection — there is no reliable way to find the next
    request boundary after one.
    """

    def __init__(self, status: int, code: str, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.code = code


@dataclass
class HttpRequest:
    """One parsed request frame."""

    method: str
    target: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"
    keep_alive: bool = True

    @property
    def path(self) -> str:
        """The target with any query string stripped."""
        return self.target.split("?", 1)[0]

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def json_body(self) -> object:
        """Decode the body as JSON; :class:`FrameError` on failure."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FrameError(
                400, MALFORMED_FRAME, f"body is not valid JSON: {exc}"
            ) from exc


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_header_bytes: int = DEFAULT_MAX_HEADER_BYTES,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> Optional[HttpRequest]:
    """Read one request frame; ``None`` on clean end-of-stream.

    The stream's own ``limit`` (set when the server was created) bounds
    the header scan; bodies are bounded by ``max_body_bytes`` *before*
    they are read, so an oversized upload is rejected without buffering.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between keep-alive requests
        raise FrameError(
            400, MALFORMED_FRAME,
            "connection closed before the request head completed",
        ) from exc
    except asyncio.LimitOverrunError as exc:
        raise FrameError(
            431, OVERSIZED_HEADER,
            f"request head exceeds {max_header_bytes} bytes",
        ) from exc

    if len(head) > max_header_bytes:
        raise FrameError(
            431, OVERSIZED_HEADER,
            f"request head of {len(head)} bytes exceeds {max_header_bytes}",
        )

    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise FrameError(400, MALFORMED_FRAME, "undecodable header") from exc
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[0] or not parts[1].startswith("/"):
        raise FrameError(
            400, MALFORMED_FRAME, f"malformed request line: {lines[0]!r}"
        )
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise FrameError(
            400, MALFORMED_FRAME, f"unsupported protocol {version!r}"
        )

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise FrameError(
                400, MALFORMED_FRAME, f"malformed header line: {line!r}"
            )
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise FrameError(
            501, UNSUPPORTED_TRANSFER,
            "chunked/compressed transfer encodings are not supported; "
            "send a Content-Length body",
        )

    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.1":
        keep_alive = connection != "close"
    else:
        keep_alive = connection == "keep-alive"

    body = b""
    raw_length = headers.get("content-length", "0")
    try:
        length = int(raw_length)
    except ValueError as exc:
        raise FrameError(
            400, MALFORMED_FRAME, f"bad Content-Length {raw_length!r}"
        ) from exc
    if length < 0:
        raise FrameError(
            400, MALFORMED_FRAME, f"negative Content-Length {length}"
        )
    if length > max_body_bytes:
        raise FrameError(
            413, OVERSIZED_BODY,
            f"body of {length} bytes exceeds the {max_body_bytes}-byte limit",
        )
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise FrameError(
                400, MALFORMED_FRAME,
                f"connection closed after {len(exc.partial)} of "
                f"{length} body bytes",
            ) from exc

    return HttpRequest(
        method=method,
        target=target,
        headers=headers,
        body=body,
        version=version,
        keep_alive=keep_alive,
    )


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Iterable[Tuple[str, str]] = (),
) -> bytes:
    """Serialise one response frame (status line, headers, body)."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_response(
    status: int,
    document: object,
    *,
    keep_alive: bool = True,
    extra_headers: Iterable[Tuple[str, str]] = (),
) -> bytes:
    """A JSON document as a complete response frame."""
    body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
    return render_response(
        status, body, keep_alive=keep_alive, extra_headers=extra_headers
    )


def error_document(code: str, detail: str) -> Dict[str, object]:
    """The uniform transport-error envelope (versioned like the schemas)."""
    from ..schemas import SCHEMA_VERSION

    return {"schema": SCHEMA_VERSION, "code": code, "detail": detail}
