"""The serve layer's metric-name catalog.

Every metric the serve layer emits is addressed through a constant in
this module — never an inline string literal — so the catalog below *is*
the emission surface.  ``tests/docs/test_metrics_catalog.py`` holds the
names (this table plus a literal scan of ``src/repro/serve/``) against
the table in ``docs/observability.md``: a metric added here without a
doc row fails the suite.
"""

from __future__ import annotations

# -- counters ----------------------------------------------------------
#: Requests accepted into a batch (every request, whatever its outcome).
REQUESTS = "serve.requests"
#: Batches processed by :meth:`DiagnosisServer.diagnose_batch`.
BATCHES = "serve.batches"
#: Artifact-load attempts retried after a transient error.
RETRIES = "serve.retries"
#: Pool lookups answered from a resident entry.
POOL_HITS = "serve.pool_hits"
#: Pool lookups that had to load the artifact.
POOL_MISSES = "serve.pool_misses"
#: Entries evicted to respect the pool capacity.
POOL_EVICTIONS = "serve.pool_evictions"
#: Lookups that waited on another thread's in-flight load (single-flight).
POOL_SINGLE_FLIGHT_WAITS = "serve.pool_single_flight_waits"
#: Sessions opened through :meth:`DiagnosisServer.session` / ``DiagnosisSession``.
SESSIONS = "serve.sessions"
#: Observations folded into sessions.
SESSION_OBSERVATIONS = "serve.session_observations"
#: Sessions that reported convergence (resolution stopped improving).
SESSIONS_CONVERGED = "serve.sessions_converged"

#: Per-outcome counters: ``serve.outcomes.<reason code>``.
OUTCOME_PREFIX = "serve.outcomes."

# -- daemon counters ---------------------------------------------------
#: TCP connections accepted by the asyncio daemon.
DAEMON_CONNECTIONS = "serve.daemon.connections"
#: HTTP requests parsed off daemon connections (every route and method).
DAEMON_HTTP_REQUESTS = "serve.daemon.http_requests"
#: Responses with a non-2xx HTTP status (transport-level errors).
DAEMON_HTTP_ERRORS = "serve.daemon.http_errors"
#: Work requests rejected because ``max_inflight`` was saturated.
DAEMON_REJECTED_OVERLOAD = "serve.daemon.rejected_overload"
#: Work requests rejected by a per-tenant admission quota.
DAEMON_REJECTED_QUOTA = "serve.daemon.rejected_quota"
#: Work requests rejected because the daemon was draining for shutdown.
DAEMON_REJECTED_DRAINING = "serve.daemon.rejected_draining"
#: Connections dropped for unparseable or oversized HTTP frames.
DAEMON_BAD_FRAMES = "serve.daemon.bad_frames"
#: Artifacts hot-registered (uploaded or pinned by path) while running.
DAEMON_ARTIFACTS_REGISTERED = "serve.daemon.artifacts_registered"
#: Artifacts explicitly evicted through the daemon API.
DAEMON_ARTIFACTS_EVICTED = "serve.daemon.artifacts_evicted"

# -- gauges ------------------------------------------------------------
#: Resident entries in the artifact pool after the last access.
POOL_SIZE = "serve.pool_size"
#: Worker threads of the last batch.
WORKERS = "serve.workers"
#: Admitted daemon work units currently in flight.
DAEMON_INFLIGHT = "serve.daemon.inflight"
#: Multi-observation sessions currently held open by the daemon.
DAEMON_OPEN_SESSIONS = "serve.daemon.open_sessions"
#: 1 while the daemon accepts work, 0 while starting/draining/stopped.
DAEMON_READY = "serve.daemon.ready"

# -- timers ------------------------------------------------------------
#: End-to-end latency of one request (parse → outcome).
REQUEST_SECONDS = "serve.request_seconds"
#: Artifact load latency inside the pool (misses only).
LOAD_SECONDS = "serve.load_seconds"
#: Dictionary lookup latency (the diagnose stage alone).
DIAGNOSE_SECONDS = "serve.diagnose_seconds"
#: Wall time of a whole batch.
BATCH_SECONDS = "serve.batch_seconds"
#: HTTP request latency in the daemon (frame parsed → response written).
DAEMON_REQUEST_SECONDS = "serve.daemon.request_seconds"


def outcome_counter(code: str) -> str:
    """The counter name recording outcomes with reason ``code``."""
    return OUTCOME_PREFIX + code


def catalog() -> dict:
    """Every metric name the serve layer can emit, keyed by kind.

    The outcome counters are enumerated from the reason codes so the
    docs test sees the expanded names, not the prefix.
    """
    from .outcomes import REASON_CODES

    return {
        "counters": [
            REQUESTS,
            BATCHES,
            RETRIES,
            POOL_HITS,
            POOL_MISSES,
            POOL_EVICTIONS,
            POOL_SINGLE_FLIGHT_WAITS,
            SESSIONS,
            SESSION_OBSERVATIONS,
            SESSIONS_CONVERGED,
            DAEMON_CONNECTIONS,
            DAEMON_HTTP_REQUESTS,
            DAEMON_HTTP_ERRORS,
            DAEMON_REJECTED_OVERLOAD,
            DAEMON_REJECTED_QUOTA,
            DAEMON_REJECTED_DRAINING,
            DAEMON_BAD_FRAMES,
            DAEMON_ARTIFACTS_REGISTERED,
            DAEMON_ARTIFACTS_EVICTED,
            *[outcome_counter(code) for code in REASON_CODES],
        ],
        "gauges": [
            POOL_SIZE,
            WORKERS,
            DAEMON_INFLIGHT,
            DAEMON_OPEN_SESSIONS,
            DAEMON_READY,
        ],
        "timers": [
            REQUEST_SECONDS,
            LOAD_SECONDS,
            DIAGNOSE_SECONDS,
            BATCH_SECONDS,
            DAEMON_REQUEST_SECONDS,
        ],
    }
