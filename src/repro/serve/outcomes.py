"""Request/outcome value types of the batch diagnosis service.

A batch is a sequence of :class:`DiagnoseRequest` values (usually parsed
from JSONL) and always yields one :class:`DiagnosisOutcome` per request,
in request order.  Degradation is structural, never exceptional: a
malformed request, an observed response the dictionary cannot encode, an
expired deadline or an artifact that will not load each produce an
outcome with the matching reason code — the batch itself succeeds.

The wire shapes (validation, schema versioning, the frozen
``DiagnoseRequest``/``DiagnoseResult``/``SessionAdvance`` trio) live in
:mod:`repro.serve.schemas`; this module keeps the in-process outcome
object the server mutates while serving, plus the JSONL batch decoding
that degrades corrupt lines to ``bad_request`` outcomes.

Reason codes (also surfaced as ``serve.outcomes.<code>`` counters and
documented in ``docs/serving.md``):

===================  ====================================================
``ok``               diagnosis ran; ``exact``/``ranked`` are meaningful
``bad_request``      the request itself is malformed (unparseable JSON,
                     missing/contradictory fields, negative limit)
``unmodeled_response``  the observed response does not fit the
                     dictionary: wrong test count, output index out of
                     range, or a named fault absent from the catalogue
``deadline_expired`` the per-request deadline passed before a result
``artifact_error``   the artifact failed to load after every retry
``internal_error``   an unexpected exception; the batch still completes
===================  ====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .schemas import (
    ARTIFACT_ERROR,
    BAD_REQUEST,
    DEADLINE_EXPIRED,
    INTERNAL_ERROR,
    OK,
    REASON_CODES,
    UNMODELED_RESPONSE,
    DiagnoseRequest,
    DiagnoseResult,
    SchemaError,
)

#: Back-compat aliases: the request type moved to ``repro.serve.schemas``
#: (PR 8); the old names keep working for existing callers.
DiagnosisRequest = DiagnoseRequest
BadRequest = SchemaError

__all__ = [
    "ARTIFACT_ERROR",
    "BAD_REQUEST",
    "BadRequest",
    "DEADLINE_EXPIRED",
    "DiagnosisOutcome",
    "DiagnosisRequest",
    "INTERNAL_ERROR",
    "OK",
    "REASON_CODES",
    "UNMODELED_RESPONSE",
    "parse_jsonl",
    "parse_request",
]


@dataclass
class DiagnosisOutcome:
    """The structured result of one request — degraded or not.

    This is the mutable in-process form (the server stamps
    ``elapsed_seconds`` and ``policy`` after the fact);
    :meth:`~repro.serve.schemas.DiagnoseResult.from_outcome` freezes it
    into the wire shape.
    """

    request_id: str
    #: One of :data:`REASON_CODES`.
    code: str
    #: Faults whose stored row matches the response exactly (names).
    exact: List[str] = field(default_factory=list)
    #: Best-matching faults with per-test agreement scores.
    ranked: List[Tuple[str, int]] = field(default_factory=list)
    #: Human-readable elaboration of a non-``ok`` code.
    detail: str = ""
    #: Artifact-load attempts consumed (1 = no retries).
    attempts: int = 1
    #: End-to-end seconds spent on this request.
    elapsed_seconds: float = 0.0
    #: Session flow only: candidate-set size after each observation.
    narrowing: Optional[List[int]] = None
    #: Session flow only: resolution stopped improving before the end.
    converged: Optional[bool] = None
    #: Degraded outcomes only: the operative server policy (deadline and
    #: retry settings), so a ``deadline_expired``/``artifact_error`` line
    #: is auditable from the JSONL output alone.
    policy: Optional[Dict[str, object]] = None
    #: Session flow only, and only when the request asked for one: the
    #: next test worth applying (``None`` = not asked or nothing helps).
    suggested_test: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.code == OK

    def as_dict(self) -> Dict[str, object]:
        return DiagnoseResult.from_outcome(self).as_dict(include_schema=False)

    def to_json_line(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)


def parse_request(doc: object, *, default_id: str) -> DiagnoseRequest:
    """Validate one decoded JSONL document into a :class:`DiagnoseRequest`.

    Thin delegate kept for back-compat; the validation itself lives in
    :meth:`repro.serve.schemas.DiagnoseRequest.from_dict`.  Raises
    :class:`~repro.serve.schemas.SchemaError` (alias :class:`BadRequest`)
    with a precise message on any malformation; the server turns that
    into a ``bad_request`` outcome rather than letting it fail the batch.
    """
    return DiagnoseRequest.from_dict(doc, default_id=default_id)


def parse_jsonl(lines, *, id_prefix: str = "request") -> List[object]:
    """Decode a JSONL request stream into requests and early outcomes.

    Returns one entry per non-blank line: a :class:`DiagnoseRequest`, or
    — for lines that fail to decode or validate — a ready-made
    ``bad_request`` :class:`DiagnosisOutcome`, so a corrupt line degrades
    that one request and never the batch.
    """
    parsed: List[object] = []
    for number, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        default_id = f"{id_prefix}-{number}"
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            parsed.append(DiagnosisOutcome(
                request_id=default_id, code=BAD_REQUEST,
                detail=f"line {number}: invalid JSON: {exc}",
            ))
            continue
        try:
            parsed.append(DiagnoseRequest.from_dict(doc, default_id=default_id))
        except SchemaError as exc:
            request_id = default_id
            if isinstance(doc, dict) and isinstance(doc.get("id"), str):
                request_id = doc["id"]
            parsed.append(DiagnosisOutcome(
                request_id=request_id, code=exc.code,
                detail=f"line {number}: {exc}",
            ))
    return parsed


def parse_batch_docs(docs, *, id_prefix: str = "request") -> List[object]:
    """Decode an already-JSON-decoded list of request documents.

    The JSON-array counterpart of :func:`parse_jsonl` (the daemon's
    batch endpoint accepts both): one entry per document — a validated
    :class:`DiagnoseRequest` or a ready-made ``bad_request``
    :class:`DiagnosisOutcome` for documents that fail validation.
    """
    parsed: List[object] = []
    for number, doc in enumerate(docs, start=1):
        default_id = f"{id_prefix}-{number}"
        try:
            parsed.append(DiagnoseRequest.from_dict(doc, default_id=default_id))
        except SchemaError as exc:
            request_id = default_id
            if isinstance(doc, dict) and isinstance(doc.get("id"), str):
                request_id = doc["id"]
            parsed.append(DiagnosisOutcome(
                request_id=request_id, code=exc.code,
                detail=f"request {number}: {exc}",
            ))
    return parsed
