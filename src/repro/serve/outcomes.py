"""Request/outcome value types of the batch diagnosis service.

A batch is a sequence of :class:`DiagnosisRequest` values (usually parsed
from JSONL) and always yields one :class:`DiagnosisOutcome` per request,
in request order.  Degradation is structural, never exceptional: a
malformed request, an observed response the dictionary cannot encode, an
expired deadline or an artifact that will not load each produce an
outcome with the matching reason code — the batch itself succeeds.

Reason codes (also surfaced as ``serve.outcomes.<code>`` counters and
documented in ``docs/serving.md``):

===================  ====================================================
``ok``               diagnosis ran; ``exact``/``ranked`` are meaningful
``bad_request``      the request itself is malformed (unparseable JSON,
                     missing/contradictory fields, negative limit)
``unmodeled_response``  the observed response does not fit the
                     dictionary: wrong test count, output index out of
                     range, or a named fault absent from the catalogue
``deadline_expired`` the per-request deadline passed before a result
``artifact_error``   the artifact failed to load after every retry
``internal_error``   an unexpected exception; the batch still completes
===================  ====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.responses import Signature

OK = "ok"
BAD_REQUEST = "bad_request"
UNMODELED_RESPONSE = "unmodeled_response"
DEADLINE_EXPIRED = "deadline_expired"
ARTIFACT_ERROR = "artifact_error"
INTERNAL_ERROR = "internal_error"

#: Every reason code an outcome can carry, in severity order.
REASON_CODES = (
    OK,
    BAD_REQUEST,
    UNMODELED_RESPONSE,
    DEADLINE_EXPIRED,
    ARTIFACT_ERROR,
    INTERNAL_ERROR,
)


class BadRequest(ValueError):
    """Raised by :func:`parse_request` on a malformed request document."""


@dataclass(frozen=True)
class DiagnosisRequest:
    """One failing-chip lookup inside a batch.

    Exactly one of ``observed`` (per-test failing-output signatures) or
    ``fault`` (a modelled fault name whose stored full row stands in for
    the tester response — the demo/evaluation path, no circuit files
    needed) must be given.  ``artifact`` overrides the server's default
    artifact for this request; ``observations`` switches the request to
    the incremental session flow (see ``docs/serving.md``).
    """

    request_id: str
    observed: Optional[Tuple[Signature, ...]] = None
    fault: Optional[str] = None
    artifact: Optional[str] = None
    observations: Optional[Tuple[Tuple[int, Signature], ...]] = None
    limit: int = 10


@dataclass
class DiagnosisOutcome:
    """The structured result of one request — degraded or not."""

    request_id: str
    #: One of :data:`REASON_CODES`.
    code: str
    #: Faults whose stored row matches the response exactly (names).
    exact: List[str] = field(default_factory=list)
    #: Best-matching faults with per-test agreement scores.
    ranked: List[Tuple[str, int]] = field(default_factory=list)
    #: Human-readable elaboration of a non-``ok`` code.
    detail: str = ""
    #: Artifact-load attempts consumed (1 = no retries).
    attempts: int = 1
    #: End-to-end seconds spent on this request.
    elapsed_seconds: float = 0.0
    #: Session flow only: candidate-set size after each observation.
    narrowing: Optional[List[int]] = None
    #: Session flow only: resolution stopped improving before the end.
    converged: Optional[bool] = None

    @property
    def ok(self) -> bool:
        return self.code == OK

    def as_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "id": self.request_id,
            "code": self.code,
            "exact": list(self.exact),
            "ranked": [[fault, score] for fault, score in self.ranked],
            "attempts": self.attempts,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }
        if self.detail:
            doc["detail"] = self.detail
        if self.narrowing is not None:
            doc["narrowing"] = list(self.narrowing)
        if self.converged is not None:
            doc["converged"] = self.converged
        return doc

    def to_json_line(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)


def _parse_signature(doc: object, *, what: str) -> Signature:
    if not isinstance(doc, (list, tuple)):
        raise BadRequest(f"{what} must be a list of output indices, got {doc!r}")
    outputs: List[int] = []
    for item in doc:
        if isinstance(item, bool) or not isinstance(item, int) or item < 0:
            raise BadRequest(
                f"{what} must hold non-negative output indices, got {item!r}"
            )
        outputs.append(item)
    if len(set(outputs)) != len(outputs):
        raise BadRequest(f"{what} repeats an output index: {doc!r}")
    return tuple(sorted(outputs))


def parse_request(doc: object, *, default_id: str) -> DiagnosisRequest:
    """Validate one decoded JSONL document into a :class:`DiagnosisRequest`.

    Raises :class:`BadRequest` with a precise message on any malformation;
    the server turns that into a ``bad_request`` outcome rather than
    letting it fail the batch.
    """
    if not isinstance(doc, dict):
        raise BadRequest(f"request must be a JSON object, got {type(doc).__name__}")
    unknown = set(doc) - {
        "id", "observed", "fault", "artifact", "observations", "limit",
    }
    if unknown:
        raise BadRequest(f"unknown request fields: {sorted(unknown)}")
    request_id = doc.get("id", default_id)
    if not isinstance(request_id, str) or not request_id:
        raise BadRequest(f"id must be a non-empty string, got {request_id!r}")

    modes = [key for key in ("observed", "fault", "observations") if key in doc]
    if len(modes) != 1:
        raise BadRequest(
            "give exactly one of observed=, fault= or observations= "
            f"(got {modes or 'none'})"
        )

    observed = None
    if "observed" in doc:
        raw = doc["observed"]
        if not isinstance(raw, list):
            raise BadRequest(f"observed must be a list of signatures, got {raw!r}")
        observed = tuple(
            _parse_signature(sig, what=f"observed[{j}]") for j, sig in enumerate(raw)
        )

    fault = None
    if "fault" in doc:
        fault = doc["fault"]
        if not isinstance(fault, str) or not fault:
            raise BadRequest(f"fault must be a non-empty string, got {fault!r}")

    observations = None
    if "observations" in doc:
        raw = doc["observations"]
        if not isinstance(raw, list) or not raw:
            raise BadRequest(
                f"observations must be a non-empty list of [test, signature] "
                f"pairs, got {raw!r}"
            )
        parsed = []
        for position, pair in enumerate(raw):
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise BadRequest(
                    f"observations[{position}] must be a [test, signature] pair"
                )
            test_index, sig = pair
            if isinstance(test_index, bool) or not isinstance(test_index, int) \
                    or test_index < 0:
                raise BadRequest(
                    f"observations[{position}] test index must be a "
                    f"non-negative integer, got {test_index!r}"
                )
            parsed.append(
                (test_index, _parse_signature(
                    sig, what=f"observations[{position}] signature"))
            )
        observations = tuple(parsed)

    artifact = doc.get("artifact")
    if artifact is not None and (not isinstance(artifact, str) or not artifact):
        raise BadRequest(f"artifact must be a non-empty path, got {artifact!r}")

    limit = doc.get("limit", 10)
    if isinstance(limit, bool) or not isinstance(limit, int) or limit < 0:
        raise BadRequest(f"limit must be a non-negative integer, got {limit!r}")

    return DiagnosisRequest(
        request_id=request_id,
        observed=observed,
        fault=fault,
        artifact=artifact,
        observations=observations,
        limit=limit,
    )


def parse_jsonl(lines, *, id_prefix: str = "request") -> List[object]:
    """Decode a JSONL request stream into requests and early outcomes.

    Returns one entry per non-blank line: a :class:`DiagnosisRequest`, or
    — for lines that fail to decode or validate — a ready-made
    ``bad_request`` :class:`DiagnosisOutcome`, so a corrupt line degrades
    that one request and never the batch.
    """
    parsed: List[object] = []
    for number, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        default_id = f"{id_prefix}-{number}"
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            parsed.append(DiagnosisOutcome(
                request_id=default_id, code=BAD_REQUEST,
                detail=f"line {number}: invalid JSON: {exc}",
            ))
            continue
        try:
            parsed.append(parse_request(doc, default_id=default_id))
        except BadRequest as exc:
            request_id = default_id
            if isinstance(doc, dict) and isinstance(doc.get("id"), str):
                request_id = doc["id"]
            parsed.append(DiagnosisOutcome(
                request_id=request_id, code=BAD_REQUEST,
                detail=f"line {number}: {exc}",
            ))
    return parsed
