"""A bounded LRU pool of loaded dictionary artifacts.

The serve layer's working set is "which dictionaries is this process
currently diagnosing against" — usually far smaller than the artifact
store on disk.  :class:`ArtifactPool` keeps at most ``capacity`` loaded
artifacts resident, keyed by **content hash** (read from the artifact
preamble with a one-page ``mmap`` probe), so two paths to the same bytes
share one entry and a republished file under the same path gets a fresh
one.

Loads are *single-flight*: when several worker threads miss on the same
key at once, exactly one performs the load (through ``mmap`` +
:func:`repro.store.load_artifact_buffer`, strict validation included)
while the rest wait on it and share the result — the thundering-herd
behaviour a cold batch against one artifact would otherwise exhibit.
A failed load is propagated to every waiter but **not** cached: the next
lookup retries, which is what the server's retry-with-backoff leans on.
"""

from __future__ import annotations

import mmap
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Optional, Union

from ..diagnosis.engine import Diagnoser
from ..obs import get_default_registry
from . import metrics as M


class PoolEntry:
    """One resident artifact: the restored build plus a ready diagnoser."""

    __slots__ = ("content_hash", "built", "diagnoser", "path", "_fault_names")

    def __init__(self, content_hash: str, built, path: str) -> None:
        self.content_hash = content_hash
        self.built = built
        self.diagnoser = Diagnoser(built.dictionary, source="artifact")
        self.path = path
        self._fault_names = None

    @property
    def table(self):
        return self.built.table

    def fault_index(self, name: str) -> Optional[int]:
        """Row index of a fault name, from a per-entry cached catalogue.

        Entries are shared across every request that hits them, so the
        name index is built once per residency instead of per request.
        """
        if self._fault_names is None:
            self._fault_names = {
                str(fault): i for i, fault in enumerate(self.table.faults)
            }
        return self._fault_names.get(name)


class _InFlight:
    """A load in progress: waiters block on ``done`` and read the result."""

    __slots__ = ("done", "entry", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.entry: Optional[PoolEntry] = None
        self.error: Optional[BaseException] = None


def _default_loader(path: str):
    """Load an artifact through a memory map (strict validation included)."""
    from ..store import load_artifact_buffer

    with open(path, "rb") as handle:
        try:
            with mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ) as view:
                return load_artifact_buffer(view, name=path)
        except ValueError:
            # Zero-length files cannot be mapped; fall through to a plain
            # read so they fail artifact validation with the right error.
            handle.seek(0)
            return load_artifact_buffer(handle.read(), name=path)


class ArtifactPool:
    """Content-hash-keyed LRU cache of loaded artifacts.

    Thread-safe.  ``capacity`` bounds resident entries; ``loader`` is
    injectable for tests (fault injection, latency shaping) and defaults
    to the mmap-backed strict loader.
    """

    def __init__(
        self,
        capacity: int = 8,
        *,
        loader: Optional[Callable[[str], object]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"pool capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._loader = loader if loader is not None else _default_loader
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, PoolEntry]" = OrderedDict()
        self._inflight: dict = {}
        self._pinned: set = set()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def resident_hashes(self):
        """Content hashes currently resident, least recently used first."""
        with self._lock:
            return list(self._entries)

    def resident(self):
        """One info dict per resident entry, least recently used first.

        The daemon's ``GET /v1/artifacts`` listing: content hash, the
        path the entry was loaded from, pin state and table shape.
        """
        with self._lock:
            return [
                {
                    "content_hash": entry.content_hash,
                    "path": entry.path,
                    "pinned": entry.content_hash in self._pinned,
                    "faults": entry.table.n_faults,
                    "tests": entry.table.n_tests,
                }
                for entry in self._entries.values()
            ]

    # ------------------------------------------------------------------
    def get(self, path: Union[str, Path]) -> PoolEntry:
        """The resident entry for ``path``'s content, loading on a miss.

        Raises :class:`~repro.store.ArtifactError` (or ``OSError``) when
        the file is unreadable or fails validation — the caller decides
        whether that is transient (the server retries with backoff).
        """
        from ..store import read_content_hash

        registry = get_default_registry()
        path = str(path)
        key = read_content_hash(path)

        while True:
            wait_for: Optional[_InFlight] = None
            flight: Optional[_InFlight] = None
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    registry.counter(M.POOL_HITS).inc()
                    return entry
                wait_for = self._inflight.get(key)
                if wait_for is None:
                    flight = self._inflight[key] = _InFlight()
                    registry.counter(M.POOL_MISSES).inc()

            if wait_for is not None:
                registry.counter(M.POOL_SINGLE_FLIGHT_WAITS).inc()
                wait_for.done.wait()
                if wait_for.error is not None:
                    raise wait_for.error
                if wait_for.entry is not None:
                    return wait_for.entry
                continue  # loader lost a race; retry the lookup

            try:
                with registry.timer(M.LOAD_SECONDS).time():
                    built = self._loader(path)
                entry = PoolEntry(key, built, path)
            except BaseException as exc:
                flight.error = exc
                with self._lock:
                    self._inflight.pop(key, None)
                flight.done.set()
                raise
            with self._lock:
                self._entries[key] = entry
                self._entries.move_to_end(key)
                while len(self._entries) > self.capacity:
                    victim = next(
                        (k for k in self._entries
                         if k not in self._pinned and k != key),
                        None,
                    )
                    if victim is None:
                        break  # everything resident is pinned: allow overflow
                    self._entries.pop(victim)
                    registry.counter(M.POOL_EVICTIONS).inc()
                registry.gauge(M.POOL_SIZE).set(len(self._entries))
                self._inflight.pop(key, None)
            flight.entry = entry
            flight.done.set()
            return entry

    # ------------------------------------------------------------------
    def pin(self, path: Union[str, Path]) -> PoolEntry:
        """Load ``path`` (if needed) and protect it from LRU eviction.

        Pinned entries never fall out of the pool to make room — the
        daemon's hot-registration endpoint pins uploads so a traffic
        burst against other artifacts cannot evict a freshly published
        dictionary.  Explicit :meth:`evict`/:meth:`clear` still remove
        pinned entries (and drop the pin).
        """
        entry = self.get(path)
        with self._lock:
            self._pinned.add(entry.content_hash)
        return entry

    def unpin(self, content_hash: str) -> bool:
        """Make one entry evictable again; returns whether it was pinned."""
        with self._lock:
            was_pinned = content_hash in self._pinned
            self._pinned.discard(content_hash)
        return was_pinned

    def pinned_hashes(self):
        """Content hashes currently pinned (unordered)."""
        with self._lock:
            return sorted(self._pinned)

    # ------------------------------------------------------------------
    def evict(self, content_hash: str) -> bool:
        """Drop one resident entry; returns whether it was resident."""
        registry = get_default_registry()
        with self._lock:
            removed = self._entries.pop(content_hash, None) is not None
            self._pinned.discard(content_hash)
            if removed:
                registry.counter(M.POOL_EVICTIONS).inc()
                registry.gauge(M.POOL_SIZE).set(len(self._entries))
        return removed

    def clear(self) -> None:
        """Drop every resident entry (counted as evictions)."""
        registry = get_default_registry()
        with self._lock:
            registry.counter(M.POOL_EVICTIONS).inc(len(self._entries))
            self._entries.clear()
            self._pinned.clear()
            registry.gauge(M.POOL_SIZE).set(0)
