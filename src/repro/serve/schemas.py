"""Typed, versioned wire schemas — the one request model of the serve layer.

Every way into diagnosis serving — the in-process facade
(``repro.api.serve``), the JSONL batch CLI (``repro-fd serve``) and the
network daemon (``repro-fd daemon``, :mod:`repro.serve.daemon`) — speaks
the same frozen dataclasses defined here:

* :class:`DiagnoseRequest` — one failing-chip lookup (``observed=``,
  ``fault=`` or ``observations=``), optionally tenant-tagged;
* :class:`DiagnoseResult` — the wire form of a
  :class:`~repro.serve.outcomes.DiagnosisOutcome`;
* :class:`SessionAdvance` — one step of an incremental
  multi-observation session over the daemon.

Each type round-trips through ``from_dict`` / ``as_dict``.  Documents
carry a ``"schema"`` field (:data:`SCHEMA_VERSION`); a missing field
means "current", any other value is rejected — so a client built against
a future layout degrades to a reason-coded error instead of being
half-parsed.  Validation is strict and every failure raises
:class:`SchemaError` with a reason code (``bad_request`` unless stated
otherwise) and a precise human detail, which the batch server and the
daemon surface verbatim.

The shapes deliberately mirror the ``DiagnoseRequest`` /
``DiagnoseResponseItem`` pydantic pair of the FastAPI diagnose-flow this
layer is modelled on — minus the dependency: plain frozen dataclasses
plus hand validation keep the wire boundary stdlib-only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..sim.responses import Signature
from .session import STRATEGIES

#: Version of the request/result wire layout; bump on incompatible change.
SCHEMA_VERSION = 1

# Reason codes an outcome (or a daemon transport error) can carry.
OK = "ok"
BAD_REQUEST = "bad_request"
UNMODELED_RESPONSE = "unmodeled_response"
DEADLINE_EXPIRED = "deadline_expired"
ARTIFACT_ERROR = "artifact_error"
INTERNAL_ERROR = "internal_error"

#: Every reason code a batch outcome can carry, in severity order.
REASON_CODES = (
    OK,
    BAD_REQUEST,
    UNMODELED_RESPONSE,
    DEADLINE_EXPIRED,
    ARTIFACT_ERROR,
    INTERNAL_ERROR,
)


class SchemaError(ValueError):
    """A wire document failed strict validation.

    ``code`` is the reason code the caller should surface
    (``bad_request`` for malformed documents); ``str(exc)`` is the
    human-readable detail.
    """

    def __init__(self, detail: str, *, code: str = BAD_REQUEST) -> None:
        super().__init__(detail)
        self.code = code


def _check_schema_field(doc: Mapping, *, what: str) -> None:
    """Reject documents written against a different wire layout."""
    version = doc.get("schema", SCHEMA_VERSION)
    if isinstance(version, bool) or not isinstance(version, int):
        raise SchemaError(
            f"{what}: schema must be an integer version, got {version!r}"
        )
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"{what}: unsupported schema version {version} "
            f"(this server speaks schema {SCHEMA_VERSION})"
        )


def _parse_signature(doc: object, *, what: str) -> Signature:
    if not isinstance(doc, (list, tuple)):
        raise SchemaError(
            f"{what} must be a list of output indices, got {doc!r}"
        )
    outputs: List[int] = []
    for item in doc:
        if isinstance(item, bool) or not isinstance(item, int) or item < 0:
            raise SchemaError(
                f"{what} must hold non-negative output indices, got {item!r}"
            )
        outputs.append(item)
    if len(set(outputs)) != len(outputs):
        raise SchemaError(f"{what} repeats an output index: {doc!r}")
    return tuple(sorted(outputs))


def _parse_observations(
    raw: object, *, what: str = "observations"
) -> Tuple[Tuple[int, Signature], ...]:
    if not isinstance(raw, list) or not raw:
        raise SchemaError(
            f"{what} must be a non-empty list of [test, signature] "
            f"pairs, got {raw!r}"
        )
    parsed = []
    for position, pair in enumerate(raw):
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise SchemaError(
                f"{what}[{position}] must be a [test, signature] pair"
            )
        test_index, sig = pair
        if isinstance(test_index, bool) or not isinstance(test_index, int) \
                or test_index < 0:
            raise SchemaError(
                f"{what}[{position}] test index must be a "
                f"non-negative integer, got {test_index!r}"
            )
        parsed.append(
            (test_index,
             _parse_signature(sig, what=f"{what}[{position}] signature"))
        )
    return tuple(parsed)


def _parse_limit(raw: object) -> int:
    if isinstance(raw, bool) or not isinstance(raw, int) or raw < 0:
        raise SchemaError(f"limit must be a non-negative integer, got {raw!r}")
    return raw


def _parse_count(raw: object, *, name: str, minimum: int) -> int:
    if isinstance(raw, bool) or not isinstance(raw, int) or raw < minimum:
        raise SchemaError(
            f"{name} must be an integer >= {minimum}, got {raw!r}"
        )
    return raw


def _parse_strategy(raw: object) -> str:
    if raw not in STRATEGIES:
        raise SchemaError(
            f"strategy must be one of {list(STRATEGIES)}, got {raw!r}"
        )
    return raw


# ----------------------------------------------------------------------
# requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DiagnoseRequest:
    """One failing-chip lookup.

    Exactly one of ``observed`` (per-test failing-output signatures),
    ``fault`` (a modelled fault name whose stored full row stands in for
    the tester response — the demo/evaluation path) or ``observations``
    (the incremental session flow) must be given.  ``artifact`` overrides
    the server's default artifact for this request; ``tenant`` tags the
    request for the daemon's per-tenant admission quotas.

    The fleet knobs — ``max_faults`` (consider candidate multiplets of up
    to this many simultaneous faults), ``flip_budget`` (tolerate up to
    this many noise-flipped tests) and ``strategy`` (next-test selection
    for session requests: ``"greedy"`` or ``"entropy"``) — default to
    ``None``, meaning *use the server's configured default*.  A request
    that sets them explicitly overrides the server either way.
    """

    request_id: str
    observed: Optional[Tuple[Signature, ...]] = None
    fault: Optional[str] = None
    artifact: Optional[str] = None
    observations: Optional[Tuple[Tuple[int, Signature], ...]] = None
    limit: int = 10
    tenant: Optional[str] = None
    max_faults: Optional[int] = None
    flip_budget: Optional[int] = None
    strategy: Optional[str] = None

    #: Wire fields ``from_dict`` accepts (anything else is rejected).
    WIRE_FIELDS = (
        "schema", "id", "observed", "fault", "artifact", "observations",
        "limit", "tenant", "max_faults", "flip_budget", "strategy",
    )

    @classmethod
    def from_dict(cls, doc: object, *, default_id: str) -> "DiagnoseRequest":
        """Validate one decoded wire document into a request.

        Raises :class:`SchemaError` with a precise message on any
        malformation; callers turn that into a ``bad_request`` outcome
        (batch) or a 400 response (daemon) rather than failing the whole
        stream.
        """
        if not isinstance(doc, dict):
            raise SchemaError(
                f"request must be a JSON object, got {type(doc).__name__}"
            )
        unknown = set(doc) - set(cls.WIRE_FIELDS)
        if unknown:
            raise SchemaError(f"unknown request fields: {sorted(unknown)}")
        _check_schema_field(doc, what="request")

        request_id = doc.get("id", default_id)
        if not isinstance(request_id, str) or not request_id:
            raise SchemaError(
                f"id must be a non-empty string, got {request_id!r}"
            )

        modes = [
            key for key in ("observed", "fault", "observations") if key in doc
        ]
        if len(modes) != 1:
            raise SchemaError(
                "give exactly one of observed=, fault= or observations= "
                f"(got {modes or 'none'})"
            )

        observed = None
        if "observed" in doc:
            raw = doc["observed"]
            if not isinstance(raw, list):
                raise SchemaError(
                    f"observed must be a list of signatures, got {raw!r}"
                )
            observed = tuple(
                _parse_signature(sig, what=f"observed[{j}]")
                for j, sig in enumerate(raw)
            )

        fault = None
        if "fault" in doc:
            fault = doc["fault"]
            if not isinstance(fault, str) or not fault:
                raise SchemaError(
                    f"fault must be a non-empty string, got {fault!r}"
                )

        observations = None
        if "observations" in doc:
            observations = _parse_observations(doc["observations"])

        artifact = doc.get("artifact")
        if artifact is not None and (
            not isinstance(artifact, str) or not artifact
        ):
            raise SchemaError(
                f"artifact must be a non-empty path, got {artifact!r}"
            )

        tenant = doc.get("tenant")
        if tenant is not None and (not isinstance(tenant, str) or not tenant):
            raise SchemaError(
                f"tenant must be a non-empty string, got {tenant!r}"
            )

        max_faults = doc.get("max_faults")
        if max_faults is not None:
            max_faults = _parse_count(max_faults, name="max_faults", minimum=1)
        flip_budget = doc.get("flip_budget")
        if flip_budget is not None:
            flip_budget = _parse_count(
                flip_budget, name="flip_budget", minimum=0
            )
        strategy = doc.get("strategy")
        if strategy is not None:
            strategy = _parse_strategy(strategy)

        return cls(
            request_id=request_id,
            observed=observed,
            fault=fault,
            artifact=artifact,
            observations=observations,
            limit=_parse_limit(doc.get("limit", 10)),
            tenant=tenant,
            max_faults=max_faults,
            flip_budget=flip_budget,
            strategy=strategy,
        )

    def as_dict(self) -> Dict[str, object]:
        """The wire document: versioned, minimal (absent fields omitted)."""
        doc: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "id": self.request_id,
        }
        if self.observed is not None:
            doc["observed"] = [list(sig) for sig in self.observed]
        if self.fault is not None:
            doc["fault"] = self.fault
        if self.artifact is not None:
            doc["artifact"] = self.artifact
        if self.observations is not None:
            doc["observations"] = [
                [test, list(sig)] for test, sig in self.observations
            ]
        if self.limit != 10:
            doc["limit"] = self.limit
        if self.tenant is not None:
            doc["tenant"] = self.tenant
        if self.max_faults is not None:
            doc["max_faults"] = self.max_faults
        if self.flip_budget is not None:
            doc["flip_budget"] = self.flip_budget
        if self.strategy is not None:
            doc["strategy"] = self.strategy
        return doc

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DiagnoseResult:
    """The frozen wire form of one diagnosis outcome.

    ``code`` is one of :data:`REASON_CODES`; the optional blocks
    (``narrowing``/``converged`` for session requests, ``policy`` for
    degraded requests — the operative deadline/retry settings, so a
    degraded line is auditable from the JSONL output alone) are omitted
    from the wire document when absent.
    """

    request_id: str
    code: str
    exact: Tuple[str, ...] = ()
    ranked: Tuple[Tuple[str, int], ...] = ()
    detail: str = ""
    attempts: int = 1
    elapsed_seconds: float = 0.0
    narrowing: Optional[Tuple[int, ...]] = None
    converged: Optional[bool] = None
    policy: Optional[Tuple[Tuple[str, object], ...]] = None
    suggested_test: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.code == OK

    @classmethod
    def from_outcome(cls, outcome) -> "DiagnoseResult":
        """Freeze a (mutable, in-process) ``DiagnosisOutcome`` for the wire."""
        policy = outcome.policy
        return cls(
            request_id=outcome.request_id,
            code=outcome.code,
            exact=tuple(outcome.exact),
            ranked=tuple((name, score) for name, score in outcome.ranked),
            detail=outcome.detail,
            attempts=outcome.attempts,
            elapsed_seconds=outcome.elapsed_seconds,
            narrowing=(
                tuple(outcome.narrowing)
                if outcome.narrowing is not None else None
            ),
            converged=outcome.converged,
            policy=(
                tuple(sorted(policy.items())) if policy is not None else None
            ),
            suggested_test=outcome.suggested_test,
        )

    def as_dict(self, *, include_schema: bool = True) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "id": self.request_id,
            "code": self.code,
            "exact": list(self.exact),
            "ranked": [[name, score] for name, score in self.ranked],
            "attempts": self.attempts,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }
        if include_schema:
            doc["schema"] = SCHEMA_VERSION
        if self.detail:
            doc["detail"] = self.detail
        if self.narrowing is not None:
            doc["narrowing"] = list(self.narrowing)
        if self.converged is not None:
            doc["converged"] = self.converged
        if self.policy is not None:
            doc["policy"] = dict(self.policy)
        if self.suggested_test is not None:
            doc["suggested_test"] = self.suggested_test
        return doc

    @classmethod
    def from_dict(cls, doc: object) -> "DiagnoseResult":
        """Parse a wire result (the client side of the daemon protocol)."""
        if not isinstance(doc, dict):
            raise SchemaError(
                f"result must be a JSON object, got {type(doc).__name__}"
            )
        _check_schema_field(doc, what="result")
        request_id = doc.get("id")
        code = doc.get("code")
        if not isinstance(request_id, str) or not request_id:
            raise SchemaError(f"result id must be a string, got {request_id!r}")
        if code not in REASON_CODES:
            raise SchemaError(f"result code {code!r} is not a reason code")
        ranked = doc.get("ranked", [])
        if not isinstance(ranked, list):
            raise SchemaError(f"result ranked must be a list, got {ranked!r}")
        policy = doc.get("policy")
        if policy is not None and not isinstance(policy, dict):
            raise SchemaError(f"result policy must be an object, got {policy!r}")
        narrowing = doc.get("narrowing")
        suggested = doc.get("suggested_test")
        if suggested is not None and (
            isinstance(suggested, bool) or not isinstance(suggested, int)
            or suggested < 0
        ):
            raise SchemaError(
                f"result suggested_test must be a non-negative integer, "
                f"got {suggested!r}"
            )
        return cls(
            request_id=request_id,
            code=code,
            exact=tuple(str(name) for name in doc.get("exact", [])),
            ranked=tuple((str(n), int(s)) for n, s in ranked),
            detail=str(doc.get("detail", "")),
            attempts=int(doc.get("attempts", 1)),
            elapsed_seconds=float(doc.get("elapsed_seconds", 0.0)),
            narrowing=(
                tuple(int(n) for n in narrowing)
                if narrowing is not None else None
            ),
            converged=doc.get("converged"),
            policy=(
                tuple(sorted(policy.items())) if policy is not None else None
            ),
            suggested_test=suggested,
        )

    def to_json_line(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# sessions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SessionAdvance:
    """One step of a daemon-held multi-observation session.

    ``observations`` may be empty (query the current state without
    folding anything in); ``suggest`` asks the server to compute the
    next-test suggestion, which costs a scan over the remaining
    candidates; ``strategy`` picks the selection rule for that
    suggestion (``"greedy"`` or ``"entropy"``; omitted = the server's
    default); ``limit`` bounds the candidate names echoed back.
    """

    session_id: str
    observations: Tuple[Tuple[int, Signature], ...] = ()
    suggest: bool = False
    limit: int = 10
    strategy: Optional[str] = None

    #: Wire fields ``from_dict`` accepts (anything else is rejected).
    WIRE_FIELDS = (
        "schema", "session", "observations", "suggest", "limit", "strategy",
    )

    @classmethod
    def from_dict(
        cls, doc: object, *, session_id: Optional[str] = None
    ) -> "SessionAdvance":
        """Validate a session-advance document.

        ``session_id`` (from the URL path, daemon-side) overrides any
        ``session`` field in the body; one of the two must be present.
        """
        if not isinstance(doc, dict):
            raise SchemaError(
                f"session advance must be a JSON object, got "
                f"{type(doc).__name__}"
            )
        unknown = set(doc) - set(cls.WIRE_FIELDS)
        if unknown:
            raise SchemaError(
                f"unknown session-advance fields: {sorted(unknown)}"
            )
        _check_schema_field(doc, what="session advance")
        sid = session_id if session_id is not None else doc.get("session")
        if not isinstance(sid, str) or not sid:
            raise SchemaError(
                f"session must be a non-empty string, got {sid!r}"
            )
        observations: Tuple[Tuple[int, Signature], ...] = ()
        if "observations" in doc and doc["observations"] != []:
            observations = _parse_observations(doc["observations"])
        suggest = doc.get("suggest", False)
        if not isinstance(suggest, bool):
            raise SchemaError(f"suggest must be a boolean, got {suggest!r}")
        strategy = doc.get("strategy")
        if strategy is not None:
            strategy = _parse_strategy(strategy)
        return cls(
            session_id=sid,
            observations=observations,
            suggest=suggest,
            limit=_parse_limit(doc.get("limit", 10)),
            strategy=strategy,
        )

    def as_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "session": self.session_id,
        }
        if self.observations:
            doc["observations"] = [
                [test, list(sig)] for test, sig in self.observations
            ]
        if self.suggest:
            doc["suggest"] = True
        if self.limit != 10:
            doc["limit"] = self.limit
        if self.strategy is not None:
            doc["strategy"] = self.strategy
        return doc
