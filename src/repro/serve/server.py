"""The batch diagnosis server: fan-out, deadlines, retries, degradation.

:class:`DiagnosisServer` turns the one-shot ``Diagnoser`` flow into a
service loop: a batch of observed-response requests is fanned out across
a thread pool, every request carries its own deadline and retry budget,
and **no request outcome can fail the batch** — malformed input, an
unloadable artifact or a blown deadline each degrade to a structured
:class:`~repro.serve.outcomes.DiagnosisOutcome` with a reason code.

Determinism: an outcome is a pure function of its request and the
artifact bytes (the workers share nothing mutable per request beyond the
pool, whose entries are immutable once loaded), and the batch result
preserves request order — so the same batch produces the same outcome
list for any ``workers`` value.  ``tests/serve/test_determinism.py``
holds that line.

Time is injectable (``clock``/``sleep``) so deadline and backoff
behaviour is tested with a fake clock rather than real sleeps.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Union

from ..obs import get_default_registry, trace_span
from ..sim.responses import PASS
from ..store import ArtifactError
from . import metrics as M
from .outcomes import (
    ARTIFACT_ERROR,
    BAD_REQUEST,
    DEADLINE_EXPIRED,
    INTERNAL_ERROR,
    OK,
    UNMODELED_RESPONSE,
    DiagnosisOutcome,
    DiagnosisRequest,
    parse_jsonl,
)
from ..diagnosis.multiplet import match_multiplets
from .pool import ArtifactPool, PoolEntry
from .session import STRATEGIES, DiagnosisSession


@dataclass(frozen=True)
class ServeConfig:
    """Operating envelope of one :class:`DiagnosisServer`.

    ``deadline_ms`` is per request, measured from the moment a worker
    picks the request up (queueing does not count, so outcomes do not
    depend on worker count); ``None`` disables deadlines.  Retries apply
    to transient artifact/cache errors only — a request that cannot load
    its artifact is attempted ``1 + max_retries`` times with exponential
    backoff starting at ``retry_backoff_ms``.
    """

    pool_size: int = 8
    workers: int = 4
    deadline_ms: Optional[float] = None
    max_retries: int = 2
    retry_backoff_ms: float = 10.0
    #: Default ranked-candidate count for requests that don't set one.
    limit: int = 10
    #: Default multi-fault candidate width for requests that don't set
    #: one; 1 = classic single-fault exact matching.
    max_faults: int = 1
    #: Default per-request noise tolerance (tests allowed to disagree);
    #: 0 = strict matching.
    flip_budget: int = 0
    #: Default next-test selection rule for session suggestions.
    strategy: str = "greedy"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {self.deadline_ms}")
        if self.max_faults < 1:
            raise ValueError(f"max_faults must be >= 1, got {self.max_faults}")
        if self.flip_budget < 0:
            raise ValueError(
                f"flip_budget must be >= 0, got {self.flip_budget}"
            )
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {list(STRATEGIES)}, "
                f"got {self.strategy!r}"
            )

    def policy(self) -> dict:
        """The deadline/retry settings as an auditable outcome block.

        Attached to every ``deadline_expired``/``artifact_error`` outcome
        so a degraded JSONL line carries the settings it degraded under —
        previously those only appeared in the CLI summary line.
        """
        return {
            "deadline_ms": self.deadline_ms,
            "max_retries": self.max_retries,
            "retry_backoff_ms": self.retry_backoff_ms,
        }


class _Deadline:
    """One request's time budget against an injectable clock."""

    __slots__ = ("clock", "start", "budget")

    def __init__(self, clock: Callable[[], float], budget_ms: Optional[float]) -> None:
        self.clock = clock
        self.start = clock()
        self.budget = budget_ms / 1000.0 if budget_ms is not None else None

    @property
    def elapsed(self) -> float:
        return self.clock() - self.start

    @property
    def expired(self) -> bool:
        return self.budget is not None and self.elapsed > self.budget


class DiagnosisServer:
    """Serve diagnosis batches and sessions from pooled artifacts.

    ``default_artifact`` answers requests that do not name their own;
    ``pool`` lets callers share one :class:`ArtifactPool` between servers
    (and lets tests inject fault-raising loaders).
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        default_artifact: Optional[str] = None,
        pool: Optional[ArtifactPool] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.default_artifact = (
            str(default_artifact) if default_artifact is not None else None
        )
        self.pool = pool if pool is not None else ArtifactPool(self.config.pool_size)
        self._clock = clock
        self._sleep = sleep

    # ------------------------------------------------------------------
    # batch entry points
    # ------------------------------------------------------------------
    def serve_jsonl(self, lines: Iterable[str]) -> List[DiagnosisOutcome]:
        """Process a JSONL request stream (one request object per line)."""
        return self.diagnose_batch(parse_jsonl(lines))

    def diagnose_batch(
        self, requests: Sequence[Union[DiagnosisRequest, DiagnosisOutcome]]
    ) -> List[DiagnosisOutcome]:
        """One outcome per request, in request order, degraded never dropped.

        Accepts pre-made outcomes in the input sequence (as produced by
        :func:`~repro.serve.outcomes.parse_jsonl` for unparseable lines)
        and passes them through in position.
        """
        registry = get_default_registry()
        requests = list(requests)
        registry.counter(M.BATCHES).inc()
        registry.gauge(M.WORKERS).set(self.config.workers)
        with registry.timer(M.BATCH_SECONDS).time(), \
                trace_span("serve.batch", requests=len(requests)):
            if self.config.workers == 1 or len(requests) <= 1:
                outcomes = [self._serve_entry(entry) for entry in requests]
            else:
                with ThreadPoolExecutor(
                    max_workers=self.config.workers,
                    thread_name_prefix="repro-serve",
                ) as executor:
                    outcomes = list(executor.map(self._serve_entry, requests))
        for outcome in outcomes:
            registry.counter(M.outcome_counter(outcome.code)).inc()
        return outcomes

    def diagnose_one(
        self, request: Union[DiagnosisRequest, DiagnosisOutcome]
    ) -> DiagnosisOutcome:
        """Serve a single request outside a batch (the daemon's work unit).

        Same degradation and metrics semantics as one entry of
        :meth:`diagnose_batch`, without the batch bookkeeping — callers
        that already run their own fan-out (the asyncio daemon's worker
        executor) use this as the per-request hot path.
        """
        outcome = self._serve_entry(request)
        get_default_registry().counter(M.outcome_counter(outcome.code)).inc()
        return outcome

    # ------------------------------------------------------------------
    def session(
        self,
        artifact: Optional[str] = None,
        *,
        stall_after: int = 3,
        flip_budget: Optional[int] = None,
    ) -> DiagnosisSession:
        """Open an incremental multi-observation session on an artifact.

        The artifact goes through the same pool (hot sessions on a warm
        dictionary cost no load).  ``flip_budget=None`` inherits the
        server's configured default.
        """
        entry = self.pool.get(self._artifact_for(artifact))
        budget = (
            flip_budget if flip_budget is not None else self.config.flip_budget
        )
        return DiagnosisSession(
            entry.built.dictionary,
            stall_after=stall_after,
            flip_budget=budget,
        )

    # ------------------------------------------------------------------
    # per-request machinery
    # ------------------------------------------------------------------
    def _artifact_for(self, override: Optional[str]) -> str:
        path = override if override is not None else self.default_artifact
        if path is None:
            raise ValueError(
                "request names no artifact and the server has no default "
                "(pass default_artifact= or set 'artifact' on the request)"
            )
        return path

    def _serve_entry(
        self, entry: Union[DiagnosisRequest, DiagnosisOutcome]
    ) -> DiagnosisOutcome:
        if isinstance(entry, DiagnosisOutcome):
            get_default_registry().counter(M.REQUESTS).inc()
            return entry
        return self._serve_request(entry)

    def _serve_request(self, request: DiagnosisRequest) -> DiagnosisOutcome:
        registry = get_default_registry()
        registry.counter(M.REQUESTS).inc()
        deadline = _Deadline(self._clock, self.config.deadline_ms)
        with registry.timer(M.REQUEST_SECONDS).time():
            try:
                outcome = self._serve_inner(request, deadline)
            except Exception as exc:  # noqa: BLE001 - degradation boundary
                outcome = DiagnosisOutcome(
                    request_id=request.request_id,
                    code=INTERNAL_ERROR,
                    detail=f"{type(exc).__name__}: {exc}",
                )
        outcome.elapsed_seconds = deadline.elapsed
        if outcome.code in (DEADLINE_EXPIRED, ARTIFACT_ERROR):
            # Deadline/retry degradations carry the settings they
            # degraded under, so the JSONL output alone is auditable.
            outcome.policy = self.config.policy()
        return outcome

    def _serve_inner(
        self, request: DiagnosisRequest, deadline: _Deadline
    ) -> DiagnosisOutcome:
        try:
            path = self._artifact_for(request.artifact)
        except ValueError as exc:
            return DiagnosisOutcome(
                request_id=request.request_id, code=BAD_REQUEST, detail=str(exc)
            )

        entry, attempts, failure = self._load_with_retries(path, deadline)
        if entry is None:
            code = DEADLINE_EXPIRED if deadline.expired else ARTIFACT_ERROR
            return DiagnosisOutcome(
                request_id=request.request_id,
                code=code,
                detail=failure or "artifact load failed",
                attempts=attempts,
            )
        if deadline.expired:
            return DiagnosisOutcome(
                request_id=request.request_id,
                code=DEADLINE_EXPIRED,
                detail=f"deadline of {self.config.deadline_ms}ms passed "
                "after artifact load",
                attempts=attempts,
            )

        if request.observations is not None:
            return self._serve_session_request(request, entry, attempts, deadline)
        if request.observed is None and request.fault is None:
            return DiagnosisOutcome(
                request_id=request.request_id,
                code=BAD_REQUEST,
                detail="request carries no observed=, fault= or observations=",
                attempts=attempts,
            )
        return self._serve_lookup(request, entry, attempts, deadline)

    # -- artifact load with retry/backoff ------------------------------
    def _load_with_retries(self, path: str, deadline: _Deadline):
        """Returns ``(entry, attempts, failure_detail)``; entry ``None`` on
        failure.  Only :class:`ArtifactError`/``OSError`` are treated as
        transient; anything else propagates to the internal-error boundary.
        """
        registry = get_default_registry()
        failure: Optional[str] = None
        attempts = 0
        for attempt in range(1 + self.config.max_retries):
            if deadline.expired:
                return None, attempts, failure or "deadline expired before load"
            attempts = attempt + 1
            if attempt:
                registry.counter(M.RETRIES).inc()
                backoff = (
                    self.config.retry_backoff_ms / 1000.0 * (2 ** (attempt - 1))
                )
                if deadline.budget is not None:
                    remaining = deadline.budget - deadline.elapsed
                    if remaining <= 0:
                        return None, attempts - 1, failure
                    backoff = min(backoff, remaining)
                self._sleep(backoff)
            try:
                return self.pool.get(path), attempts, None
            except (ArtifactError, OSError) as exc:
                failure = f"{type(exc).__name__}: {exc}"
        return None, attempts, failure

    # -- the two request flavours --------------------------------------
    def _resolve_observed(self, request: DiagnosisRequest, entry: PoolEntry):
        """The per-test signature sequence a request asks to diagnose.

        Returns ``(observed, problem)`` where ``problem`` is an
        unmodeled-response detail string when the request does not fit
        the dictionary.
        """
        table = entry.table
        if request.fault is not None:
            index = entry.fault_index(request.fault)
            if index is None:
                return None, (
                    f"fault {request.fault!r} is not in the artifact's "
                    f"{table.n_faults}-fault catalogue"
                )
            return list(table.full_row(index)), None
        observed = request.observed
        if len(observed) != table.n_tests:
            return None, (
                f"observed response has {len(observed)} tests, dictionary "
                f"has {table.n_tests}"
            )
        for j, signature in enumerate(observed):
            for output in signature:
                if output >= table.n_outputs:
                    return None, (
                        f"observed[{j}] names output {output}, dictionary "
                        f"has {table.n_outputs} outputs"
                    )
        return list(observed), None

    def _effective(self, request: DiagnosisRequest) -> tuple:
        """Resolve the request's fleet knobs against the config defaults."""
        max_faults = (
            request.max_faults
            if request.max_faults is not None else self.config.max_faults
        )
        flip_budget = (
            request.flip_budget
            if request.flip_budget is not None else self.config.flip_budget
        )
        return max_faults, flip_budget

    def _serve_lookup(
        self,
        request: DiagnosisRequest,
        entry: PoolEntry,
        attempts: int,
        deadline: _Deadline,
    ) -> DiagnosisOutcome:
        registry = get_default_registry()
        observed, problem = self._resolve_observed(request, entry)
        if problem is not None:
            return DiagnosisOutcome(
                request_id=request.request_id,
                code=UNMODELED_RESPONSE,
                detail=problem,
                attempts=attempts,
            )
        max_faults, flip_budget = self._effective(request)
        if max_faults == 1 and flip_budget == 0:
            # Classic single-fault exact path — byte-identical to the
            # pre-fleet server for default requests.
            with registry.timer(M.DIAGNOSE_SECONDS).time():
                diagnosis = entry.diagnoser.diagnose(
                    observed, limit=request.limit
                )
            exact = [str(fault) for fault in diagnosis.exact]
            ranked = [
                (str(fault), score) for fault, score in diagnosis.ranked
            ]
        else:
            # Fleet path: envelope-matched multiplets within the flip
            # budget.  Ranked scores stay "tests agreed" so both paths
            # read the same way downstream.
            table = entry.table
            with registry.timer(M.DIAGNOSE_SECONDS).time():
                matches = match_multiplets(
                    table,
                    observed,
                    max_faults=max_faults,
                    flip_budget=flip_budget,
                    limit=request.limit or None,
                )
            faults = table.faults
            exact = [m.render(faults) for m in matches if m.flips == 0]
            ranked = [
                (m.render(faults), table.n_tests - m.flips) for m in matches
            ]
        if deadline.expired:
            return DiagnosisOutcome(
                request_id=request.request_id,
                code=DEADLINE_EXPIRED,
                detail=f"deadline of {self.config.deadline_ms}ms passed "
                "during diagnosis",
                attempts=attempts,
            )
        return DiagnosisOutcome(
            request_id=request.request_id,
            code=OK,
            exact=exact,
            ranked=ranked,
            attempts=attempts,
        )

    def _serve_session_request(
        self,
        request: DiagnosisRequest,
        entry: PoolEntry,
        attempts: int,
        deadline: _Deadline,
    ) -> DiagnosisOutcome:
        table = entry.table
        _, flip_budget = self._effective(request)
        session = DiagnosisSession(
            entry.built.dictionary, flip_budget=flip_budget
        )
        for test_index, signature in request.observations:
            if test_index >= table.n_tests:
                return DiagnosisOutcome(
                    request_id=request.request_id,
                    code=UNMODELED_RESPONSE,
                    detail=f"observation names test {test_index}, dictionary "
                    f"has {table.n_tests} tests",
                    attempts=attempts,
                )
            if any(output >= table.n_outputs for output in signature):
                return DiagnosisOutcome(
                    request_id=request.request_id,
                    code=UNMODELED_RESPONSE,
                    detail=f"observation on test {test_index} names an output "
                    f">= {table.n_outputs}",
                    attempts=attempts,
                )
            session.observe(test_index, signature)
            if deadline.expired:
                return DiagnosisOutcome(
                    request_id=request.request_id,
                    code=DEADLINE_EXPIRED,
                    detail=f"deadline of {self.config.deadline_ms}ms passed "
                    f"after {len(session.history)} observations",
                    attempts=attempts,
                    narrowing=[update.after for update in session.history],
                )
        candidates = [str(fault) for fault in session.candidate_faults()]
        if request.limit:
            candidates = candidates[: request.limit]
        # A suggestion is computed only when the request names a
        # strategy, so default requests stay byte-identical on the wire.
        suggested = None
        if request.strategy is not None:
            suggested = session.suggest_next_test(request.strategy)
        return DiagnosisOutcome(
            request_id=request.request_id,
            code=OK,
            exact=candidates,
            attempts=attempts,
            narrowing=[update.after for update in session.history],
            converged=session.converged,
            suggested_test=suggested,
        )
