"""Incremental multi-observation diagnosis sessions.

Model-based diagnosis treats a failing unit as a *stream* of
observations, not one response vector: apply a test, look at the
outcome, decide whether applying more tests is still buying resolution.
:class:`DiagnosisSession` is that flow over a fault dictionary — it
starts from the full fault catalogue and narrows the candidate set one
``(test, signature)`` observation at a time, using each dictionary
organisation's own per-test semantics:

* **full** — candidates must reproduce the observed signature exactly;
* **pass/fail** — candidates must agree on detect/not-detect;
* **same/different** — candidates must fall on the observed side of the
  test's baseline (the paper's ``b_i,j`` bit).

The session also answers the operational questions: ``converged`` turns
true when the last ``stall_after`` observations failed to shrink the
candidate set (resolution has stopped improving — stop testing), and
:meth:`suggest_next_test` picks the next test to apply — either the
greedy best-splitter or, with ``strategy="entropy"``, the test
minimizing the expected posterior candidate-set entropy.

Two fleet-facing extensions (both off by default, and byte-identical to
the classic session when off):

* ``flip_budget=k`` keeps a candidate alive until it has disagreed with
  the observations on more than ``k`` tests — noise tolerance for
  testers that occasionally flip a pass/fail (see
  :mod:`repro.diagnosis.noisy` for the batch form);
* :meth:`ranked_candidates` orders the survivors by (disagreements,
  fault index) so noisy sessions still yield an actionable short list.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..dictionaries.base import FaultDictionary
from ..dictionaries.passfail import PassFailDictionary
from ..dictionaries.samediff import SameDifferentDictionary
from ..obs import get_default_registry
from ..sim.responses import PASS, Signature
from . import metrics as M

#: Valid ``suggest_next_test`` strategies, in documentation order.
STRATEGIES = ("greedy", "entropy")


@dataclass(frozen=True)
class SessionUpdate:
    """What one observation did to the candidate set."""

    test_index: int
    signature: Signature
    #: Candidate count before / after folding this observation in.
    before: int
    after: int
    #: Consecutive non-improving observations ending here (0 if improved).
    stalled: int

    @property
    def improved(self) -> bool:
        return self.after < self.before


class DiagnosisSession:
    """Narrow a candidate fault set observation by observation.

    ``stall_after`` non-improving observations in a row flip
    :attr:`converged` (a unique candidate or an exhausted test set also
    does); the caller reads it to stop applying tests.  The session never
    touches a simulator — it is a pure serve-side object, so it works
    against artifact-restored dictionaries with no circuit files.

    ``flip_budget`` is the per-candidate noise tolerance: a candidate is
    dropped only once its stored row has disagreed with the observations
    on more than ``flip_budget`` tests.  The default of ``0`` is the
    classic strict filter — one disagreement eliminates.
    """

    def __init__(
        self,
        dictionary: FaultDictionary,
        *,
        stall_after: int = 3,
        flip_budget: int = 0,
    ) -> None:
        if stall_after < 1:
            raise ValueError(f"stall_after must be >= 1, got {stall_after}")
        if flip_budget < 0:
            raise ValueError(f"flip_budget must be >= 0, got {flip_budget}")
        self.dictionary = dictionary
        self.table = dictionary.table
        self.stall_after = stall_after
        self.flip_budget = flip_budget
        self.candidates: List[int] = list(range(self.table.n_faults))
        self.history: List[SessionUpdate] = []
        self._observed: Dict[int, Signature] = {}
        #: Per-candidate count of observations its stored row disagreed with.
        self._mismatches: Dict[int, int] = {}
        self._stalled = 0
        self._converged_counted = False
        registry = get_default_registry()
        registry.counter(M.SESSIONS).inc()

    # ------------------------------------------------------------------
    # per-test row semantics, by dictionary organisation
    # ------------------------------------------------------------------
    def _stored_value(self, fault_index: int, test_index: int) -> object:
        """Fault ``fault_index``'s row value at one test, per dictionary kind."""
        dictionary = self.dictionary
        if isinstance(dictionary, SameDifferentDictionary):
            return (dictionary.row(fault_index) >> test_index) & 1
        if isinstance(dictionary, PassFailDictionary):
            return self.table.signature(fault_index, test_index) != PASS
        # Full dictionary — and the conservative fallback for any other
        # organisation: exact response agreement (never widens a set a
        # coarser encoding would keep).
        return self.table.signature(fault_index, test_index)

    def _observed_value(self, test_index: int, signature: Signature) -> object:
        dictionary = self.dictionary
        if isinstance(dictionary, SameDifferentDictionary):
            return 0 if signature == dictionary.baselines[test_index] else 1
        if isinstance(dictionary, PassFailDictionary):
            return signature != PASS
        return signature

    # ------------------------------------------------------------------
    def observe(self, test_index: int, signature: Signature) -> SessionUpdate:
        """Fold one tester observation in; returns the narrowing result.

        Re-observing a test replaces nothing — each call filters the
        *current* candidate set, so contradictory re-observations simply
        empty it (a clear signal the unit is not modelled).
        """
        if not 0 <= test_index < self.table.n_tests:
            raise ValueError(
                f"test index {test_index} out of range for "
                f"{self.table.n_tests} tests"
            )
        signature = tuple(signature)
        for output in signature:
            if not 0 <= output < self.table.n_outputs:
                raise ValueError(
                    f"output index {output} out of range for "
                    f"{self.table.n_outputs} outputs"
                )
        before = len(self.candidates)
        want = self._observed_value(test_index, signature)
        survivors: List[int] = []
        for i in self.candidates:
            if self._stored_value(i, test_index) != want:
                misses = self._mismatches.get(i, 0) + 1
                self._mismatches[i] = misses
                if misses > self.flip_budget:
                    continue
            survivors.append(i)
        self.candidates = survivors
        after = len(self.candidates)
        self._observed[test_index] = signature
        self._stalled = 0 if after < before else self._stalled + 1
        update = SessionUpdate(
            test_index=test_index,
            signature=signature,
            before=before,
            after=after,
            stalled=self._stalled,
        )
        self.history.append(update)
        registry = get_default_registry()
        registry.counter(M.SESSION_OBSERVATIONS).inc()
        if self.converged and not self._converged_counted:
            self._converged_counted = True
            registry.counter(M.SESSIONS_CONVERGED).inc()
        return update

    # ------------------------------------------------------------------
    @property
    def resolved(self) -> bool:
        """Exactly one candidate remains."""
        return len(self.candidates) == 1

    @property
    def exhausted(self) -> bool:
        """Every test has been observed at least once."""
        return len(self._observed) >= self.table.n_tests

    @property
    def stalled(self) -> int:
        """Consecutive observations that did not shrink the candidate set."""
        return self._stalled

    @property
    def converged(self) -> bool:
        """Resolution has stopped improving: a unique (or empty) candidate
        set, ``stall_after`` non-improving observations in a row, or no
        tests left to apply."""
        return (
            len(self.candidates) <= 1
            or self._stalled >= self.stall_after
            or self.exhausted
        )

    def candidate_faults(self) -> List[object]:
        """The remaining candidates as fault objects, row order."""
        faults = self.table.faults
        return [faults[i] for i in self.candidates]

    def ranked_candidates(self) -> List[Tuple[int, int]]:
        """Surviving candidates as ``(fault_index, disagreements)``, best
        first.

        Ordered by (disagreements, fault index).  With ``flip_budget=0``
        every survivor has zero disagreements, so this is just the
        candidate list annotated with zeros.
        """
        return sorted(
            ((i, self._mismatches.get(i, 0)) for i in self.candidates),
            key=lambda item: (item[1], item[0]),
        )

    # ------------------------------------------------------------------
    def _column_groups(self, test_index: int) -> Dict[object, int]:
        """Current candidates grouped by their stored value at one test."""
        groups: Dict[object, int] = {}
        for i in self.candidates:
            value = self._stored_value(i, test_index)
            groups[value] = groups.get(value, 0) + 1
        return groups

    @staticmethod
    def _split_pairs(total: int, groups: Dict[object, int]) -> int:
        """Candidate pairs a test's column separates (greedy score)."""
        return (total * (total - 1) - sum(
            size * (size - 1) for size in groups.values()
        )) // 2

    def suggest_next_test(self, strategy: str = "greedy") -> Optional[int]:
        """The next test worth applying, or ``None`` when none helps.

        Already-observed tests are never suggested — re-applying one
        cannot change the candidate set.  Both strategies consider only
        tests whose dictionary column actually splits the current
        candidates, and both break ties deterministically, ending on the
        lowest test index, so equal sessions always suggest the same
        test.  ``None`` means no unobserved test can improve resolution;
        the session is converged by construction at that point.

        ``strategy="greedy"`` (default) maximises the number of candidate
        pairs the test separates — the classic adaptive-testing step,
        kept as the golden-path behavior.

        ``strategy="entropy"`` minimises the expected posterior
        candidate-set entropy ``Σ_v (n_v/N)·log2(n_v)`` over the stored
        column values ``v`` (uniform prior over the ``N`` candidates;
        ``n_v`` candidates answer ``v``).  The greedy split count is the
        first tie-break, then the test index.  A three-way near-even
        split beats a lopsided two-way split here, which is what shortens
        noisy fleet sessions (see ``docs/diagnosis.md``).
        """
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}: expected one of {STRATEGIES}"
            )
        if len(self.candidates) <= 1:
            return None
        total = len(self.candidates)
        if strategy == "greedy":
            best_test: Optional[int] = None
            best_score = 0
            for j in range(self.table.n_tests):
                if j in self._observed:
                    continue
                split = self._split_pairs(total, self._column_groups(j))
                if split > best_score:
                    best_test, best_score = j, split
            return best_test
        # entropy: lower expected posterior entropy wins; ties fall back
        # to the greedy split count (more pairs separated), then index.
        best_test = None
        best_key: Optional[Tuple[float, int, int]] = None
        for j in range(self.table.n_tests):
            if j in self._observed:
                continue
            groups = self._column_groups(j)
            if len(groups) <= 1:
                continue  # no split — applying j cannot narrow anything
            expected = sum(
                size * math.log2(size) for size in groups.values() if size > 1
            ) / total
            key = (expected, -self._split_pairs(total, groups), j)
            if best_key is None or key < best_key:
                best_test, best_key = j, key
        return best_test

    # ------------------------------------------------------------------
    def report(self) -> Dict[str, object]:
        """A plain-data summary of where the session stands."""
        return {
            "observations": len(self.history),
            "candidates": len(self.candidates),
            "narrowing": [update.after for update in self.history],
            "stalled": self._stalled,
            "resolved": self.resolved,
            "converged": self.converged,
            "exhausted": self.exhausted,
        }
