"""Bit-parallel logic and fault simulation."""

from .bits import iter_bits
from .faultsim import FaultSimulator
from .logicsim import (
    SimulationError,
    output_vectors,
    output_words,
    simulate,
    simulate_single,
    simulate_words,
)
from .patterns import TestSet
from .responses import PASS, ResponseTable, Signature
from .seqfaultsim import (
    random_sequences,
    sequential_detection_word,
    sequential_output_diffs,
    sequential_outputs,
    sequential_response_table,
)
from .seqsim import SequentialSimulator, simulate_sequence
from .xsim import (
    UNKNOWN,
    cube_conflicts,
    determined_outputs,
    merge_cubes,
    simulate3,
)

__all__ = [
    "FaultSimulator",
    "PASS",
    "ResponseTable",
    "SequentialSimulator",
    "Signature",
    "SimulationError",
    "TestSet",
    "UNKNOWN",
    "cube_conflicts",
    "determined_outputs",
    "merge_cubes",
    "simulate3",
    "simulate_sequence",
    "iter_bits",
    "output_vectors",
    "output_words",
    "random_sequences",
    "sequential_detection_word",
    "sequential_output_diffs",
    "sequential_outputs",
    "sequential_response_table",
    "simulate",
    "simulate_single",
    "simulate_words",
]
