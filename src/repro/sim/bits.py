"""Bit-word helpers shared across simulation, dictionaries and diagnosis.

The bit-parallel simulators represent per-pattern values as arbitrary
precision integers (bit ``j`` = pattern ``j``); everything downstream —
response tables, dictionary rows, diagnosis signatures — walks those words
bit by bit.  :func:`iter_bits` is that walk, factored out of
``faultsim`` so consumers that never simulate (the artifact-backed
diagnosis path, packing) do not need the simulator module for it.
"""

from __future__ import annotations


def iter_bits(word: int):
    """Yield the positions of the set bits of ``word`` (ascending)."""
    while word:
        lsb = word & -word
        yield lsb.bit_length() - 1
        word ^= lsb
