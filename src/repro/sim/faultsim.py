"""Bit-parallel single stuck-at fault simulation.

For each fault, all test patterns are simulated simultaneously (one bit per
pattern) and re-evaluation is restricted to the fault's fan-out cone, with
event-driven pruning: a gate is re-evaluated only when one of its fan-ins
actually changed on some pattern.  This is the parallel-pattern
single-fault propagation (PPSFP) scheme of Waicukauski et al., adapted to
arbitrary-precision integers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..circuit.gates import EVALUATORS, GateType
from ..circuit.netlist import Netlist
from ..faults.model import Fault
from ..obs import get_default_registry
from .bits import iter_bits  # noqa: F401 - re-exported for compatibility
from .logicsim import SimulationError, simulate
from .patterns import TestSet


class FaultSimulator:
    """Simulates single stuck-at faults against a fixed test set.

    The fault-free simulation, topological order and fan-out cones are
    computed once; each :meth:`output_diffs` call then costs one bitwise
    pass over the (pruned) fan-out cone of the fault.
    """

    def __init__(self, netlist: Netlist, tests: TestSet) -> None:
        if not netlist.is_combinational:
            raise SimulationError(
                f"netlist {netlist.name!r} is sequential; apply full scan first"
            )
        self.netlist = netlist
        self.tests = tests
        self.num_patterns = len(tests)
        self.mask = (1 << self.num_patterns) - 1
        self.good_values = simulate(netlist, tests)
        self._topo_position = {net: i for i, net in enumerate(netlist.topological_order())}
        self._output_set = set(netlist.outputs)
        self._cone_cache: Dict[str, Tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    def _sorted_cone(self, origin: str) -> Tuple[str, ...]:
        """The fan-out cone of ``origin`` in topological order (cached)."""
        cached = self._cone_cache.get(origin)
        if cached is None:
            cone = self.netlist.output_cone(origin)
            cached = tuple(sorted(cone, key=self._topo_position.__getitem__))
            self._cone_cache[origin] = cached
        return cached

    def _stuck_word(self, fault: Fault) -> int:
        return self.mask if fault.stuck_at else 0

    def _activation(self, fault: Fault) -> Tuple[str, int]:
        """The net where the fault first takes effect and its faulty word.

        For a stem fault that is the fault line itself.  For a pin fault it
        is the *sink gate's output*, re-evaluated with the stuck value
        substituted on the faulty pin only.
        """
        if fault.line not in self.netlist.gates:
            raise ValueError(f"fault on unknown net: {fault}")
        if fault.is_stem:
            return fault.line, self._stuck_word(fault)
        sink = self.netlist.gates.get(fault.input_of)
        if sink is None or fault.line not in sink.inputs:
            raise ValueError(f"fault on unknown pin: {fault}")
        if sink.gate_type is GateType.DFF:
            # In the scan view the DFF input net is observed directly as a
            # pseudo output; the pin is the net itself.
            return fault.line, self._stuck_word(fault)
        stuck = self._stuck_word(fault)
        fanin = [
            stuck if net == fault.line else self.good_values[net]
            for net in sink.inputs
        ]
        return sink.name, EVALUATORS[sink.gate_type](fanin, self.mask)

    # ------------------------------------------------------------------
    def output_diffs(self, fault: Fault) -> Dict[str, int]:
        """Per-output difference words; only outputs with some difference appear.

        Bit ``p`` of ``result[o]`` is set when output ``o`` differs from the
        fault-free value under pattern ``p`` in the presence of ``fault``.
        """
        registry = get_default_registry()
        registry.counter("faultsim.faults_simulated").inc()
        registry.counter("faultsim.patterns_applied").inc(self.num_patterns)
        origin, faulty_word = self._activation(fault)
        good = self.good_values
        initial_diff = faulty_word ^ good[origin]
        diffs: Dict[str, int] = {}
        if not initial_diff:
            # The fault never activates under these patterns: its effect is
            # dropped at the origin before any propagation work happens.
            registry.counter("faultsim.dropped_faults").inc()
            return diffs
        faulty: Dict[str, int] = {origin: faulty_word}
        changed: Set[str] = {origin}
        if origin in self._output_set:
            diffs[origin] = initial_diff
        gates = self.netlist.gates
        for net in self._sorted_cone(origin)[1:]:
            gate = gates[net]
            if not any(i in changed for i in gate.inputs):
                continue
            fanin = [faulty.get(i, good[i]) for i in gate.inputs]
            value = EVALUATORS[gate.gate_type](fanin, self.mask)
            diff = value ^ good[net]
            if diff:
                faulty[net] = value
                changed.add(net)
                if net in self._output_set:
                    diffs[net] = diff
        return diffs

    def detection_word(self, fault: Fault) -> int:
        """Bit ``p`` set when pattern ``p`` detects ``fault`` at any output."""
        word = 0
        for diff in self.output_diffs(fault).values():
            word |= diff
        return word

    def detects(self, pattern_index: int, fault: Fault) -> bool:
        """Does the single test ``pattern_index`` detect ``fault``?"""
        return bool((self.detection_word(fault) >> pattern_index) & 1)

    def detected_faults(self, faults: Sequence[Fault]) -> List[Fault]:
        """The subset of ``faults`` detected by at least one test."""
        return [fault for fault in faults if self.detection_word(fault)]

    def coverage(self, faults: Sequence[Fault]) -> float:
        """Fraction of ``faults`` detected by the test set."""
        if not faults:
            return 1.0
        return len(self.detected_faults(faults)) / len(faults)

    def detection_counts(self, faults: Sequence[Fault]) -> Dict[Fault, int]:
        """Number of detecting tests per fault (for n-detection drivers)."""
        counts = {}
        for fault in faults:
            word = self.detection_word(fault)
            counts[fault] = bin(word).count("1")
        return counts
