"""Bit-parallel fault-free logic simulation.

Each net's value over all patterns is a single Python integer with one bit
per pattern, so the simulation cost is one bitwise operation per gate
regardless of the number of tests.  Only combinational (or full-scan)
netlists are simulated; sequential circuits must go through
:func:`repro.circuit.scan.prepare_for_test` first.
"""

from __future__ import annotations

from typing import Dict, List

from ..circuit.gates import EVALUATORS, GateType
from ..circuit.netlist import Netlist
from .patterns import TestSet


class SimulationError(RuntimeError):
    """Raised for simulation misuse (sequential netlist, missing inputs)."""


def simulate_words(netlist: Netlist, input_words: Dict[str, int], num_patterns: int) -> Dict[str, int]:
    """Simulate all patterns at once; returns the word of every net.

    ``input_words`` maps every primary input net to its pattern word.
    """
    if not netlist.is_combinational:
        raise SimulationError(
            f"netlist {netlist.name!r} is sequential; apply full scan first"
        )
    mask = (1 << num_patterns) - 1
    values: Dict[str, int] = {}
    for net in netlist.topological_order():
        gate = netlist.gates[net]
        if gate.gate_type is GateType.INPUT:
            try:
                values[net] = input_words[net] & mask
            except KeyError:
                raise SimulationError(f"no stimulus for primary input {net!r}")
        else:
            fanin = [values[i] for i in gate.inputs]
            values[net] = EVALUATORS[gate.gate_type](fanin, mask)
    return values


def simulate(netlist: Netlist, tests: TestSet) -> Dict[str, int]:
    """Simulate a :class:`TestSet`; returns the pattern word of every net."""
    if tuple(tests.inputs) != tuple(netlist.inputs):
        missing = set(netlist.inputs) - set(tests.inputs)
        if missing:
            raise SimulationError(f"test set lacks inputs {sorted(missing)}")
    return simulate_words(netlist, tests.input_words(), len(tests))


def output_words(netlist: Netlist, tests: TestSet) -> Dict[str, int]:
    """Pattern words of the primary outputs only."""
    values = simulate(netlist, tests)
    return {net: values[net] for net in netlist.outputs}


def output_vectors(netlist: Netlist, tests: TestSet) -> List[str]:
    """Per-test output response strings, ``result[j][o]`` for output ``o``."""
    words = output_words(netlist, tests)
    vectors = []
    for pattern in range(len(tests)):
        vectors.append(
            "".join("1" if (words[o] >> pattern) & 1 else "0" for o in netlist.outputs)
        )
    return vectors


def simulate_single(netlist: Netlist, assignment: Dict[str, int]) -> Dict[str, int]:
    """Scalar convenience: simulate one input assignment, {net: 0/1} out."""
    tests = TestSet(netlist.inputs)
    tests.append_assignment(assignment)
    values = simulate(netlist, tests)
    return {net: value & 1 for net, value in values.items()}
