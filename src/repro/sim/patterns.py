"""Test pattern containers.

A :class:`TestSet` holds an ordered list of fully specified input vectors
for a fixed, ordered tuple of input nets.  Internally each test is one
integer whose bit ``i`` is the value of ``inputs[i]``; the bit-parallel
simulators transpose this into one big integer *per input net* with one bit
per pattern (:meth:`TestSet.input_words`).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple


class TestSet:
    """An ordered set of fully specified test vectors."""

    __test__ = False  # not a pytest test class, despite the name

    def __init__(self, inputs: Sequence[str], tests: Iterable[int] = ()) -> None:
        self.inputs: Tuple[str, ...] = tuple(inputs)
        if len(set(self.inputs)) != len(self.inputs):
            raise ValueError("duplicate input names")
        self._tests: List[int] = []
        for test in tests:
            self.append(test)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def append(self, test: int) -> None:
        """Append one test given as an integer over the input bits."""
        if test < 0 or test >> len(self.inputs):
            raise ValueError(f"test {test:#x} does not fit {len(self.inputs)} inputs")
        self._tests.append(test)

    def append_assignment(self, assignment: Dict[str, int]) -> None:
        """Append one test given as a {net: 0/1} mapping over all inputs."""
        missing = set(self.inputs) - set(assignment)
        if missing:
            raise ValueError(f"assignment missing inputs: {sorted(missing)}")
        test = 0
        for position, net in enumerate(self.inputs):
            if assignment[net]:
                test |= 1 << position
        self._tests.append(test)

    def append_string(self, bits: str) -> None:
        """Append one test written as a '0'/'1' string, ``bits[i]`` for ``inputs[i]``."""
        if len(bits) != len(self.inputs) or set(bits) - {"0", "1"}:
            raise ValueError(f"bad test string {bits!r} for {len(self.inputs)} inputs")
        self._tests.append(int(bits[::-1], 2) if bits else 0)

    def extend(self, other: "TestSet") -> None:
        if other.inputs != self.inputs:
            raise ValueError("cannot extend with a test set over different inputs")
        self._tests.extend(other._tests)

    @classmethod
    def random(cls, inputs: Sequence[str], count: int, seed: int = 0) -> "TestSet":
        """``count`` uniform random tests, deterministic in ``seed``."""
        rng = random.Random(seed)
        width = len(inputs)
        return cls(inputs, (rng.getrandbits(width) for _ in range(count)))

    @classmethod
    def exhaustive(cls, inputs: Sequence[str]) -> "TestSet":
        """All ``2**len(inputs)`` vectors (for small circuits / ground truth)."""
        width = len(inputs)
        if width > 20:
            raise ValueError(f"refusing exhaustive set for {width} inputs")
        return cls(inputs, range(1 << width))

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tests)

    def __iter__(self) -> Iterator[int]:
        return iter(self._tests)

    def __getitem__(self, index: int) -> int:
        return self._tests[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TestSet):
            return NotImplemented
        return self.inputs == other.inputs and self._tests == other._tests

    def value(self, index: int, net: str) -> int:
        """Value of input ``net`` in test ``index``."""
        return (self._tests[index] >> self.inputs.index(net)) & 1

    def as_string(self, index: int) -> str:
        """Test ``index`` as a '0'/'1' string in input order."""
        test = self._tests[index]
        return "".join("1" if (test >> i) & 1 else "0" for i in range(len(self.inputs)))

    def assignment(self, index: int) -> Dict[str, int]:
        """Test ``index`` as a {net: value} mapping."""
        test = self._tests[index]
        return {net: (test >> i) & 1 for i, net in enumerate(self.inputs)}

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def input_words(self) -> Dict[str, int]:
        """Transpose to one big integer per input net (bit ``p`` = pattern ``p``)."""
        words = {net: 0 for net in self.inputs}
        for pattern, test in enumerate(self._tests):
            bit = 1 << pattern
            remaining = test
            while remaining:
                lsb = remaining & -remaining
                words[self.inputs[lsb.bit_length() - 1]] |= bit
                remaining ^= lsb
        return words

    def deduplicated(self) -> "TestSet":
        """Copy with repeated vectors removed (first occurrence kept)."""
        seen = set()
        unique = []
        for test in self._tests:
            if test not in seen:
                seen.add(test)
                unique.append(test)
        return TestSet(self.inputs, unique)

    def reordered(self, order: Sequence[int]) -> "TestSet":
        """Copy with tests permuted by ``order`` (a permutation of indices)."""
        if sorted(order) != list(range(len(self._tests))):
            raise ValueError("order must be a permutation of test indices")
        return TestSet(self.inputs, (self._tests[i] for i in order))

    def subset(self, indices: Sequence[int]) -> "TestSet":
        """Copy containing only the tests at ``indices``, in that order."""
        return TestSet(self.inputs, (self._tests[i] for i in indices))

    def __repr__(self) -> str:
        return f"TestSet({len(self.inputs)} inputs, {len(self._tests)} tests)"
