"""Full-response capture: the ``z_i,j`` output vectors of every fault.

The response of fault ``f_i`` under test ``t_j`` is stored as its
*signature*: the sorted tuple of primary-output indices at which the faulty
response differs from the fault-free response.  Two faults produce the same
output vector under ``t_j`` exactly when their signatures are equal, and
the fault-free response is the empty signature — so signatures are a sparse
lossless stand-in for the full output vectors the paper compares
(``z_i,j = z_ff,j`` with the failing bits flipped).

A :class:`ResponseTable` is the substrate shared by every dictionary type:
the full dictionary stores all signatures, the pass/fail dictionary only
``signature != ()``, and the same/different dictionary compares signatures
against a chosen baseline signature per test.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..circuit.netlist import Netlist
from ..faults.model import Fault
from .bits import iter_bits
from .faultsim import FaultSimulator
from .patterns import TestSet

Signature = Tuple[int, ...]

#: The fault-free signature: no failing outputs.
PASS: Signature = ()


class ResponseTable:
    """Responses of a fault list under a test set, in signature form."""

    def __init__(
        self,
        outputs: Sequence[str],
        faults: Sequence[Fault],
        tests: TestSet,
        failing: List[Dict[int, Signature]],
        good_output_words: Dict[str, int],
    ) -> None:
        self.outputs: Tuple[str, ...] = tuple(outputs)
        self.faults: Tuple[Fault, ...] = tuple(faults)
        self.tests = tests
        self._failing = failing
        self.good_output_words = dict(good_output_words)
        self._groups_cache: Dict[int, List[List[int]]] = {}
        self._signature_cache: Dict[int, List[Signature]] = {}
        self._interned = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, netlist: Netlist, faults: Sequence[Fault], tests: TestSet) -> "ResponseTable":
        """Fault-simulate every fault against every test and record signatures."""
        simulator = FaultSimulator(netlist, tests)
        output_index = {net: o for o, net in enumerate(netlist.outputs)}
        failing: List[Dict[int, Signature]] = []
        for fault in faults:
            per_test: Dict[int, List[int]] = {}
            diffs = simulator.output_diffs(fault)
            # Outputs are visited in index order so each per-test list of
            # failing outputs is built already sorted.
            for net in netlist.outputs:
                word = diffs.get(net)
                if not word:
                    continue
                o = output_index[net]
                for j in iter_bits(word):
                    per_test.setdefault(j, []).append(o)
            failing.append({j: tuple(outs) for j, outs in per_test.items()})
        good = {net: simulator.good_values[net] for net in netlist.outputs}
        table = cls(netlist.outputs, faults, tests, failing, good)
        # Pre-materialise the default backend's cached view (interned
        # columns for packed, plus the word-array layout for vector)
        # while the table is hot, so builds — and the worker processes a
        # parallel build pickles the table to — never pay the packing
        # cost inside a timed procedure.
        from ..kernels import available_backends, default_backend_name, get_backend

        name = default_backend_name()
        if name in available_backends():
            get_backend(name).prepare(table)
        return table

    # ------------------------------------------------------------------
    # dimensions
    # ------------------------------------------------------------------
    @property
    def n_faults(self) -> int:
        return len(self.faults)

    @property
    def n_tests(self) -> int:
        return len(self.tests)

    @property
    def n_outputs(self) -> int:
        return len(self.outputs)

    # ------------------------------------------------------------------
    # per-(fault, test) access
    # ------------------------------------------------------------------
    def signature(self, fault_index: int, test_index: int) -> Signature:
        """Failing-output signature of fault ``fault_index`` under test ``test_index``."""
        return self._failing[fault_index].get(test_index, PASS)

    def detects(self, test_index: int, fault_index: int) -> bool:
        return test_index in self._failing[fault_index]

    def detection_word(self, fault_index: int) -> int:
        """Bit ``j`` set when test ``j`` detects the fault (the pass/fail row)."""
        word = 0
        for j in self._failing[fault_index]:
            word |= 1 << j
        return word

    def full_row(self, fault_index: int) -> Tuple[Signature, ...]:
        """All signatures of one fault in test order (the full-dictionary row)."""
        row = self._failing[fault_index]
        return tuple(row.get(j, PASS) for j in range(self.n_tests))

    def response_vector(self, fault_index: int, test_index: int) -> str:
        """The faulty output vector ``z_i,j`` as a '0'/'1' string."""
        flips = set(self.signature(fault_index, test_index))
        bits = []
        for o, net in enumerate(self.outputs):
            good_bit = (self.good_output_words[net] >> test_index) & 1
            bits.append("1" if good_bit ^ (o in flips) else "0")
        return "".join(bits)

    def good_vector(self, test_index: int) -> str:
        """The fault-free output vector ``z_ff,j`` as a '0'/'1' string."""
        return "".join(
            "1" if (self.good_output_words[net] >> test_index) & 1 else "0"
            for net in self.outputs
        )

    def signature_to_vector(self, signature: Signature, test_index: int) -> str:
        """Convert a signature back to the concrete output vector under a test."""
        flips = set(signature)
        return "".join(
            "1" if ((self.good_output_words[net] >> test_index) & 1) ^ (o in flips) else "0"
            for o, net in enumerate(self.outputs)
        )

    # ------------------------------------------------------------------
    # per-test grouping (the candidate sets Z_j)
    # ------------------------------------------------------------------
    def _group(self, test_index: int) -> None:
        groups: Dict[Signature, List[int]] = {}
        for i, row in enumerate(self._failing):
            sig = row.get(test_index)
            if sig is not None:
                groups.setdefault(sig, []).append(i)
        ordered = sorted(groups.items(), key=lambda item: item[1][0])
        self._signature_cache[test_index] = [sig for sig, _ in ordered]
        self._groups_cache[test_index] = [members for _, members in ordered]

    def failing_signatures(self, test_index: int) -> List[Signature]:
        """Distinct non-pass signatures under a test, in first-fault order.

        Together with the implicit fault-free signature these are the
        candidate baseline responses ``Z_j`` of the paper.
        """
        if test_index not in self._signature_cache:
            self._group(test_index)
        return self._signature_cache[test_index]

    def failing_groups(self, test_index: int) -> List[List[int]]:
        """Fault indices per distinct signature, aligned with
        :meth:`failing_signatures`."""
        if test_index not in self._groups_cache:
            self._group(test_index)
        return self._groups_cache[test_index]

    def candidate_signatures(self, test_index: int) -> List[Signature]:
        """The full candidate set ``Z_j``: the fault-free response plus every
        distinct faulty response."""
        return [PASS] + self.failing_signatures(test_index)

    def detected_indices(self, test_index: int) -> List[int]:
        """Indices of all faults detected by a test."""
        return [i for group in self.failing_groups(test_index) for i in group]

    # ------------------------------------------------------------------
    # packed-kernel view
    # ------------------------------------------------------------------
    @property
    def interned(self):
        """The packed-column view (:class:`~repro.kernels.interning.InternedTable`).

        Computed lazily and cached; plain lists and ints, so it pickles
        with the table to restart worker processes.
        """
        if self._interned is None:
            from ..kernels import intern_response_table

            self._interned = intern_response_table(self)
        return self._interned

    def adopt_interned(self, interned) -> None:
        """Install a precomputed packed view instead of deriving one.

        The artifact loader calls this with the deserialised columns so a
        restored table serves the packed kernels without re-interning.
        """
        if interned.n_faults != self.n_faults or interned.n_tests != self.n_tests:
            raise ValueError(
                f"interned view is {interned.n_faults}x{interned.n_tests}, "
                f"table is {self.n_faults}x{self.n_tests}"
            )
        self._interned = interned

    # ------------------------------------------------------------------
    def subset(self, test_indices: Sequence[int]) -> "ResponseTable":
        """Restriction of the table to the given tests (reindexed in order)."""
        remap = {old: new for new, old in enumerate(test_indices)}
        failing = [
            {remap[j]: sig for j, sig in row.items() if j in remap}
            for row in self._failing
        ]
        tests = self.tests.subset(test_indices)
        good = {
            net: _gather_bits(word, test_indices)
            for net, word in self.good_output_words.items()
        }
        return ResponseTable(self.outputs, self.faults, tests, failing, good)

    def __repr__(self) -> str:
        return (
            f"ResponseTable({self.n_faults} faults x {self.n_tests} tests, "
            f"{self.n_outputs} outputs)"
        )


def _gather_bits(word: int, indices: Iterable[int]) -> int:
    gathered = 0
    for new, old in enumerate(indices):
        if (word >> old) & 1:
            gathered |= 1 << new
    return gathered
