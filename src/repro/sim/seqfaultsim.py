"""Sequential fault simulation and dictionaries over test sequences.

For non-scan circuits a "test" is a sequence of input vectors and the
response is observed at the primary outputs on every cycle.  This module
simulates single stuck-at faults over such sequences (bit-parallel across
sequences) and repackages the results as a standard
:class:`~repro.sim.responses.ResponseTable` in which:

* a *test* is a whole input sequence, and
* an *output* is a (cycle, primary output) pair.

Every dictionary organisation — including the same/different dictionary
and its baseline-selection procedures — then applies to non-scan circuits
unchanged, which is how the paper's scheme extends to sequential designs
(cf. its reference [10] on sequential-circuit dictionaries).  A baseline
"output vector" is correspondingly a whole per-cycle output stream, so
the ``m`` of the size model becomes ``cycles × outputs``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..circuit.netlist import Netlist
from ..faults.model import Fault
from .patterns import TestSet
from .responses import ResponseTable, Signature
from .seqsim import SequentialSimulator

#: One test sequence: per-cycle {input net: 0/1} assignments.
Frames = Sequence[Dict[str, int]]


def _pack_sequences(netlist: Netlist, sequences: Sequence[Frames]) -> List[Dict[str, int]]:
    """Transpose scalar sequences into per-cycle bit-parallel input words."""
    if not sequences:
        return []
    length = len(sequences[0])
    for frames in sequences:
        if len(frames) != length:
            raise ValueError("all sequences must have the same length")
    packed: List[Dict[str, int]] = []
    for cycle in range(length):
        words = {net: 0 for net in netlist.inputs}
        for s, frames in enumerate(sequences):
            frame = frames[cycle]
            for net in netlist.inputs:
                if frame[net]:
                    words[net] |= 1 << s
        packed.append(words)
    return packed


def sequential_outputs(
    netlist: Netlist, sequences: Sequence[Frames]
) -> List[Dict[str, int]]:
    """Fault-free per-cycle output words (bit ``s`` = sequence ``s``)."""
    simulator = SequentialSimulator(netlist, n_sequences=len(sequences))
    return simulator.run(_pack_sequences(netlist, sequences))


def sequential_output_diffs(
    netlist: Netlist, sequences: Sequence[Frames], fault: Fault
) -> List[Dict[str, int]]:
    """Per-cycle, per-output difference words for one fault.

    The faulty machine is the structurally injected copy, so the semantics
    are exact for any fault the injector supports (stem, pin, PI).
    """
    from ..atpg.distinguish import injected_copy

    good = sequential_outputs(netlist, sequences)
    faulty_netlist = injected_copy(netlist, fault)
    faulty = sequential_outputs(faulty_netlist, sequences)
    diffs: List[Dict[str, int]] = []
    for good_cycle, faulty_cycle in zip(good, faulty):
        diffs.append(
            {
                net: good_cycle[net] ^ faulty_cycle[net]
                for net in good_cycle
                if good_cycle[net] != faulty_cycle[net]
            }
        )
    return diffs


def sequential_detection_word(
    netlist: Netlist, sequences: Sequence[Frames], fault: Fault
) -> int:
    """Bit ``s`` set when sequence ``s`` detects the fault on any cycle."""
    word = 0
    for cycle in sequential_output_diffs(netlist, sequences, fault):
        for diff in cycle.values():
            word |= diff
    return word


def sequential_response_table(
    netlist: Netlist,
    sequences: Sequence[Frames],
    faults: Sequence[Fault],
) -> ResponseTable:
    """A :class:`ResponseTable` over sequences (tests) x cycle-outputs.

    The returned table plugs into every dictionary builder; its
    ``outputs`` are named ``c<cycle>:<net>``.
    """
    if not sequences:
        raise ValueError("need at least one test sequence")
    length = len(sequences[0])
    outputs: List[str] = [
        f"c{cycle}:{net}" for cycle in range(length) for net in netlist.outputs
    ]
    position: Dict[Tuple[int, str], int] = {
        (cycle, net): index
        for index, (cycle, net) in enumerate(
            (cycle, net) for cycle in range(length) for net in netlist.outputs
        )
    }
    good = sequential_outputs(netlist, sequences)
    good_words: Dict[str, int] = {
        f"c{cycle}:{net}": good[cycle][net]
        for cycle in range(length)
        for net in netlist.outputs
    }
    failing: List[Dict[int, Signature]] = []
    for fault in faults:
        diffs = sequential_output_diffs(netlist, sequences, fault)
        per_sequence: Dict[int, List[int]] = {}
        for cycle, cycle_diffs in enumerate(diffs):
            for net in netlist.outputs:
                word = cycle_diffs.get(net, 0)
                s = 0
                while word:
                    lsb = word & -word
                    per_sequence.setdefault(lsb.bit_length() - 1, []).append(
                        position[(cycle, net)]
                    )
                    word ^= lsb
        failing.append(
            {s: tuple(sorted(hits)) for s, hits in per_sequence.items()}
        )
    tests = TestSet(("sequence",), [0] * len(sequences))
    return ResponseTable(outputs, faults, tests, failing, good_words)


def random_sequences(
    netlist: Netlist, count: int, length: int, seed: int = 0
) -> List[List[Dict[str, int]]]:
    """``count`` random input sequences of ``length`` cycles each."""
    import random

    rng = random.Random(seed)
    return [
        [
            {net: rng.getrandbits(1) for net in netlist.inputs}
            for _ in range(length)
        ]
        for _ in range(count)
    ]
