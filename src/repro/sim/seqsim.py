"""Sequential (time-frame) simulation of non-scan circuits.

The paper's circuits are scan designs, handled by the full-scan transform;
this simulator covers the non-scan case: a test is a *sequence* of input
vectors applied over consecutive clock cycles, flip-flops carry state from
frame to frame, and the response is the per-cycle primary output vector.
Still bit-parallel — many independent sequences simulate at once, one bit
per sequence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..circuit.gates import EVALUATORS, GateType
from ..circuit.netlist import Netlist
from .logicsim import SimulationError


class SequentialSimulator:
    """Cycle-accurate simulation of a sequential netlist.

    All sequences advance in lockstep; bit ``s`` of every word belongs to
    sequence ``s``.  Unknown initial state is modelled by an explicit
    reset value (default all-zero), matching a design with a global reset.
    """

    def __init__(self, netlist: Netlist, n_sequences: int = 1) -> None:
        if netlist.is_combinational:
            # Works fine, there is just no state to carry.
            pass
        self.netlist = netlist
        self.n_sequences = n_sequences
        self.mask = (1 << n_sequences) - 1
        self._order = netlist.topological_order()
        self.reset()

    def reset(self, state: Optional[Dict[str, int]] = None) -> None:
        """Reset flip-flop outputs (default: all zero)."""
        self.state: Dict[str, int] = {
            ff: 0 for ff in self.netlist.flip_flops
        }
        if state:
            unknown = set(state) - set(self.state)
            if unknown:
                raise SimulationError(f"not flip-flops: {sorted(unknown)}")
            for ff, value in state.items():
                self.state[ff] = value & self.mask
        self.cycle = 0

    def step(self, input_words: Dict[str, int]) -> Dict[str, int]:
        """Advance one clock cycle; returns the output words of this cycle.

        ``input_words`` maps every primary input to its word (bit ``s`` =
        value in sequence ``s``).
        """
        values: Dict[str, int] = {}
        gates = self.netlist.gates
        for net in self._order:
            gate = gates[net]
            if gate.gate_type is GateType.INPUT:
                try:
                    values[net] = input_words[net] & self.mask
                except KeyError:
                    raise SimulationError(f"no stimulus for input {net!r}")
            elif gate.gate_type is GateType.DFF:
                values[net] = self.state[net]
            else:
                fanin = [values[i] for i in gate.inputs]
                values[net] = EVALUATORS[gate.gate_type](fanin, self.mask)
        # Latch next state after the whole frame is evaluated.
        for ff in self.state:
            self.state[ff] = values[gates[ff].inputs[0]]
        self.cycle += 1
        self._last_values = values
        return {net: values[net] for net in self.netlist.outputs}

    def run(
        self, sequence: Sequence[Dict[str, int]]
    ) -> List[Dict[str, int]]:
        """Apply a list of per-cycle input words; returns per-cycle outputs."""
        return [self.step(frame) for frame in sequence]

    def net_value(self, net: str) -> int:
        """Word of any net after the most recent step."""
        try:
            return self._last_values[net]
        except AttributeError:
            raise SimulationError("no cycle simulated yet")


def simulate_sequence(
    netlist: Netlist, frames: Sequence[Dict[str, int]]
) -> List[str]:
    """Scalar convenience: one sequence of {input: 0/1} frames.

    Returns the output vector string of every cycle, from reset state.
    """
    simulator = SequentialSimulator(netlist, n_sequences=1)
    responses = []
    for frame in frames:
        outputs = simulator.step({net: value & 1 for net, value in frame.items()})
        responses.append(
            "".join(str(outputs[net] & 1) for net in netlist.outputs)
        )
    return responses
