"""Three-valued (0/1/X) simulation with partially specified inputs.

Useful for reasoning about incompletely specified test cubes: which nets
are already determined, which outputs are guaranteed regardless of the
unspecified inputs.  Sound and complete gate-by-gate in the usual
three-valued sense: a net reported 0/1 holds for *every* completion of
the X inputs; a net reported X genuinely depends on them (per-gate — the
usual pessimism of 3-valued simulation applies across reconvergence).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..atpg.values import X, evaluate3
from ..circuit.gates import GateType
from ..circuit.netlist import Netlist
from .logicsim import SimulationError

#: The don't-care input value.
UNKNOWN = X


def simulate3(netlist: Netlist, assignment: Dict[str, int]) -> Dict[str, int]:
    """Three-valued simulation; unassigned inputs are X.

    ``assignment`` maps primary inputs to 0/1 (others default to X).
    Returns every net's value in {0, 1, X} (X == 2).
    """
    if not netlist.is_combinational:
        raise SimulationError(
            f"netlist {netlist.name!r} is sequential; apply full scan first"
        )
    unknown_inputs = set(assignment) - set(netlist.inputs)
    if unknown_inputs:
        raise SimulationError(f"not primary inputs: {sorted(unknown_inputs)}")
    values: Dict[str, int] = {}
    for net in netlist.topological_order():
        gate = netlist.gates[net]
        if gate.gate_type is GateType.INPUT:
            value = assignment.get(net, X)
            if value not in (0, 1, X):
                raise SimulationError(f"bad value {value!r} for input {net!r}")
            values[net] = value
        else:
            values[net] = evaluate3(
                gate.gate_type, [values[i] for i in gate.inputs]
            )
    return values


def determined_outputs(netlist: Netlist, assignment: Dict[str, int]) -> Dict[str, int]:
    """The outputs guaranteed 0/1 for every completion of the test cube."""
    values = simulate3(netlist, assignment)
    return {
        net: values[net] for net in netlist.outputs if values[net] != X
    }


def required_inputs(
    netlist: Netlist,
    target_net: str,
    candidates: Optional[Iterable[str]] = None,
) -> Dict[str, bool]:
    """Which inputs can influence ``target_net`` at all (cone membership).

    A quick structural screen used before more expensive reasoning:
    inputs outside the cone can never change the net.
    """
    if target_net not in netlist.gates:
        raise SimulationError(f"unknown net {target_net!r}")
    cone = netlist.input_cone(target_net)
    pool = list(candidates) if candidates is not None else netlist.inputs
    return {net: net in cone for net in pool}


def cube_conflicts(cube_a: Dict[str, int], cube_b: Dict[str, int]) -> bool:
    """Do two test cubes clash on some specified input?"""
    return any(
        cube_a[net] != cube_b[net]
        for net in set(cube_a) & set(cube_b)
        if cube_a[net] != X and cube_b[net] != X
    )


def merge_cubes(cube_a: Dict[str, int], cube_b: Dict[str, int]) -> Optional[Dict[str, int]]:
    """Merge two compatible cubes (static test compaction's core move)."""
    merged = dict(cube_a)
    for net, value in cube_b.items():
        if value == X:
            continue
        if merged.get(net, X) not in (X, value):
            return None
        merged[net] = value
    return merged
