"""Persistent dictionary artifacts: the build→store→serve boundary.

The paper computes a dictionary once and diagnoses many failing chips
against it.  This package is that boundary in code: a versioned binary
artifact format for built dictionaries (:mod:`repro.store.artifact`) and
a content-addressed build cache on top of it
(:mod:`repro.store.cache`).  The serve side —
:meth:`repro.diagnosis.Diagnoser.from_artifact` — needs only these
modules, never a netlist or simulator.
"""

from .artifact import (
    FORMAT_VERSION,
    MAGIC,
    ArtifactError,
    ArtifactFormatError,
    ArtifactHashError,
    ArtifactVersionError,
    build_inputs_hash,
    load_artifact,
    load_artifact_buffer,
    read_content_hash,
    save_artifact,
    table_content_hash,
)
from .cache import ARTIFACT_SUFFIX, BuildCache

__all__ = [
    "ARTIFACT_SUFFIX",
    "ArtifactError",
    "ArtifactFormatError",
    "ArtifactHashError",
    "ArtifactVersionError",
    "BuildCache",
    "FORMAT_VERSION",
    "MAGIC",
    "build_inputs_hash",
    "load_artifact",
    "load_artifact_buffer",
    "read_content_hash",
    "save_artifact",
    "table_content_hash",
]
