"""Persistent dictionary artifacts: the build→store→serve boundary.

The paper computes a dictionary once and diagnoses many failing chips
against it.  This package is that boundary in code: a versioned binary
artifact format for built dictionaries (:mod:`repro.store.artifact`), a
content-addressed build cache on top of it (:mod:`repro.store.cache`),
and resumable ``RFDC`` build checkpoints bound to the same content keys
(:mod:`repro.store.checkpoint`).  The serve side —
:meth:`repro.diagnosis.Diagnoser.from_artifact` — needs only these
modules, never a netlist or simulator.
"""

from .artifact import (
    FORMAT_VERSION,
    MAGIC,
    ArtifactError,
    ArtifactFormatError,
    ArtifactHashError,
    ArtifactVersionError,
    build_inputs_hash,
    load_artifact,
    load_artifact_buffer,
    read_content_hash,
    save_artifact,
    semantic_digest,
    table_content_hash,
)
from .cache import ARTIFACT_SUFFIX, BuildCache
from .checkpoint import (
    CheckpointError,
    CheckpointFormatError,
    CheckpointHashError,
    CheckpointManager,
    CheckpointSession,
    CheckpointState,
    CheckpointVersionError,
    load_checkpoint,
    save_checkpoint,
)

__all__ = [
    "ARTIFACT_SUFFIX",
    "ArtifactError",
    "ArtifactFormatError",
    "ArtifactHashError",
    "ArtifactVersionError",
    "BuildCache",
    "CheckpointError",
    "CheckpointFormatError",
    "CheckpointHashError",
    "CheckpointManager",
    "CheckpointSession",
    "CheckpointState",
    "CheckpointVersionError",
    "FORMAT_VERSION",
    "MAGIC",
    "build_inputs_hash",
    "load_artifact",
    "load_artifact_buffer",
    "load_checkpoint",
    "read_content_hash",
    "save_artifact",
    "save_checkpoint",
    "semantic_digest",
    "table_content_hash",
]
