"""The versioned on-disk dictionary artifact.

A dictionary is computed once and then serves many failing chips — the
build→serve boundary the paper assumes.  This module makes the built
dictionary a first-class asset: :func:`save_artifact` writes a
:class:`~repro.api.BuiltDictionary` (dictionary rows, build provenance
*and* the interned response table) to a single self-describing binary
file, and :func:`load_artifact` restores it without a netlist, test
generator or fault simulator in the loop.

File layout (all integers big-endian)::

    offset 0   magic          b"RFDA"
    offset 4   format version u16 (currently 1)
    offset 6   content hash   32 raw bytes (sha256 of the build inputs)
    offset 38  body checksum  32 raw bytes (sha256 of everything after it)
    offset 70  header length  u32
    offset 74  header         JSON (utf-8)
    ...        payload        bit-packed response columns

The header carries the catalogue data (outputs, faults, test vectors,
fault-free output words, the per-test distinct failing signatures, the
baseline ids, config and build report); the payload packs the interned
signature-id columns — ``ceil(log2 |Z_j|)`` bits per (fault, test) — with
the :class:`~repro.dictionaries.storage.BitWriter` machinery.  Everything
is JSON + packed integers: loading never unpickles anything, and any
truncation or bit flip fails the body checksum with a strict
:class:`ArtifactError` subclass instead of yielding garbage.

The *content hash* identifies the build inputs, not the file bytes: it is
the cache key of :class:`~repro.store.cache.BuildCache` (see
``docs/artifacts.md`` for the key rules).
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import asdict, fields
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..api import BuiltDictionary, DictionaryConfig, KINDS
from ..circuit.bench import dumps as bench_dumps
from ..circuit.netlist import Netlist
from ..dictionaries.full import FullDictionary
from ..dictionaries.passfail import PassFailDictionary
from ..dictionaries.samediff import BuildReport, SameDifferentDictionary
from ..dictionaries.storage import BitWriter
from ..faults.model import Fault
from ..kernels.interning import InternedTable
from ..obs import get_default_registry
from ..sim.patterns import TestSet
from ..sim.responses import PASS, ResponseTable, Signature

MAGIC = b"RFDA"
FORMAT_VERSION = 1

#: magic, format version, content hash, body checksum.
_PREAMBLE = struct.Struct(">4sH32s32s")
_HEADER_LEN = struct.Struct(">I")


class ArtifactError(ValueError):
    """Base of every artifact validation failure."""


class ArtifactFormatError(ArtifactError):
    """The file is not a well-formed artifact (magic, truncation, corruption)."""


class ArtifactVersionError(ArtifactError):
    """The artifact uses a format version this code does not speak."""


class ArtifactHashError(ArtifactError):
    """The artifact's content hash does not match the expected build inputs."""


# ----------------------------------------------------------------------
# content hashing (the cache key)
# ----------------------------------------------------------------------
def _canonical(doc: object) -> bytes:
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


def _build_key(kind: str, config: DictionaryConfig) -> Dict[str, object]:
    """The config portion of the cache key.

    ``jobs`` and ``backend`` are deliberately excluded: both are
    guaranteed byte-identical to the serial/packed reference (see
    docs/parallelism.md and docs/kernels.md), so they change how a
    dictionary is built, never what is built.
    """
    return {
        "kind": kind,
        "seed": config.seed,
        "calls1": config.calls1,
        "lower": config.lower,
        "procedure2": config.procedure2,
    }


def _faults_doc(faults: Sequence[Fault]) -> List[List[object]]:
    return [[f.line, f.stuck_at, f.input_of] for f in faults]


def _tests_doc(tests: TestSet) -> Dict[str, object]:
    return {
        "inputs": list(tests.inputs),
        "vectors": [format(t, "x") for t in tests],
    }


def build_inputs_hash(
    netlist: Netlist,
    faults: Sequence[Fault],
    tests: TestSet,
    kind: str,
    config: DictionaryConfig,
) -> str:
    """Cache key for a ``netlist``/``faults``/``tests`` build — computable
    *before* any fault simulation, which is what lets a cache hit skip the
    simulator entirely."""
    doc = {
        "netlist": bench_dumps(netlist),
        "faults": _faults_doc(faults),
        "tests": _tests_doc(tests),
        "build": _build_key(kind, config),
    }
    return hashlib.sha256(_canonical(doc)).hexdigest()


def table_content_hash(
    table: ResponseTable, kind: str, config: DictionaryConfig
) -> str:
    """Cache key for a prepared-table build: the full response content.

    Distinct from :func:`build_inputs_hash` by construction — the two
    entry paths hash different inputs and never alias each other's cache
    entries.
    """
    responses = [
        [
            [j, list(sig)]
            for j in range(table.n_tests)
            if (sig := table.signature(i, j)) != PASS
        ]
        for i in range(table.n_faults)
    ]
    doc = {
        "outputs": list(table.outputs),
        "faults": _faults_doc(table.faults),
        "tests": _tests_doc(table.tests),
        "good": {net: format(w, "x") for net, w in table.good_output_words.items()},
        "responses": responses,
        "build": _build_key(kind, config),
    }
    return hashlib.sha256(_canonical(doc)).hexdigest()


def semantic_digest(built: BuiltDictionary) -> str:
    """Hash of what a build *produced*, execution details excluded.

    The content hash identifies build inputs; this digest identifies
    outputs: kind, key config, chosen baselines, packed columns and the
    execution-independent report fields.  Two builds of the same inputs
    — serial or ``jobs=N``, killed-and-resumed or uninterrupted — must
    agree here, which is what the checkpoint determinism gates compare.
    Wall-clock seconds, ``jobs`` and batch counts are excluded because
    they legitimately vary run to run.
    """
    table = built.table
    interned = table.interned
    baselines: Optional[List[Optional[int]]] = None
    if built.kind == "same-different":
        baselines = [
            interned.sig_ids[j].get(b)
            for j, b in enumerate(built.dictionary.baselines)
        ]
    report = None
    if built.report is not None:
        report = built.report.as_dict(schema=3)
        for volatile in (
            "procedure1_seconds",
            "procedure2_seconds",
            "jobs",
            "batches",
        ):
            report.pop(volatile, None)
    doc = {
        "kind": built.kind,
        "build": _build_key(built.kind, built.config),
        "baselines": baselines,
        "cols": interned.cols,
        "report": report,
    }
    return hashlib.sha256(_canonical(doc)).hexdigest()


# ----------------------------------------------------------------------
# save
# ----------------------------------------------------------------------
def save_artifact(
    built: BuiltDictionary,
    path: Union[str, Path],
    *,
    content_hash: Optional[str] = None,
) -> str:
    """Write ``built`` to ``path``; returns the hex content hash stored.

    ``content_hash`` defaults to :func:`table_content_hash` over the
    built table and config; the build cache passes its own input-derived
    key instead.
    """
    registry = get_default_registry()
    with registry.timer("store.artifact_save_seconds").time():
        if built.kind not in KINDS:
            raise ArtifactError(f"cannot serialise dictionary kind {built.kind!r}")
        table = built.table
        if content_hash is None:
            content_hash = table_content_hash(table, built.kind, built.config)
        interned = table.interned  # the packed-column view, built once
        baselines: Optional[List[int]] = None
        if built.kind == "same-different":
            baselines = []
            for j, baseline in enumerate(built.dictionary.baselines):
                sid = interned.sig_ids[j].get(baseline)
                if sid is None:
                    raise ArtifactError(
                        f"baseline of test {j} is not in the candidate set Z_{j}"
                    )
                baselines.append(sid)
        writer = BitWriter()
        for j in range(table.n_tests):
            width = (len(interned.sigs[j]) - 1).bit_length()
            if not width:
                continue
            col = interned.cols[j]
            for i in range(table.n_faults):
                writer.write(col[i], width)
        header = {
            "kind": built.kind,
            "config": asdict(built.config),
            "report": built.report.as_dict(schema=3) if built.report else None,
            "outputs": list(table.outputs),
            "faults": _faults_doc(table.faults),
            "test_inputs": list(table.tests.inputs),
            "tests": [format(t, "x") for t in table.tests],
            "good_output_words": {
                net: format(w, "x") for net, w in table.good_output_words.items()
            },
            "signatures": [
                [list(sig) for sig in sigs_j[1:]] for sigs_j in interned.sigs
            ],
            "baselines": baselines,
            "payload_bits": writer.bit_count,
        }
        header_bytes = _canonical(header)
        body = _HEADER_LEN.pack(len(header_bytes)) + header_bytes + writer.to_bytes()
        blob = (
            _PREAMBLE.pack(
                MAGIC,
                FORMAT_VERSION,
                bytes.fromhex(content_hash),
                hashlib.sha256(body).digest(),
            )
            + body
        )
        Path(path).write_bytes(blob)
        registry.counter("store.artifacts_saved").inc()
        registry.gauge("store.artifact_bytes").set(len(blob))
    return content_hash


# ----------------------------------------------------------------------
# load
# ----------------------------------------------------------------------
def read_content_hash(path: Union[str, Path]) -> str:
    """The content hash from an artifact's preamble, without loading it.

    Validates only the fixed-size preamble (magic + format version) —
    enough for the serve pool to key its entries before deciding whether
    the (much more expensive) full load and checksum walk is needed.  The
    preamble is read through ``mmap`` when the platform allows, so the
    probe touches one page of the file.
    """
    try:
        with open(path, "rb") as handle:
            try:
                import mmap

                with mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                ) as view:
                    head = bytes(view[: _PREAMBLE.size])
            except (ValueError, OSError):  # empty file or no mmap support
                head = handle.read(_PREAMBLE.size)
    except OSError as exc:
        raise ArtifactFormatError(f"{path}: cannot read artifact: {exc}") from exc
    if len(head) < _PREAMBLE.size:
        raise ArtifactFormatError(
            f"{path}: {len(head)} bytes is too short for an artifact preamble"
        )
    magic, version, hash_raw, _ = _PREAMBLE.unpack_from(head)
    if magic != MAGIC:
        raise ArtifactFormatError(
            f"{path}: bad magic {magic!r} (not a dictionary artifact)"
        )
    if version != FORMAT_VERSION:
        raise ArtifactVersionError(
            f"{path}: format version {version} (this build reads "
            f"{FORMAT_VERSION}); rebuild the artifact"
        )
    return hash_raw.hex()


def load_artifact(
    path: Union[str, Path], *, expected_hash: Optional[str] = None
) -> BuiltDictionary:
    """Restore a :class:`~repro.api.BuiltDictionary` from ``path``.

    Validation is strict: a bad magic number, unknown format version,
    failed checksum (truncation, bit rot) or — when ``expected_hash`` is
    given — a content-hash mismatch each raise their dedicated
    :class:`ArtifactError` subclass.  The restored table carries its
    interned column view, so diagnosis serves at full speed with no
    circuit files present.
    """
    try:
        raw = Path(path).read_bytes()
    except OSError as exc:
        raise ArtifactFormatError(f"{path}: cannot read artifact: {exc}") from exc
    return load_artifact_buffer(raw, name=str(path), expected_hash=expected_hash)


def load_artifact_buffer(
    raw: bytes, *, name: str = "<buffer>", expected_hash: Optional[str] = None
) -> BuiltDictionary:
    """:func:`load_artifact` over an in-memory buffer.

    ``raw`` may be any bytes-like object — the serve pool passes a
    memory-mapped view of the file so validation streams straight off the
    page cache; ``name`` labels error messages.
    """
    registry = get_default_registry()
    with registry.timer("store.artifact_load_seconds").time():
        if len(raw) < _PREAMBLE.size:
            raise ArtifactFormatError(
                f"{name}: {len(raw)} bytes is too short for an artifact preamble"
            )
        magic, version, hash_raw, body_sha = _PREAMBLE.unpack_from(raw)
        if magic != MAGIC:
            raise ArtifactFormatError(
                f"{name}: bad magic {magic!r} (not a dictionary artifact)"
            )
        if version != FORMAT_VERSION:
            raise ArtifactVersionError(
                f"{name}: format version {version} (this build reads "
                f"{FORMAT_VERSION}); rebuild the artifact"
            )
        content_hash = hash_raw.hex()
        if expected_hash is not None and content_hash != expected_hash:
            raise ArtifactHashError(
                f"{name}: content hash {content_hash[:12]}… does not match the "
                f"expected build inputs {expected_hash[:12]}…"
            )
        body = bytes(memoryview(raw)[_PREAMBLE.size :])
        if hashlib.sha256(body).digest() != body_sha:
            raise ArtifactFormatError(
                f"{name}: body checksum mismatch (truncated or corrupted file)"
            )
        try:
            built = _reconstruct(body)
        except ArtifactError:
            raise
        except (KeyError, IndexError, TypeError, ValueError, struct.error) as exc:
            raise ArtifactFormatError(f"{name}: malformed artifact body: {exc}") from exc
        registry.counter("store.artifacts_loaded").inc()
        registry.gauge("store.artifact_bytes").set(len(raw))
    return built


def _reconstruct(body: bytes) -> BuiltDictionary:
    (header_len,) = _HEADER_LEN.unpack_from(body)
    header_bytes = body[_HEADER_LEN.size : _HEADER_LEN.size + header_len]
    if len(header_bytes) != header_len:
        raise ArtifactFormatError("header extends past the end of the file")
    payload = body[_HEADER_LEN.size + header_len :]
    header = json.loads(header_bytes)

    kind = header["kind"]
    if kind not in KINDS:
        raise ArtifactFormatError(f"unknown dictionary kind {kind!r}")
    config = _restore_config(header["config"])
    report = _restore_report(header["report"])
    outputs = tuple(header["outputs"])
    faults = tuple(
        Fault(line, stuck_at, input_of)
        for line, stuck_at, input_of in header["faults"]
    )
    tests = TestSet(header["test_inputs"], (int(t, 16) for t in header["tests"]))
    good = {net: int(w, 16) for net, w in header["good_output_words"].items()}
    sigs: List[List[Signature]] = [
        [PASS] + [tuple(sig) for sig in per_test]
        for per_test in header["signatures"]
    ]
    n_faults, n_tests = len(faults), len(sigs)
    if n_tests != len(tests):
        raise ArtifactFormatError(
            f"{n_tests} signature columns for {len(tests)} tests"
        )
    if (int(header["payload_bits"]) + 7) // 8 != len(payload):
        raise ArtifactFormatError(
            f"payload is {len(payload)} bytes but header declares "
            f"{header['payload_bits']} bits"
        )

    # Bulk decode: the payload is read once as a little-endian integer and
    # each column is peeled off in one chunk — the same bit order the
    # incremental BitReader would walk, an order of magnitude fewer
    # Python-level operations (this is the warm path of the build cache).
    stream = int.from_bytes(payload, "little")
    position = 0
    cols: List[List[int]] = []
    det_words = [0] * n_faults
    failing: List[Dict[int, Signature]] = [{} for _ in range(n_faults)]
    for j, sigs_j in enumerate(sigs):
        width = (len(sigs_j) - 1).bit_length()
        col = [0] * n_faults
        if width:
            mask = (1 << width) - 1
            chunk = (stream >> position) & ((1 << (width * n_faults)) - 1)
            position += width * n_faults
            bit = 1 << j
            for i in range(n_faults):
                sid = chunk & mask
                chunk >>= width
                if sid >= len(sigs_j):
                    raise ArtifactFormatError(
                        f"signature id {sid} out of range for test {j}"
                    )
                if sid:
                    col[i] = sid
                    det_words[i] |= bit
                    failing[i][j] = sigs_j[sid]
        cols.append(col)
    if position != int(header["payload_bits"]):
        raise ArtifactFormatError(
            f"payload holds {position} bits of columns, header declares "
            f"{header['payload_bits']}"
        )

    table = ResponseTable(outputs, faults, tests, failing, good)
    table.adopt_interned(
        InternedTable(
            n_faults,
            n_tests,
            cols,
            sigs,
            [{sig: sid for sid, sig in enumerate(sigs_j)} for sigs_j in sigs],
            det_words,
        )
    )

    if kind == "same-different":
        ids = header["baselines"]
        if ids is None or len(ids) != n_tests:
            raise ArtifactFormatError("same-different artifact without baselines")
        baselines = []
        for j, sid in enumerate(ids):
            if not 0 <= sid < len(sigs[j]):
                raise ArtifactFormatError(
                    f"baseline id {sid} out of range for test {j}"
                )
            baselines.append(sigs[j][sid])
        dictionary = SameDifferentDictionary(table, baselines)
    elif kind == "pass-fail":
        dictionary = PassFailDictionary(table)
    else:
        dictionary = FullDictionary(table)
    return BuiltDictionary(dictionary, table, kind, config, report)


def _restore_config(doc: Dict[str, object]) -> DictionaryConfig:
    known = {f.name for f in fields(DictionaryConfig)}
    return DictionaryConfig(**{k: v for k, v in doc.items() if k in known})


def _restore_report(doc: Optional[Dict[str, object]]) -> Optional[BuildReport]:
    if doc is None:
        return None
    known = {f.name for f in fields(BuildReport)}
    return BuildReport(**{k: v for k, v in doc.items() if k in known})
