"""The on-disk build cache: content-addressed dictionary artifacts.

``repro.api.build(..., cache_dir=...)`` funnels through here: the build
inputs are hashed (see :func:`~repro.store.artifact.build_inputs_hash` /
:func:`~repro.store.artifact.table_content_hash`), and a cache entry with
that hash is loaded instead of re-running fault simulation and
Procedures 1/2.  Entries are plain artifact files named
``<content-hash>.rfd``, written atomically, so a cache directory can be
shared between processes and shipped between machines.

Every lookup lands in the metrics registry: ``store.cache_hits``,
``store.cache_misses``, and ``store.cache_invalid`` for entries that
exist but fail artifact validation (those are treated as misses and
overwritten by the subsequent store).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from ..api import BuiltDictionary
from ..obs import get_default_registry
from .artifact import ArtifactError, load_artifact, save_artifact

#: File extension of cache entries (and the conventional one for artifacts).
ARTIFACT_SUFFIX = ".rfd"


class BuildCache:
    """A directory of dictionary artifacts keyed by content hash."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, content_hash: str) -> Path:
        return self.root / f"{content_hash}{ARTIFACT_SUFFIX}"

    def get(self, content_hash: str) -> Optional[BuiltDictionary]:
        """The cached build for ``content_hash``, or ``None`` on a miss.

        An existing entry that fails validation (version bump, truncation,
        foreign file) counts as a miss — the caller rebuilds and the next
        :meth:`put` replaces it.
        """
        registry = get_default_registry()
        path = self.path_for(content_hash)
        if not path.is_file():
            registry.counter("store.cache_misses").inc()
            return None
        try:
            built = load_artifact(path, expected_hash=content_hash)
        except ArtifactError:
            registry.counter("store.cache_misses").inc()
            registry.counter("store.cache_invalid").inc()
            return None
        registry.counter("store.cache_hits").inc()
        return built

    def put(self, built: BuiltDictionary, content_hash: str) -> Path:
        """Store ``built`` under ``content_hash``; returns the entry path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(content_hash)
        scratch = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        save_artifact(built, scratch, content_hash=content_hash)
        scratch.replace(path)
        get_default_registry().counter("store.cache_stores").inc()
        return path
