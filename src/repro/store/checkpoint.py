"""Versioned build checkpoints: resumable restart loops (``RFDC``).

An ITC-99-scale same/different build is minutes of restart folding; a
killed process used to mean starting over.  This module gives the build
a durable cursor: after each folded restart (throttled by ``every``) the
exact :class:`~repro.parallel.scheduler.RestartFold` state — restart
cursor, stale streak, best baselines, and a partition snapshot of the
best assignment — is written atomically next to the build cache, and
``repro.api.build(checkpoint_dir=..., resume=True)`` restores it before
the first restart runs.  Because every restart's test order is a pure
function of ``(seed, restart_index)`` and restarts fold in index order,
``calls_made`` *is* the seed-stream position: a resumed build replays
the identical remaining restarts and produces the identical artifact.

File layout mirrors the ``RFDA`` artifact (all integers big-endian)::

    offset 0   magic          b"RFDC"
    offset 4   format version u16 (currently 1)
    offset 6   content hash   32 raw bytes (the bound RFDA build key)
    offset 38  body checksum  32 raw bytes (sha256 of everything after)
    offset 70  header length  u32
    offset 74  header         JSON (utf-8) — the whole checkpoint state

The *content hash* is the same input-derived key the build cache uses
(:func:`~repro.store.artifact.build_inputs_hash` /
:func:`~repro.store.artifact.table_content_hash`), so a checkpoint can
never be resumed against different build inputs: the file name is
``<hash>.rfdc`` and the preamble repeats the hash, checked on load.
Truncation or bit flips fail the body checksum with a strict
:class:`CheckpointError` subclass; a header whose partition snapshot
disagrees with its own pair counts is rejected the same way.

Metrics: ``build.checkpoint_saves`` / ``build.checkpoint_resumes``
counters, ``build.checkpoint_seconds`` timer, ``build.checkpoint_bytes``
gauge.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..obs import get_default_registry
from ..partition import FaultPartition, total_pairs
from ..sim.responses import ResponseTable, Signature

MAGIC = b"RFDC"
FORMAT_VERSION = 1

#: magic, format version, content hash, body checksum — the RFDA preamble.
_PREAMBLE = struct.Struct(">4sH32s32s")
_HEADER_LEN = struct.Struct(">I")


class CheckpointError(ValueError):
    """Base of every checkpoint validation failure."""


class CheckpointFormatError(CheckpointError):
    """The file is not a well-formed checkpoint (magic, truncation, corruption)."""


class CheckpointVersionError(CheckpointError):
    """The checkpoint uses a format version this code does not speak."""


class CheckpointHashError(CheckpointError):
    """The checkpoint is bound to different build inputs than expected."""


@dataclass
class CheckpointState:
    """One restart-fold position, with its provenance and partition snapshot."""

    #: Build phase the cursor points into (only the restart loop
    #: checkpoints today; Procedure 2 is deterministic given its input
    #: and simply re-runs after a resume).
    phase: str
    kind: str
    #: The config portion of the build key (seed, calls1, lower,
    #: procedure2) — informational; binding is via the content hash.
    build: Dict[str, object]
    n_faults: int
    n_tests: int
    #: Restarts folded so far == the next restart index == the
    #: seed-stream position.
    calls_made: int
    stale: int
    best_distinguished: int
    best_baselines: List[Signature]
    #: ``FaultPartition.to_doc`` of the best assignment's refinement —
    #: the class-based pair state, checked against
    #: ``best_distinguished`` on load.
    partition: Dict[str, object] = field(default_factory=dict)


def _canonical(doc: object) -> bytes:
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


def save_checkpoint(
    state: CheckpointState, path: Union[str, Path], content_hash: str
) -> int:
    """Atomically write ``state`` to ``path``; returns the bytes written.

    Write-to-temp plus :func:`os.replace` — a build killed mid-save
    (SIGKILL included) leaves either the previous complete checkpoint or
    the new one, never a torn file.
    """
    header = {
        "phase": state.phase,
        "kind": state.kind,
        "build": state.build,
        "n_faults": state.n_faults,
        "n_tests": state.n_tests,
        "calls_made": state.calls_made,
        "stale": state.stale,
        "best_distinguished": state.best_distinguished,
        "best_baselines": [list(b) for b in state.best_baselines],
        "partition": state.partition,
    }
    header_bytes = _canonical(header)
    body = _HEADER_LEN.pack(len(header_bytes)) + header_bytes
    blob = (
        _PREAMBLE.pack(
            MAGIC,
            FORMAT_VERSION,
            bytes.fromhex(content_hash),
            hashlib.sha256(body).digest(),
        )
        + body
    )
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_bytes(blob)
    os.replace(tmp, target)
    return len(blob)


def load_checkpoint(
    path: Union[str, Path], expected_hash: Optional[str] = None
) -> CheckpointState:
    """Read and validate one checkpoint; strict errors, never garbage.

    ``expected_hash`` (hex) binds the load to specific build inputs —
    a mismatch raises :class:`CheckpointHashError`.  The header's
    partition snapshot must reproduce ``best_distinguished`` from its
    class sizes alone or the file is rejected as inconsistent.
    """
    blob = Path(path).read_bytes()
    if len(blob) < _PREAMBLE.size + _HEADER_LEN.size:
        raise CheckpointFormatError(f"checkpoint truncated: {len(blob)} bytes")
    magic, version, stored_hash, checksum = _PREAMBLE.unpack_from(blob)
    if magic != MAGIC:
        raise CheckpointFormatError(f"bad checkpoint magic {magic!r}")
    if version != FORMAT_VERSION:
        raise CheckpointVersionError(
            f"checkpoint format version {version} not supported "
            f"(expected {FORMAT_VERSION})"
        )
    body = blob[_PREAMBLE.size:]
    if hashlib.sha256(body).digest() != checksum:
        raise CheckpointFormatError("checkpoint body checksum mismatch")
    if expected_hash is not None and stored_hash != bytes.fromhex(expected_hash):
        raise CheckpointHashError(
            f"checkpoint bound to content hash {stored_hash.hex()}, "
            f"expected {expected_hash}"
        )
    (header_len,) = _HEADER_LEN.unpack_from(body)
    header = json.loads(body[_HEADER_LEN.size:_HEADER_LEN.size + header_len])
    state = CheckpointState(
        phase=header["phase"],
        kind=header["kind"],
        build=header["build"],
        n_faults=header["n_faults"],
        n_tests=header["n_tests"],
        calls_made=header["calls_made"],
        stale=header["stale"],
        best_distinguished=header["best_distinguished"],
        best_baselines=[tuple(b) for b in header["best_baselines"]],
        partition=header["partition"],
    )
    if len(state.best_baselines) != state.n_tests:
        raise CheckpointFormatError(
            f"checkpoint has {len(state.best_baselines)} baselines "
            f"for {state.n_tests} tests"
        )
    snapshot = FaultPartition.from_doc(state.partition)
    expected = total_pairs(state.n_faults) - state.best_distinguished
    if snapshot.n_indices != state.n_faults:
        raise CheckpointFormatError(
            f"partition snapshot covers {snapshot.n_indices} faults, "
            f"table has {state.n_faults}"
        )
    if snapshot.indistinguished() != expected:
        raise CheckpointFormatError(
            f"partition snapshot counts {snapshot.indistinguished()} "
            f"indistinguished pairs, fold state implies {expected}"
        )
    return state


class CheckpointManager:
    """Keys checkpoints by build content hash under one directory.

    ``every`` throttles how often a session writes: a snapshot lands
    after every ``every``-th folded restart (and always on the final
    one), so big builds are not serialising a partition per restart.
    """

    def __init__(self, root: Union[str, Path], every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"checkpoint every must be >= 1, got {every}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.every = every

    def path_for(self, content_hash: str) -> Path:
        return self.root / f"{content_hash}.rfdc"

    def session(
        self,
        content_hash: str,
        *,
        kind: str,
        config,
        resume: bool = False,
    ) -> "CheckpointSession":
        return CheckpointSession(
            self.path_for(content_hash),
            content_hash,
            kind=kind,
            config=config,
            every=self.every,
            resume=resume,
        )


class CheckpointSession:
    """One build's checkpoint lifecycle: restore, observe, complete.

    Constructed by :class:`CheckpointManager`; :mod:`repro.api` hands it
    to the build engine, which calls :meth:`bind` once the table is
    known, :meth:`restore_into` on the restart fold, and hangs
    :meth:`on_fold` off the fold's observer hook.  :meth:`complete`
    removes the file once the artifact exists — a finished build leaves
    no cursor behind.
    """

    def __init__(
        self,
        path: Path,
        content_hash: str,
        *,
        kind: str,
        config,
        every: int = 1,
        resume: bool = False,
    ) -> None:
        self.path = Path(path)
        self.content_hash = content_hash
        self.kind = kind
        self.build = {
            "seed": config.seed,
            "calls1": config.calls1,
            "lower": config.lower,
            "procedure2": config.procedure2,
        }
        self.every = every
        self.table: Optional[ResponseTable] = None
        self._last_saved = 0
        #: Loaded (and validated) state of a previous killed build;
        #: ``None`` when starting fresh.
        self.resume_state: Optional[CheckpointState] = None
        if resume and self.path.exists():
            self.resume_state = load_checkpoint(self.path, self.content_hash)

    def bind(self, table: ResponseTable) -> None:
        """Attach the response table (for partition snapshots) and
        cross-check any resume state against its dimensions."""
        state = self.resume_state
        if state is not None and (
            state.n_faults != table.n_faults or state.n_tests != table.n_tests
        ):
            raise CheckpointHashError(
                f"checkpoint is for a {state.n_faults}x{state.n_tests} table, "
                f"build has {table.n_faults}x{table.n_tests}"
            )
        self.table = table

    def restore_into(self, fold) -> bool:
        """Install the resume state into a fresh restart fold.

        Returns ``True`` when a killed build's position was restored
        (the caller starts at restart ``fold.calls_made``), ``False``
        when there was nothing to resume.
        """
        state = self.resume_state
        if state is None:
            return False
        fold.restore(
            calls_made=state.calls_made,
            stale=state.stale,
            best_distinguished=state.best_distinguished,
            best_baselines=state.best_baselines,
        )
        self._last_saved = state.calls_made
        get_default_registry().counter("build.checkpoint_resumes").inc()
        return True

    def on_fold(self, fold) -> None:
        """Observer for :class:`~repro.parallel.scheduler.RestartFold`.

        Writes a snapshot every ``every`` folded restarts and always on
        the final one (so a kill during Procedure 2 resumes with the
        complete Procedure 1 state and only replays the deterministic
        hill-climb).
        """
        if self.table is None:
            return
        due = (fold.calls_made - self._last_saved) >= self.every
        if not due and not fold.done:
            return
        from ..dictionaries.samediff import _partition_under

        registry = get_default_registry()
        with registry.timer("build.checkpoint_seconds").time():
            snapshot = _partition_under(self.table, fold.best_baselines)
            state = CheckpointState(
                phase="procedure1",
                kind=self.kind,
                build=self.build,
                n_faults=self.table.n_faults,
                n_tests=self.table.n_tests,
                calls_made=fold.calls_made,
                stale=fold.stale,
                best_distinguished=fold.best_distinguished,
                best_baselines=list(fold.best_baselines),
                partition=snapshot.to_doc(),
            )
            written = save_checkpoint(state, self.path, self.content_hash)
        self._last_saved = fold.calls_made
        registry.counter("build.checkpoint_saves").inc()
        registry.gauge("build.checkpoint_bytes").set(written)

    def complete(self) -> None:
        """Remove the checkpoint — the build reached its artifact."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
