"""Kill/resume determinism of checkpointed builds through the facade.

The contract: a build interrupted after any folded restart and resumed
from its RFDC checkpoint produces the *identical* dictionary — same
semantic digest, same report counts — as the uninterrupted build, and
leaves no checkpoint file behind once it completes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import DictionaryConfig, build
from repro.obs import scoped_registry
from repro.store import semantic_digest
from tests.util import distinct_table, random_table

CONFIG_KW = dict(seed=0, calls1=5)


class Stop(RuntimeError):
    """Stands in for SIGKILL: aborts the build mid-restart-loop."""


class Interrupter:
    """Progress reporter that raises after ``after`` folded restarts.

    The fold's observer (the checkpoint layer) runs *before* progress is
    reported, so anything this reporter sees is already durable — which
    is exactly the kill-window the subprocess SIGKILL benchmark hits.
    """

    def __init__(self, after: int) -> None:
        self.after = after

    def report(self, stage, done, total=None, **info):
        if stage == "build.procedure1" and done >= self.after:
            raise Stop(f"interrupted after restart {done}")


def checkpoint_files(directory) -> list:
    return sorted(Path(directory).glob("*.rfdc"))


@pytest.fixture()
def table():
    # Few tests + high detection density => pass/fail rows collide, the
    # floor is far below the ceiling, and the build runs real restarts.
    return random_table(50, 7, 3, seed=2, density=0.8)


def build_reference(table):
    with scoped_registry():
        return build(table, config=DictionaryConfig(**CONFIG_KW))


class TestResumeDeterminism:
    def test_resume_requires_checkpoint_dir(self, table):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            build(table, config=DictionaryConfig(**CONFIG_KW), resume=True)

    @pytest.mark.parametrize("after", [1, 2, 3])
    def test_killed_then_resumed_build_is_identical(self, table, tmp_path, after):
        reference = build_reference(table)
        with scoped_registry():
            with pytest.raises(Stop):
                build(
                    table,
                    config=DictionaryConfig(**CONFIG_KW),
                    checkpoint_dir=tmp_path,
                    progress=Interrupter(after),
                )
        assert len(checkpoint_files(tmp_path)) == 1, "kill left no cursor"
        with scoped_registry() as registry:
            resumed = build(
                table,
                config=DictionaryConfig(**CONFIG_KW),
                checkpoint_dir=tmp_path,
                resume=True,
            )
            snapshot = registry.snapshot()
        assert snapshot["counters"]["build.checkpoint_resumes"] == 1
        assert semantic_digest(resumed) == semantic_digest(reference)
        assert resumed.report.procedure1_calls == reference.report.procedure1_calls
        assert (
            resumed.report.classes_after_procedure2
            == reference.report.classes_after_procedure2
        )
        assert not checkpoint_files(tmp_path), "completion removes the cursor"

    def test_resume_into_parallel_build_is_identical(self, table, tmp_path):
        reference = build_reference(table)
        with scoped_registry():
            with pytest.raises(Stop):
                build(
                    table,
                    config=DictionaryConfig(**CONFIG_KW),
                    checkpoint_dir=tmp_path,
                    progress=Interrupter(2),
                )
        with scoped_registry():
            resumed = build(
                table,
                config=DictionaryConfig(jobs=2, **CONFIG_KW),
                checkpoint_dir=tmp_path,
                resume=True,
            )
        assert semantic_digest(resumed) == semantic_digest(reference)

    def test_uninterrupted_checkpointed_build_matches_plain(self, table, tmp_path):
        reference = build_reference(table)
        with scoped_registry():
            checkpointed = build(
                table,
                config=DictionaryConfig(**CONFIG_KW),
                checkpoint_dir=tmp_path,
            )
        assert semantic_digest(checkpointed) == semantic_digest(reference)
        assert not checkpoint_files(tmp_path)

    def test_checkpoint_every_throttles_io_but_not_results(self, table, tmp_path):
        reference = build_reference(table)
        with scoped_registry() as registry:
            throttled = build(
                table,
                config=DictionaryConfig(**CONFIG_KW),
                checkpoint_dir=tmp_path,
                checkpoint_every=3,
            )
            saves = registry.snapshot()["counters"]["build.checkpoint_saves"]
        assert semantic_digest(throttled) == semantic_digest(reference)
        assert 0 < saves <= (reference.report.procedure1_calls // 3) + 1

    def test_ceiling_table_writes_no_checkpoints(self, tmp_path):
        # Every pair is distinguished by pass/fail alone: the fold is
        # done at construction, zero restarts run, nothing is written.
        table = distinct_table(8, 3)
        with scoped_registry():
            build(
                table,
                config=DictionaryConfig(**CONFIG_KW),
                checkpoint_dir=tmp_path,
            )
        assert not checkpoint_files(tmp_path)


class TestGoldenCellResume:
    """The golden Table-6 cell must survive a kill/resume bit for bit."""

    def test_golden_cell_after_kill_and_resume(self, tmp_path):
        from repro.experiments import table6_row

        golden_path = (
            Path(__file__).parent.parent
            / "experiments"
            / "golden"
            / "table6_small.json"
        )
        golden = json.loads(golden_path.read_text())["rows"][0]
        assert (golden["circuit"], golden["test_type"]) == ("p208", "diag")
        with scoped_registry():
            with pytest.raises(Stop):
                table6_row(
                    "p208",
                    "diag",
                    seed=0,
                    calls=5,
                    checkpoint_dir=tmp_path,
                    progress=Interrupter(1),
                )
        assert len(checkpoint_files(tmp_path)) == 1
        with scoped_registry():
            row = table6_row(
                "p208",
                "diag",
                seed=0,
                calls=5,
                checkpoint_dir=tmp_path,
                resume=True,
            )
        assert row.indist_sd_random == golden["indist_sd_random"]
        assert row.indist_sd_replace == golden["indist_sd_replace"]
        assert row.build.procedure1_calls == golden["procedure1_calls"]
        assert not checkpoint_files(tmp_path)
