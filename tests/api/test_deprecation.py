"""The legacy loose-kwarg entry points must warn (and only then).

The repo-wide pytest filter turns this specific warning into an error, so
any first-party caller that regresses to the old shapes fails loudly;
these tests assert the warning itself via ``pytest.warns`` (which still
works under an error filter).
"""

import warnings

import pytest

from repro.api import DictionaryConfig
from repro.dictionaries import (
    build_same_different,
    replace_baselines,
    select_baselines,
)
from tests.util import random_table


@pytest.fixture()
def table():
    return random_table(10, 5, 2, seed=11)


class TestWarnsOnLooseKwargs:
    def test_build_same_different_calls(self, table):
        with pytest.warns(DeprecationWarning, match="repro.api.build"):
            build_same_different(table, calls=2)

    def test_build_same_different_every_loose_kwarg(self, table):
        for kwargs in (
            {"lower": 5},
            {"calls": 2},
            {"replace": False},
            {"seed": 3},
            {"jobs": 1},
        ):
            with pytest.warns(DeprecationWarning, match="repro.api.build"):
                build_same_different(table, **kwargs)

    def test_select_baselines_lower(self, table):
        with pytest.warns(DeprecationWarning, match="repro.api.build"):
            select_baselines(table, lower=5)

    def test_replace_baselines_max_passes(self, table):
        baselines, _, _ = select_baselines(table)
        with pytest.warns(DeprecationWarning, match="repro.api.build"):
            replace_baselines(table, baselines, max_passes=1)

    def test_warning_names_the_kwargs(self, table):
        with pytest.warns(DeprecationWarning, match="calls, seed"):
            build_same_different(table, calls=2, seed=1)


class TestSilentModernShapes:
    def _assert_no_deprecation(self, fn):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fn()
        assert not [w for w in caught if w.category is DeprecationWarning]

    def test_bare_calls_do_not_warn(self, table):
        self._assert_no_deprecation(lambda: build_same_different(table))
        self._assert_no_deprecation(lambda: select_baselines(table))
        baselines, _, _ = select_baselines(table)
        self._assert_no_deprecation(lambda: replace_baselines(table, baselines))

    def test_config_shapes_do_not_warn(self, table):
        config = DictionaryConfig(calls1=2)
        self._assert_no_deprecation(
            lambda: build_same_different(table, config=config)
        )
        self._assert_no_deprecation(
            lambda: select_baselines(table, config=DictionaryConfig(lower=5))
        )
        baselines, _, _ = select_baselines(table)
        # max_passes is positional tuning for Procedure 2 experiments;
        # paired with an explicit config it is the sanctioned spelling.
        self._assert_no_deprecation(
            lambda: replace_baselines(
                table, baselines, max_passes=1, config=DictionaryConfig()
            )
        )


class TestConfigConflicts:
    def test_build_same_different_conflict(self, table):
        with pytest.raises(ValueError, match="DictionaryConfig"):
            build_same_different(table, calls=2, config=DictionaryConfig())

    def test_select_baselines_conflict(self, table):
        with pytest.raises(ValueError, match="DictionaryConfig"):
            select_baselines(table, lower=5, config=DictionaryConfig())


class TestServeDeprecation:
    """``repro.api.serve()`` joined the config-first migration in PR 8."""

    def test_loose_kwargs_warn_and_still_work(self):
        from repro.api import serve

        with pytest.warns(DeprecationWarning, match="repro.api.serve"):
            server = serve(deadline_ms=250.0, workers=2, pool_size=3)
        assert server.config.deadline_ms == 250.0
        assert server.config.workers == 2
        assert server.config.pool_size == 3

    def test_every_legacy_kwarg_maps_onto_the_config(self):
        from repro.api import serve

        with pytest.warns(DeprecationWarning, match="ServeConfig"):
            server = serve(
                pool_size=2, workers=3, deadline_ms=9.0,
                max_retries=1, retry_backoff_ms=4.0, limit=7,
            )
        config = server.config
        assert (config.pool_size, config.workers, config.deadline_ms) == (2, 3, 9.0)
        assert (config.max_retries, config.retry_backoff_ms, config.limit) == (1, 4.0, 7)

    def test_config_shape_does_not_warn(self):
        from repro.api import serve
        from repro.serve import ServeConfig

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            server = serve(config=ServeConfig(workers=2))
        assert server.config.workers == 2

    def test_bare_call_does_not_warn(self):
        from repro.api import serve

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            serve()

    def test_conflict_raises(self):
        from repro.api import serve
        from repro.serve import ServeConfig

        with pytest.raises(ValueError, match="config= or the legacy"):
            serve(config=ServeConfig(), workers=2)

    def test_unknown_kwarg_raises_type_error(self):
        from repro.api import serve

        with pytest.raises(TypeError, match="unexpected keyword"):
            serve(timeout_ms=5)


class TestServeDaemonFacade:
    """``repro.api.serve_daemon()`` is config-first from day one."""

    def test_assembles_a_daemon_from_fields(self):
        from repro.api import serve_daemon
        from repro.serve import ServeConfig

        daemon = serve_daemon(
            "a.rfd", serve_config=ServeConfig(workers=2),
            port=0, max_inflight=4,
        )
        assert daemon.config.max_inflight == 4
        assert daemon.config.default_artifact == "a.rfd"
        assert daemon.server.config.workers == 2
        assert daemon.state == "idle"

    def test_full_config_excludes_the_field_shape(self):
        from repro.api import serve_daemon
        from repro.serve.daemon import DaemonConfig

        daemon = serve_daemon(config=DaemonConfig(port=0))
        assert daemon.config.port == 0
        with pytest.raises(ValueError, match="full config="):
            serve_daemon("a.rfd", config=DaemonConfig(port=0))
