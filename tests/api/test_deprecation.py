"""The legacy loose-kwarg entry points must warn (and only then).

The repo-wide pytest filter turns this specific warning into an error, so
any first-party caller that regresses to the old shapes fails loudly;
these tests assert the warning itself via ``pytest.warns`` (which still
works under an error filter).
"""

import warnings

import pytest

from repro.api import DictionaryConfig
from repro.dictionaries import (
    build_same_different,
    replace_baselines,
    select_baselines,
)
from tests.util import random_table


@pytest.fixture()
def table():
    return random_table(10, 5, 2, seed=11)


class TestWarnsOnLooseKwargs:
    def test_build_same_different_calls(self, table):
        with pytest.warns(DeprecationWarning, match="repro.api.build"):
            build_same_different(table, calls=2)

    def test_build_same_different_every_loose_kwarg(self, table):
        for kwargs in (
            {"lower": 5},
            {"calls": 2},
            {"replace": False},
            {"seed": 3},
            {"jobs": 1},
        ):
            with pytest.warns(DeprecationWarning, match="repro.api.build"):
                build_same_different(table, **kwargs)

    def test_select_baselines_lower(self, table):
        with pytest.warns(DeprecationWarning, match="repro.api.build"):
            select_baselines(table, lower=5)

    def test_replace_baselines_max_passes(self, table):
        baselines, _, _ = select_baselines(table)
        with pytest.warns(DeprecationWarning, match="repro.api.build"):
            replace_baselines(table, baselines, max_passes=1)

    def test_warning_names_the_kwargs(self, table):
        with pytest.warns(DeprecationWarning, match="calls, seed"):
            build_same_different(table, calls=2, seed=1)


class TestSilentModernShapes:
    def _assert_no_deprecation(self, fn):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fn()
        assert not [w for w in caught if w.category is DeprecationWarning]

    def test_bare_calls_do_not_warn(self, table):
        self._assert_no_deprecation(lambda: build_same_different(table))
        self._assert_no_deprecation(lambda: select_baselines(table))
        baselines, _, _ = select_baselines(table)
        self._assert_no_deprecation(lambda: replace_baselines(table, baselines))

    def test_config_shapes_do_not_warn(self, table):
        config = DictionaryConfig(calls1=2)
        self._assert_no_deprecation(
            lambda: build_same_different(table, config=config)
        )
        self._assert_no_deprecation(
            lambda: select_baselines(table, config=DictionaryConfig(lower=5))
        )
        baselines, _, _ = select_baselines(table)
        # max_passes is positional tuning for Procedure 2 experiments;
        # paired with an explicit config it is the sanctioned spelling.
        self._assert_no_deprecation(
            lambda: replace_baselines(
                table, baselines, max_passes=1, config=DictionaryConfig()
            )
        )


class TestConfigConflicts:
    def test_build_same_different_conflict(self, table):
        with pytest.raises(ValueError, match="DictionaryConfig"):
            build_same_different(table, calls=2, config=DictionaryConfig())

    def test_select_baselines_conflict(self, table):
        with pytest.raises(ValueError, match="DictionaryConfig"):
            select_baselines(table, lower=5, config=DictionaryConfig())
