"""Tests for the ``repro.api.build`` facade."""

import pytest

from repro.api import KINDS, BuiltDictionary, DictionaryConfig, build
from repro.dictionaries import FullDictionary, PassFailDictionary
from repro.sim import ResponseTable, TestSet
from tests.util import random_table


class TestInputForms:
    def test_table_form(self):
        table = random_table(8, 5, 2, seed=1)
        built = build(table, config=DictionaryConfig(calls1=2))
        assert isinstance(built, BuiltDictionary)
        assert built.table is table
        assert built.kind == "same-different"
        assert built.report is not None
        assert built.dictionary.indistinguished_pairs() == (
            built.report.indistinguished_procedure2
        )

    def test_netlist_triple_form(self, s27_scan, s27_faults):
        tests = TestSet.random(s27_scan.inputs, 10, seed=4)
        built = build(
            netlist=s27_scan,
            faults=s27_faults,
            tests=tests,
            config=DictionaryConfig(calls1=2),
        )
        # The triple form fault-simulates internally; the result must be
        # identical to pre-building the table.
        table = ResponseTable.build(s27_scan, s27_faults, tests)
        direct = build(table, config=DictionaryConfig(calls1=2))
        assert built.dictionary.baselines == direct.dictionary.baselines
        assert built.table.n_faults == table.n_faults

    def test_neither_form_rejected(self):
        with pytest.raises(ValueError, match="either table="):
            build()

    def test_both_forms_rejected(self, s27_scan, s27_faults):
        table = random_table(4, 3, 2, seed=2)
        with pytest.raises(ValueError, match="not both"):
            build(table, netlist=s27_scan)

    def test_partial_triple_rejected(self, s27_scan):
        with pytest.raises(ValueError):
            build(netlist=s27_scan)


class TestKinds:
    def test_kinds_tuple_is_the_contract(self):
        assert KINDS == ("same-different", "pass-fail", "full")

    def test_pass_fail(self):
        table = random_table(8, 5, 2, seed=3)
        built = build(table, kind="pass-fail")
        assert isinstance(built.dictionary, PassFailDictionary)
        assert built.report is None
        assert built.config == DictionaryConfig()

    def test_full(self):
        table = random_table(8, 5, 2, seed=3)
        built = build(table, kind="full")
        assert isinstance(built.dictionary, FullDictionary)
        assert built.report is None

    def test_unknown_kind_rejected(self):
        table = random_table(4, 3, 2, seed=5)
        with pytest.raises(ValueError, match="unknown dictionary kind"):
            build(table, kind="fuzzy")

    def test_resolution_chain_across_kinds(self):
        table = random_table(12, 6, 2, seed=6)
        by_kind = {
            kind: build(table, kind=kind, config=DictionaryConfig(calls1=3))
            for kind in KINDS
        }
        assert (
            by_kind["full"].dictionary.indistinguished_pairs()
            <= by_kind["same-different"].dictionary.indistinguished_pairs()
            <= by_kind["pass-fail"].dictionary.indistinguished_pairs()
        )


class TestConfig:
    def test_config_is_frozen(self):
        config = DictionaryConfig()
        with pytest.raises(Exception):
            config.calls1 = 7

    def test_defaults_are_the_papers(self):
        config = DictionaryConfig()
        assert (config.seed, config.calls1, config.lower) == (0, 100, 10)
        assert (config.jobs, config.procedure2, config.backend) == (1, True, None)

    def test_backend_selection_flows_through(self):
        table = random_table(10, 5, 2, seed=7)
        a = build(table, config=DictionaryConfig(calls1=2, backend="naive"))
        b = build(table, config=DictionaryConfig(calls1=2, backend="packed"))
        assert a.dictionary.baselines == b.dictionary.baselines

    def test_invalid_calls_and_jobs_rejected(self):
        table = random_table(6, 4, 2, seed=8)
        with pytest.raises(ValueError, match="CALLS1"):
            build(table, config=DictionaryConfig(calls1=0))
        with pytest.raises(ValueError, match="jobs"):
            build(table, config=DictionaryConfig(jobs=0))
