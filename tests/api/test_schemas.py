"""Schema-versioned ``as_dict`` exports of the two report types."""

import json

import pytest

from repro.diagnosis.evaluate import CampaignResult
from repro.dictionaries import BuildReport


class TestBuildReportSchemas:
    def _report(self):
        return BuildReport(
            n_faults=5,
            distinguished_procedure1=7,
            distinguished_procedure2=9,
            procedure1_calls=3,
            replacements=1,
        )

    def test_schema_3_is_the_default_and_marked(self):
        data = self._report().as_dict()
        assert data["schema"] == 3
        assert data == self._report().as_dict(schema=3)
        assert data["classes_after_procedure1"] == 0
        assert data["classes_after_procedure2"] == 0

    def test_schema_2_shim_drops_class_counts(self):
        report = self._report()
        legacy = report.as_dict(schema=2)
        assert legacy["schema"] == 2
        assert "classes_after_procedure1" not in legacy
        assert "classes_after_procedure2" not in legacy
        modern = report.as_dict(schema=3)
        stripped = {
            k: v
            for k, v in modern.items()
            if k not in ("classes_after_procedure1", "classes_after_procedure2")
        }
        stripped["schema"] = 2
        assert legacy == stripped

    def test_schema_1_shim_is_marker_free(self):
        report = self._report()
        legacy = report.as_dict(schema=1)
        assert "schema" not in legacy
        modern = report.as_dict(schema=2)
        assert legacy == {k: v for k, v in modern.items() if k != "schema"}

    def test_derived_counts_present_in_all(self):
        for schema in (1, 2, 3):
            data = self._report().as_dict(schema=schema)
            assert data["indistinguished_procedure1"] == 10 - 7
            assert data["indistinguished_procedure2"] == 10 - 9
            assert data["procedure2_improved"] is True
            json.dumps(data)

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            self._report().as_dict(schema=4)
        with pytest.raises(ValueError, match="schema"):
            self._report().as_dict(schema=0)


class TestCampaignResultSchemas:
    def _result(self):
        result = CampaignResult("full")
        result.injections = 4
        result.unique = 2
        result.candidate_sizes = [1, 1, 2, 3]
        result.hits_at_1 = 3
        result.hits_at_10 = 4
        return result

    def test_schema_2_marked_and_normalised_keys(self):
        data = self._result().as_dict()
        assert data["schema"] == 2
        assert data["unique_fraction"] == 0.5
        assert data["mean_candidates"] == 1.75
        assert data["top1_accuracy"] == 0.75
        assert data["top10_accuracy"] == 1.0
        json.dumps(data)

    def test_schema_1_shim(self):
        result = self._result()
        legacy = result.as_dict(schema=1)
        assert "schema" not in legacy
        modern = result.as_dict(schema=2)
        assert legacy == {k: v for k, v in modern.items() if k != "schema"}

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            self._result().as_dict(schema=9)
