"""Hand-computed size accounting on the paper's worked example.

The example of Tables 1-3 has ``n = 4`` faults, ``k = 2`` tests and
``m = 2`` outputs, so every size below is small enough to check by hand:

* plain same/different: ``k * (n + m) = 2 * 6 = 12`` bits;
* mixed storage: ``k * (n + 1)`` column+flag bits plus ``m`` bits per
  baseline that differs from the fault-free response;
* multi-baseline: every baseline column (primary or secondary) costs
  ``n + m`` bits, generalising to ``sum_j b_j * (n + m)``.
"""

from repro.dictionaries import (
    MultiBaselineDictionary,
    SameDifferentDictionary,
    add_secondary_baselines,
    select_baselines,
)
from repro.experiments.example_tables import example_table
from repro.sim import PASS


class TestSameDifferentSizes:
    def test_plain_size_is_paper_formula(self):
        table = example_table()
        baselines, _, _ = select_baselines(table)
        dictionary = SameDifferentDictionary(table, baselines)
        assert dictionary.size_bits == 2 * (4 + 2) == 12

    def test_mixed_size_with_two_stored_baselines(self):
        table = example_table()
        baselines, _, _ = select_baselines(table)
        # Procedure 1 picks 01 for t0 and 10 for t1 — neither fault-free.
        assert all(b != PASS for b in baselines)
        dictionary = SameDifferentDictionary(table, baselines)
        # 2 columns * (4 + 1 flag) + 2 stored vectors * 2 outputs.
        assert dictionary.mixed_size_bits() == 2 * 5 + 2 * 2 == 14

    def test_mixed_size_all_fault_free(self):
        table = example_table()
        dictionary = SameDifferentDictionary(table, [PASS, PASS])
        # No stored vectors at all: 2 * (4 + 1) bits.
        assert dictionary.mixed_size_bits() == 10
        assert dictionary.size_bits == 12


class TestMultiBaselineSizes:
    def test_single_baseline_matches_plain_dictionary(self):
        table = example_table()
        baselines, _, _ = select_baselines(table)
        multi = MultiBaselineDictionary(
            table, tuple((b,) for b in baselines)
        )
        assert multi.size_bits == 12

    def test_secondary_baselines_charged_like_the_first(self):
        table = example_table()
        # Explicit two-baselines-per-test construction: 2 baselines *
        # 2 tests * (4 + 2) bits, secondaries charged exactly like primaries.
        multi = MultiBaselineDictionary(
            table, (((1,), (0,)), ((1,), (0,)))
        )
        assert multi.size_bits == 2 * 2 * (4 + 2) == 24

    def test_no_secondary_added_when_resolution_is_perfect(self):
        table = example_table()
        baselines, _, _ = select_baselines(table)
        single = SameDifferentDictionary(table, baselines)
        assert single.indistinguished_pairs() == 0
        multi = add_secondary_baselines(table, single, extra_per_test=1)
        # Nothing left to split, so no test grows a second baseline and
        # the size stays at the single-baseline 12 bits.
        assert tuple(len(per_test) for per_test in multi.baselines) == (1, 1)
        assert multi.size_bits == 12

    def test_mixed_size_counts_only_non_pass_columns(self):
        table = example_table()
        multi = MultiBaselineDictionary(
            table, (((1,), PASS), ((1,), (0,)))
        )
        # 4 columns * (4 + 1 flag) + 3 stored vectors * 2 outputs.
        assert multi.size_bits == 24
        assert multi.mixed_size_bits() == 4 * 5 + 3 * 2 == 26

    def test_indistinguished_matches_brute_force(self):
        table = example_table()
        baselines, _, _ = select_baselines(table)
        single = SameDifferentDictionary(table, baselines)
        multi = add_secondary_baselines(table, single, extra_per_test=1)
        brute = sum(
            1
            for a in range(4)
            for b in range(a + 1, 4)
            if multi.row(a) == multi.row(b)
        )
        assert multi.indistinguished_pairs() == brute == 0
