"""Tests for the Tseitin CNF encoder (wide gates, constants, errors)."""

import itertools

import pytest

from repro.atpg.cnf import CnfEncoder, solve_output_one
from repro.circuit import GateType, from_gates
from repro.sim import simulate_single


def wide_gate_netlist(kind, width=4):
    inputs = [f"i{k}" for k in range(width)]
    return from_gates("wide", inputs, [("y", kind, inputs)], ["y"])


class TestWideGates:
    @pytest.mark.parametrize(
        "kind",
        [
            GateType.AND,
            GateType.NAND,
            GateType.OR,
            GateType.NOR,
            GateType.XOR,
            GateType.XNOR,
        ],
    )
    def test_encoding_matches_simulation(self, kind):
        """Every model of the CNF agrees with the simulator, exhaustively."""
        netlist = wide_gate_netlist(kind)
        for bits in itertools.product((0, 1), repeat=4):
            assignment = {f"i{k}": bits[k] for k in range(4)}
            encoder = CnfEncoder(netlist)
            assumptions = [encoder.literal(net, value) for net, value in assignment.items()]
            model = encoder.solver.solve(assumptions=assumptions)
            assert model is not None
            expected = simulate_single(netlist, assignment)["y"]
            assert model[encoder.variable["y"]] == bool(expected), (kind, bits)


class TestConstants:
    def test_const_gates(self):
        netlist = from_gates(
            "k",
            ["a"],
            [
                ("k0", GateType.CONST0, []),
                ("k1", GateType.CONST1, []),
                ("y", GateType.AND, ["a", "k1"]),
                ("z", GateType.OR, ["a", "k0"]),
            ],
            ["y", "z"],
        )
        encoder = CnfEncoder(netlist)
        model = encoder.solver.solve(assumptions=[encoder.literal("a", 1)])
        assert model[encoder.variable["k0"]] is False
        assert model[encoder.variable["k1"]] is True
        assert model[encoder.variable["y"]] is True


class TestErrors:
    def test_dff_rejected(self, s27):
        with pytest.raises(ValueError):
            CnfEncoder(s27)

    def test_shared_solver_variable_spaces_disjoint(self, c17):
        from repro.atpg.sat import Solver

        solver = Solver()
        first = CnfEncoder(c17, solver)
        second = CnfEncoder(c17, solver)
        overlap = set(first.variable.values()) & set(second.variable.values())
        assert not overlap
        # Both copies are independently constrainable.
        solver.add_clause([first.literal("22", 1)])
        solver.add_clause([second.literal("22", 0)])
        assert solver.solve() is not None


class TestSolveOutputOne:
    def test_every_c17_net_settable_or_proven(self, c17):
        """c17 has no stuck nets: every net can be set to 1 somehow."""
        for net in list(c17.gates):
            if c17.gates[net].gate_type is GateType.INPUT:
                continue
            netlist = c17.copy()
            if net not in netlist.outputs:
                netlist.add_output(net)
            vector = solve_output_one(netlist, net)
            assert vector is not None, net
            assert simulate_single(netlist, vector)[net] == 1
