"""Tests for detection test set generation and compaction."""

import pytest

from repro.atpg import compact_detection_tests, generate_detection_tests
from repro.circuit import full_scan, generate_netlist
from repro.faults import collapse
from repro.sim import FaultSimulator, TestSet
from tests.conftest import tiny_spec


class TestGeneration:
    def test_full_coverage_on_s27(self, s27_scan, s27_faults):
        tests, report = generate_detection_tests(s27_scan, s27_faults, seed=0)
        assert report.coverage == 1.0
        assert report.fault_efficiency == 1.0
        simulator = FaultSimulator(s27_scan, tests)
        assert simulator.coverage(s27_faults) == 1.0

    def test_c17(self, c17, c17_faults):
        tests, report = generate_detection_tests(c17, c17_faults, seed=0)
        assert report.coverage == 1.0
        assert len(tests) <= 10  # c17 has a tiny complete test set

    def test_classification_is_complete(self, c17, c17_faults):
        _, report = generate_detection_tests(c17, c17_faults, seed=1)
        classified = len(report.detected) + len(report.untestable) + len(report.aborted)
        assert classified == len(c17_faults)

    @pytest.mark.parametrize("seed", range(2))
    def test_random_circuit_efficiency(self, seed):
        netlist, _ = full_scan(generate_netlist(tiny_spec(seed + 300, gates=30)))
        faults = collapse(netlist)
        tests, report = generate_detection_tests(netlist, faults, seed=seed)
        # Small circuits should be fully classified (no aborts).
        assert report.fault_efficiency == 1.0
        simulator = FaultSimulator(netlist, tests)
        for fault in report.detected:
            assert simulator.detection_word(fault), str(fault)
        exhaustive = FaultSimulator(netlist, TestSet.exhaustive(netlist.inputs))
        for fault in report.untestable:
            assert exhaustive.detection_word(fault) == 0, str(fault)

    def test_deterministic(self, s27_scan, s27_faults):
        a, _ = generate_detection_tests(s27_scan, s27_faults, seed=42)
        b, _ = generate_detection_tests(s27_scan, s27_faults, seed=42)
        assert a == b

    def test_no_duplicate_tests(self, s27_scan, s27_faults):
        tests, _ = generate_detection_tests(s27_scan, s27_faults, seed=3)
        assert len(set(tests)) == len(tests)

    def test_empty_fault_list(self, c17):
        tests, report = generate_detection_tests(c17, [], seed=0)
        assert len(tests) == 0
        assert report.coverage == 1.0


class TestCompaction:
    def test_preserves_detection(self, s27_scan, s27_faults):
        tests, report = generate_detection_tests(
            s27_scan, s27_faults, seed=5, compact=False
        )
        padded = TestSet(s27_scan.inputs, list(tests) + list(tests))
        compacted = compact_detection_tests(s27_scan, padded, report.detected)
        assert len(compacted) <= len(tests)
        simulator = FaultSimulator(s27_scan, compacted)
        for fault in report.detected:
            assert simulator.detection_word(fault), str(fault)

    def test_empty_test_set(self, s27_scan):
        empty = TestSet(s27_scan.inputs)
        assert len(compact_detection_tests(s27_scan, empty, [])) == 0

    def test_never_grows(self, c17, c17_faults):
        tests = TestSet.random(c17.inputs, 40, seed=9)
        simulator = FaultSimulator(c17, tests)
        detected = simulator.detected_faults(c17_faults)
        compacted = compact_detection_tests(c17, tests, detected)
        assert len(compacted) <= len(tests)
