"""Tests for diagnostic test set generation."""

import pytest

from repro.atpg import generate_diagnostic_tests, response_classes
from repro.circuit import full_scan, generate_netlist
from repro.faults import collapse
from repro.sim import ResponseTable, TestSet
from tests.conftest import tiny_spec


class TestS27:
    def test_reaches_exhaustive_resolution(self, s27_scan, s27_faults):
        """Pairs left together must be exactly the exhaustively equivalent ones."""
        tests, report = generate_diagnostic_tests(
            s27_scan, s27_faults, seed=1, miter_backtrack_limit=5000
        )
        assert not report.aborted_pairs
        achieved = response_classes(s27_scan, s27_faults, tests)
        exhaustive = response_classes(
            s27_scan, s27_faults, TestSet.exhaustive(s27_scan.inputs)
        )
        key = lambda classes: sorted(tuple(sorted(c)) for c in classes)
        assert key(achieved) == key(exhaustive)

    def test_equivalent_pairs_reported(self, s27_scan, s27_faults):
        _, report = generate_diagnostic_tests(
            s27_scan, s27_faults, seed=1, miter_backtrack_limit=5000
        )
        exhaustive = response_classes(
            s27_scan, s27_faults, TestSet.exhaustive(s27_scan.inputs)
        )
        expected_pairs = sum(len(c) - 1 for c in exhaustive if len(c) > 1)
        assert len(report.equivalent_pairs) >= expected_pairs


class TestRandomCircuits:
    @pytest.mark.parametrize("seed", range(2))
    def test_only_settled_pairs_remain(self, seed):
        netlist, _ = full_scan(generate_netlist(tiny_spec(seed + 400, gates=25)))
        faults = collapse(netlist)
        tests, report = generate_diagnostic_tests(
            netlist, faults, seed=seed, miter_backtrack_limit=4000
        )
        detected = set(report.generation.detected)
        targets = [f for f in faults if f in detected]
        classes = response_classes(netlist, targets, tests)
        settled = {
            frozenset(pair)
            for pair in report.equivalent_pairs + report.aborted_pairs
        }
        for members in classes:
            for left, right in zip(members, members[1:]):
                assert frozenset((targets[left], targets[right])) in settled


class TestResponseClasses:
    def test_empty_test_set_single_class(self, s27_faults, s27_scan):
        classes = response_classes(s27_scan, s27_faults, TestSet(s27_scan.inputs))
        assert classes == [list(range(len(s27_faults)))]

    def test_classes_partition(self, s27_scan, s27_faults):
        tests = TestSet.random(s27_scan.inputs, 8, seed=0)
        classes = response_classes(s27_scan, s27_faults, tests)
        flat = sorted(i for members in classes for i in members)
        assert flat == list(range(len(s27_faults)))

    def test_same_class_means_same_rows(self, s27_scan, s27_faults):
        tests = TestSet.random(s27_scan.inputs, 8, seed=0)
        table = ResponseTable.build(s27_scan, s27_faults, tests)
        for members in response_classes(s27_scan, s27_faults, tests):
            rows = {table.full_row(i) for i in members}
            assert len(rows) == 1


def test_deterministic(s27_scan, s27_faults):
    a, _ = generate_diagnostic_tests(s27_scan, s27_faults, seed=9)
    b, _ = generate_diagnostic_tests(s27_scan, s27_faults, seed=9)
    assert a == b
