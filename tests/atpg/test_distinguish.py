"""Tests for fault injection, miters, and exact pair distinguishing."""

import itertools

import pytest

from repro.atpg import Distinguisher, Status, build_miter, inject_fault, injected_copy
from repro.atpg.distinguish import MITER_OUTPUT
from repro.circuit import GateType
from repro.faults import Fault
from repro.sim import FaultSimulator, ResponseTable, TestSet, output_words, simulate


class TestInjectFault:
    def test_stem_injection(self, c17):
        copy = injected_copy(c17, Fault("10", 1))
        assert copy.gates["10"].gate_type is GateType.CONST1
        assert c17.gates["10"].gate_type is GateType.NAND

    def test_pin_injection(self, c17):
        copy = injected_copy(c17, Fault("3", 0, input_of="10"))
        sink = copy.gates["10"]
        assert "3" not in sink.inputs
        stub = [net for net in sink.inputs if net != "1"][0]
        assert copy.gates[stub].gate_type is GateType.CONST0
        # The other branch (3 -> 11) is untouched.
        assert "3" in copy.gates["11"].inputs

    def test_pi_stem_preserves_interface(self, c17):
        copy = injected_copy(c17, Fault("1", 1))
        assert copy.inputs == c17.inputs
        assert copy.outputs == c17.outputs
        tests = TestSet.exhaustive(c17.inputs)
        words = simulate(copy, tests)
        stub = "1__stuck1"
        assert words[stub] == (1 << len(tests)) - 1

    def test_injection_semantics_match_fault_sim(self, c17):
        """The structurally injected circuit equals the simulated faulty machine."""
        tests = TestSet.exhaustive(c17.inputs)
        simulator = FaultSimulator(c17, tests)
        for fault in (Fault("16", 0), Fault("3", 1, input_of="11"), Fault("2", 0)):
            diffs = simulator.output_diffs(fault)
            good = output_words(c17, tests)
            bad = output_words(injected_copy(c17, fault), tests)
            for net in c17.outputs:
                assert good[net] ^ bad[net] == diffs.get(net, 0)

    def test_unknown_injection_rejected(self, c17):
        with pytest.raises(ValueError):
            injected_copy(c17, Fault("ghost", 0))
        with pytest.raises(ValueError):
            injected_copy(c17, Fault("3", 0, input_of="22"))


class TestMiter:
    def test_miter_output_semantics(self, c17):
        fa, fb = Fault("10", 1), Fault("16", 0)
        miter = build_miter(c17, fa, fb)
        assert miter.outputs == [MITER_OUTPUT]
        tests = TestSet.exhaustive(c17.inputs)
        miter_word = output_words(miter, tests)[MITER_OUTPUT]
        a_words = output_words(injected_copy(c17, fa), tests)
        b_words = output_words(injected_copy(c17, fb), tests)
        expected = 0
        for net in c17.outputs:
            expected |= a_words[net] ^ b_words[net]
        assert miter_word == expected

    def test_sequential_rejected(self, s27):
        with pytest.raises(ValueError):
            build_miter(s27, Fault("G10", 0), Fault("G11", 0))


class TestDistinguisher:
    def test_exact_on_c17(self, c17, c17_faults, c17_exhaustive_sim):
        tests = TestSet.exhaustive(c17.inputs)
        table = ResponseTable.build(c17, c17_faults, tests)
        distinguisher = Distinguisher(c17, backtrack_limit=2000)
        for a, b in itertools.combinations(range(len(c17_faults)), 2):
            truth = table.full_row(a) != table.full_row(b)
            outcome = distinguisher.distinguish(c17_faults[a], c17_faults[b])
            assert outcome.status is not Status.ABORTED
            assert outcome.distinguished == truth

    def test_returned_vector_distinguishes(self, s27_scan, s27_faults):
        distinguisher = Distinguisher(s27_scan, backtrack_limit=2000)
        fa, fb = s27_faults[0], s27_faults[5]
        outcome = distinguisher.distinguish(fa, fb)
        if outcome.distinguished:
            tests = TestSet(s27_scan.inputs)
            tests.append_assignment(outcome.test)
            table = ResponseTable.build(s27_scan, [fa, fb], tests)
            assert table.signature(0, 0) != table.signature(1, 0)

    def test_equivalent_pair_proven(self, s27_scan, s27_faults):
        """Functionally equivalent pairs (same rows exhaustively) are proven so."""
        tests = TestSet.exhaustive(s27_scan.inputs)
        table = ResponseTable.build(s27_scan, s27_faults, tests)
        rows = {}
        equivalent = None
        for i in range(len(s27_faults)):
            row = table.full_row(i)
            if row in rows:
                equivalent = (s27_faults[rows[row]], s27_faults[i])
                break
            rows[row] = i
        assert equivalent is not None, "fixture assumption: s27 has equivalent pairs"
        outcome = Distinguisher(s27_scan, backtrack_limit=5000).distinguish(*equivalent)
        assert outcome.proven_equivalent
