"""Tests for n-detection test set generation."""

import pytest

from repro.atpg import generate_detection_tests, generate_ndetect_tests
from repro.sim import FaultSimulator


@pytest.mark.parametrize("n", [2, 5, 10])
def test_counts_reach_achievable_target_on_s27(s27_scan, s27_faults, n):
    """Every fault reaches min(n, available distinct detecting vectors)."""
    from repro.sim import TestSet

    tests, report = generate_ndetect_tests(s27_scan, s27_faults, n=n, seed=1)
    simulator = FaultSimulator(s27_scan, tests)
    exhaustive = FaultSimulator(s27_scan, TestSet.exhaustive(s27_scan.inputs))
    counts = simulator.detection_counts(report.detected)
    available = exhaustive.detection_counts(report.detected)
    shortfall = [
        f for f, count in counts.items() if count < min(n, available[f])
    ]
    assert not shortfall, [str(f) for f in shortfall]


def test_ndetect_superset_of_detection_quality(c17, c17_faults):
    one, _ = generate_detection_tests(c17, c17_faults, seed=0)
    ten, report = generate_ndetect_tests(c17, c17_faults, n=10, seed=0)
    assert len(ten) > len(one)
    simulator = FaultSimulator(c17, ten)
    assert simulator.coverage(c17_faults) == 1.0


def test_capped_by_function_support(c17, c17_faults):
    """Asking for more detections than distinct vectors exist must terminate."""
    tests, _ = generate_ndetect_tests(c17, c17_faults, n=40, seed=0)
    assert len(tests) <= 32  # c17 has only 32 input vectors
    assert len(set(tests)) == len(tests)


def test_deterministic(s27_scan, s27_faults):
    a, _ = generate_ndetect_tests(s27_scan, s27_faults, n=3, seed=7)
    b, _ = generate_ndetect_tests(s27_scan, s27_faults, n=3, seed=7)
    assert a == b


def test_report_inherited_from_detection_phase(s27_scan, s27_faults):
    _, report = generate_ndetect_tests(s27_scan, s27_faults, n=2, seed=1)
    assert len(report.detected) == len(s27_faults)
    assert not report.untestable
