"""Tests for the PODEM engine.

Ground truth: exhaustive fault simulation on small circuits.  Every fault
PODEM declares DETECTED must come with a vector that actually detects it,
and every UNTESTABLE claim must match exhaustive undetectability.
"""

import pytest

from repro.atpg import Podem, Status
from repro.circuit import GateType, from_gates, full_scan, generate_netlist
from repro.faults import Fault, all_faults
from repro.sim import FaultSimulator, TestSet
from tests.conftest import tiny_spec


def check_against_exhaustive(netlist, backtrack_limit=1000):
    simulator = FaultSimulator(netlist, TestSet.exhaustive(netlist.inputs))
    engine = Podem(netlist, backtrack_limit=backtrack_limit)
    for fault in all_faults(netlist):
        truth = simulator.detection_word(fault) != 0
        result = engine.generate(fault)
        assert result.status is not Status.ABORTED, str(fault)
        assert result.detected == truth, str(fault)
        if result.detected:
            vector = engine.fill(result)
            single = TestSet(netlist.inputs)
            single.append_assignment(vector)
            assert FaultSimulator(netlist, single).detection_word(fault) == 1, str(fault)


class TestGroundTruth:
    def test_c17(self, c17):
        check_against_exhaustive(c17)

    def test_s27(self, s27_scan):
        check_against_exhaustive(s27_scan)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuits(self, seed):
        netlist, _ = full_scan(generate_netlist(tiny_spec(seed + 200, gates=22)))
        check_against_exhaustive(netlist)


class TestRedundancy:
    def redundant_netlist(self):
        """y = AND(a, NOT(a)) is constant 0: its sa0 faults are untestable."""
        return from_gates(
            "red",
            inputs=["a", "b"],
            gates=[
                ("na", GateType.NOT, ["a"]),
                ("z", GateType.AND, ["a", "na"]),
                ("y", GateType.OR, ["z", "b"]),
            ],
            outputs=["y"],
        )

    def test_untestable_proof(self):
        netlist = self.redundant_netlist()
        engine = Podem(netlist)
        assert engine.generate(Fault("z", 0)).status is Status.UNTESTABLE
        assert engine.generate(Fault("z", 1)).status is Status.DETECTED

    def test_all_faults_classified(self):
        netlist = self.redundant_netlist()
        check_against_exhaustive(netlist)


class TestMechanics:
    def test_fill_completes_vector(self, c17):
        engine = Podem(c17)
        result = engine.generate(Fault("10", 1))
        vector = engine.fill(result)
        assert set(vector) == set(c17.inputs)
        assert all(value in (0, 1) for value in vector.values())

    def test_fill_rejects_failures(self, c17):
        engine = Podem(c17)
        from repro.atpg.podem import PodemResult

        with pytest.raises(ValueError):
            engine.fill(PodemResult(Status.ABORTED, Fault("10", 1)))

    def test_unknown_fault(self, c17):
        engine = Podem(c17)
        with pytest.raises(ValueError):
            engine.generate(Fault("ghost", 0))
        with pytest.raises(ValueError):
            engine.generate(Fault("10", 0, input_of="ghost"))
        with pytest.raises(ValueError):
            engine.generate(Fault("1", 0, input_of="23"))  # not an edge

    def test_sequential_rejected(self, s27):
        with pytest.raises(ValueError, match="combinational"):
            Podem(s27)

    def test_abort_on_tiny_limit(self, s27_scan):
        engine = Podem(s27_scan, backtrack_limit=0)
        statuses = {
            engine.generate(fault).status for fault in all_faults(s27_scan)
        }
        # With zero backtracks allowed some fault must abort, none may be
        # (wrongly) proven untestable: s27 has full fault coverage.
        assert Status.UNTESTABLE not in statuses

    def test_randomized_generation_varies(self, s27_scan):
        import random

        fault = Fault("G11", 0)
        vectors = set()
        for seed in range(8):
            engine = Podem(s27_scan, rng=random.Random(seed))
            result = engine.generate(fault, randomize=True)
            assert result.detected
            single = TestSet(s27_scan.inputs)
            single.append_assignment(engine.fill(result))
            vectors.add(single[0])
            assert FaultSimulator(s27_scan, single).detection_word(fault) == 1
        assert len(vectors) > 1

    def test_pin_fault_detection(self, c17):
        engine = Podem(c17)
        result = engine.generate(Fault("3", 0, input_of="10"))
        assert result.detected
