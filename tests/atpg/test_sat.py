"""Tests for the CDCL SAT solver."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg.sat import BudgetExceeded, Solver


def brute_force_sat(clauses, num_vars):
    for bits in itertools.product((False, True), repeat=num_vars):
        model = {v + 1: bits[v] for v in range(num_vars)}
        if all(
            any(model[abs(l)] == (l > 0) for l in clause) for clause in clauses
        ):
            return model
    return None


def check_model(clauses, model):
    for clause in clauses:
        assert any(model.get(abs(l), False) == (l > 0) for l in clause), clause


class TestBasics:
    def test_empty_formula_sat(self):
        assert Solver().solve() == {}

    def test_unit_clauses(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-2])
        model = solver.solve()
        assert model[1] is True
        assert model[2] is False

    def test_contradiction(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve() is None

    def test_empty_clause(self):
        solver = Solver()
        solver.add_clause([])
        assert solver.solve() is None

    def test_tautology_ignored(self):
        solver = Solver()
        solver.add_clause([1, -1])
        solver.add_clause([2])
        assert solver.solve()[2] is True

    def test_simple_implications(self):
        # (x1 -> x2) & (x2 -> x3) & x1 forces x3.
        solver = Solver()
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        solver.add_clause([1])
        model = solver.solve()
        assert model[3] is True

    def test_requires_search(self):
        # XOR chain: x1 ^ x2 = 1, x2 ^ x3 = 1, x1 = x3 forced equal.
        clauses = [[1, 2], [-1, -2], [2, 3], [-2, -3]]
        solver = Solver()
        for clause in clauses:
            solver.add_clause(clause)
        model = solver.solve()
        check_model(clauses, model)
        assert model[1] == model[3]


class TestPigeonhole:
    def pigeonhole(self, holes):
        """PHP(holes+1, holes): unsatisfiable, needs real search."""
        pigeons = holes + 1
        var = lambda p, h: p * holes + h + 1
        solver = Solver()
        for p in range(pigeons):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        return solver

    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_unsat(self, holes):
        assert self.pigeonhole(holes).solve() is None

    def test_satisfiable_variant(self):
        # holes pigeons into holes holes: satisfiable.
        holes = 3
        var = lambda p, h: p * holes + h + 1
        solver = Solver()
        for p in range(holes):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(holes):
                for p2 in range(p1 + 1, holes):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        assert solver.solve() is not None


class TestAssumptions:
    def test_assumptions_restrict(self):
        solver = Solver()
        solver.add_clause([1, 2])
        model = solver.solve(assumptions=[-1])
        assert model[2] is True
        assert solver.solve(assumptions=[-1, -2]) is None

    def test_conflicting_assumption(self):
        solver = Solver()
        solver.add_clause([1])
        assert solver.solve(assumptions=[-1]) is None


class TestBudget:
    def test_budget_exceeded_raises(self):
        solver = TestPigeonhole().pigeonhole(5)
        with pytest.raises(BudgetExceeded):
            solver.solve(max_conflicts=3)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    num_vars=st.integers(min_value=1, max_value=8),
    num_clauses=st.integers(min_value=1, max_value=30),
)
def test_random_3sat_matches_brute_force(seed, num_vars, num_clauses):
    """Property: the solver agrees with exhaustive enumeration."""
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        variables = rng.sample(range(1, num_vars + 1), min(width, num_vars))
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    solver = Solver()
    for clause in clauses:
        solver.add_clause(clause)
    model = solver.solve()
    reference = brute_force_sat(clauses, num_vars)
    assert (model is None) == (reference is None)
    if model is not None:
        check_model(clauses, model)
