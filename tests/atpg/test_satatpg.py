"""Cross-validation of SAT-based ATPG against PODEM and exhaustive truth."""

import itertools

import pytest

from repro.atpg import Distinguisher, Podem, Status
from repro.atpg.cnf import CnfEncoder, solve_output_one
from repro.atpg.satatpg import SatAtpg
from repro.circuit import full_scan, generate_netlist
from repro.faults import all_faults, collapse
from repro.sim import FaultSimulator, ResponseTable, TestSet
from tests.conftest import tiny_spec


class TestCnfEncoding:
    def test_circuit_consistency(self, c17):
        """Every SAT model of the encoding is a real simulation trace."""
        encoder = CnfEncoder(c17)
        # Force a specific input vector via assumptions; outputs must match.
        tests = TestSet.exhaustive(c17.inputs)
        from repro.sim import simulate

        words = simulate(c17, tests)
        for j in (0, 9, 21, 31):
            assumptions = [
                encoder.literal(net, tests.value(j, net)) for net in c17.inputs
            ]
            model = encoder.solver.solve(assumptions=assumptions)
            assert model is not None
            for net in c17.gates:
                expected = bool((words[net] >> j) & 1)
                assert model[encoder.variable[net]] == expected, net

    def test_sequential_rejected(self, s27):
        with pytest.raises(ValueError, match="combinational"):
            CnfEncoder(s27)

    def test_solve_output_one(self, c17):
        vector = solve_output_one(c17, "22")
        assert vector is not None
        from repro.sim import simulate_single

        assert simulate_single(c17, vector)["22"] == 1

    def test_solve_output_one_unsat(self):
        from repro.circuit import GateType, from_gates

        netlist = from_gates(
            "const0",
            inputs=["a"],
            gates=[
                ("na", GateType.NOT, ["a"]),
                ("y", GateType.AND, ["a", "na"]),
            ],
            outputs=["y"],
        )
        assert solve_output_one(netlist, "y") is None


class TestSatVsExhaustive:
    def test_c17(self, c17, c17_exhaustive_sim):
        engine = SatAtpg(c17)
        for fault in all_faults(c17):
            truth = c17_exhaustive_sim.detection_word(fault) != 0
            result = engine.generate(fault)
            assert result.status is not Status.ABORTED
            assert result.detected == truth, str(fault)
            if result.detected:
                vector = engine.fill(result)
                single = TestSet(c17.inputs)
                single.append_assignment(vector)
                assert FaultSimulator(c17, single).detection_word(fault) == 1

    @pytest.mark.parametrize("seed", range(2))
    def test_random_circuits_vs_podem(self, seed):
        netlist, _ = full_scan(generate_netlist(tiny_spec(seed + 900, gates=25)))
        sat_engine = SatAtpg(netlist)
        podem_engine = Podem(netlist, backtrack_limit=2000)
        for fault in collapse(netlist):
            sat_result = sat_engine.generate(fault)
            podem_result = podem_engine.generate(fault)
            assert sat_result.status is not Status.ABORTED
            if podem_result.status is not Status.ABORTED:
                assert sat_result.detected == podem_result.detected, str(fault)


class TestSatDistinguish:
    def test_matches_miter_podem_on_s27(self, s27_scan, s27_faults):
        sat_engine = SatAtpg(s27_scan)
        podem_engine = Distinguisher(s27_scan, backtrack_limit=5000)
        pairs = list(itertools.combinations(range(0, len(s27_faults), 4), 2))
        for a, b in pairs:
            sat_out = sat_engine.distinguish(s27_faults[a], s27_faults[b])
            podem_out = podem_engine.distinguish(s27_faults[a], s27_faults[b])
            assert sat_out.status is not Status.ABORTED
            if podem_out.status is not Status.ABORTED:
                assert sat_out.distinguished == podem_out.distinguished

    def test_distinguishing_vector_works(self, s27_scan, s27_faults):
        engine = SatAtpg(s27_scan)
        outcome = engine.distinguish(s27_faults[1], s27_faults[8])
        if outcome.distinguished:
            tests = TestSet(s27_scan.inputs)
            tests.append_assignment(outcome.test)
            table = ResponseTable.build(
                s27_scan, [s27_faults[1], s27_faults[8]], tests
            )
            assert table.signature(0, 0) != table.signature(1, 0)


class TestInterface:
    def test_fill_requires_detection(self, c17):
        from repro.atpg.podem import PodemResult
        from repro.faults import Fault

        engine = SatAtpg(c17)
        with pytest.raises(ValueError):
            engine.fill(PodemResult(Status.UNTESTABLE, Fault("10", 0)))

    def test_sequential_rejected(self, s27):
        with pytest.raises(ValueError, match="full-scan"):
            SatAtpg(s27)
