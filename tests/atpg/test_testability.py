"""Tests for SCOAP controllability/observability."""

from repro.atpg import controllability, observability
from repro.circuit import GateType, from_gates


def chain_netlist():
    return from_gates(
        "chain",
        inputs=["a", "b", "c"],
        gates=[
            ("g1", GateType.AND, ["a", "b"]),
            ("g2", GateType.AND, ["g1", "c"]),
        ],
        outputs=["g2"],
    )


class TestControllability:
    def test_sources_cost_one(self, c17):
        measures = controllability(c17)
        for net in c17.inputs:
            assert measures[net] == (1, 1)

    def test_and_chain(self):
        measures = controllability(chain_netlist())
        # g1: cc0 = 1+min(1,1)=2, cc1 = 1+1+1=3
        assert measures["g1"] == (2, 3)
        # g2: cc0 = 1+min(2,1)=2, cc1 = 1+3+1=5
        assert measures["g2"] == (2, 5)

    def test_nand_swaps_roles(self):
        netlist = from_gates(
            "nand", ["a", "b"], [("g", GateType.NAND, ["a", "b"])], ["g"]
        )
        cc0, cc1 = controllability(netlist)["g"]
        assert cc0 == 3  # all inputs 1
        assert cc1 == 2  # any input 0

    def test_constants(self):
        netlist = from_gates(
            "k",
            ["a"],
            [("k1", GateType.CONST1, []), ("g", GateType.AND, ["a", "k1"])],
            ["g"],
        )
        measures = controllability(netlist)
        cc0, cc1 = measures["k1"]
        assert cc1 == 0
        assert cc0 >= 10**8  # unreachable

    def test_xor_exact_two_input(self):
        netlist = from_gates(
            "x", ["a", "b"], [("g", GateType.XOR, ["a", "b"])], ["g"]
        )
        cc0, cc1 = controllability(netlist)["g"]
        assert cc0 == 3  # equal inputs: 1+1+1
        assert cc1 == 3  # one of each

    def test_deeper_is_harder(self, c17):
        measures = controllability(c17)
        levels = c17.levelize()
        # Some monotone trend: the deepest net is harder to set to at least
        # one value than any primary input.
        deepest = max(levels, key=levels.get)
        assert max(measures[deepest]) > 1


class TestObservability:
    def test_outputs_cost_zero(self, c17):
        measures = observability(c17)
        for net in c17.outputs:
            assert measures[net] == 0

    def test_chain_observability(self):
        measures = observability(chain_netlist())
        assert measures["g2"] == 0
        # g1 through g2: 0 + 1 + cc1(c)=1 -> 2
        assert measures["g1"] == 2
        # a through g1: obs(g1)=2 + 1 + cc1(b)=1 -> 4
        assert measures["a"] == 4

    def test_every_net_observable_in_c17(self, c17):
        measures = observability(c17)
        assert all(value < 10**8 for value in measures.values())
