"""Tests for time-frame expansion and sequential ATPG.

Ground truth: exhaustive enumeration of all input sequences of the frame
budget (feasible for s27: (2^4)^T sequences simulated bit-parallel).
"""

import itertools

import pytest

from repro.atpg import Status
from repro.atpg.timeframe import (
    SequenceGenerator,
    assignment_to_sequence,
    sequential_test_set,
    unroll,
)
from repro.faults import Fault, collapse
from repro.sim import sequential_detection_word, sequential_outputs, simulate_sequence
from repro.sim.seqfaultsim import sequential_output_diffs


def all_sequences(netlist, frames):
    """Every input sequence of the given length (small circuits only)."""
    width = len(netlist.inputs)
    vectors = [
        {net: (v >> i) & 1 for i, net in enumerate(netlist.inputs)}
        for v in range(1 << width)
    ]
    return [list(combo) for combo in itertools.product(vectors, repeat=frames)]


class TestUnroll:
    def test_structure(self, s27):
        expanded, info = unroll(s27, 3)
        assert expanded.is_combinational
        assert len(expanded.inputs) == 3 * len(s27.inputs)
        assert len(expanded.outputs) == 3 * len(s27.outputs)
        assert info.frames == 3

    def test_matches_sequential_simulation(self, s27):
        """The unrolled model computes the same per-cycle outputs."""
        from repro.sim import TestSet, output_words

        expanded, info = unroll(s27, 3)
        frames = [
            {"G0": 1, "G1": 0, "G2": 1, "G3": 0},
            {"G0": 0, "G1": 1, "G2": 0, "G3": 1},
            {"G0": 1, "G1": 1, "G2": 1, "G3": 1},
        ]
        sequential = simulate_sequence(s27, frames)
        assignment = {}
        for frame, vector in enumerate(frames):
            for net, value in vector.items():
                assignment[info.frame_input(frame, net)] = value
        tests = TestSet(expanded.inputs)
        tests.append_assignment(assignment)
        words = output_words(expanded, tests)
        for frame in range(3):
            got = "".join(
                str(words[f"t{frame}__{po}"] & 1) for po in s27.outputs
            )
            assert got == sequential[frame]

    def test_validation(self, s27, c17):
        with pytest.raises(ValueError, match="at least one"):
            unroll(s27, 0)
        with pytest.raises(ValueError, match="combinational"):
            unroll(c17, 2)

    def test_reset_value(self, s27):
        expanded0, _ = unroll(s27, 1, reset_value=0)
        expanded1, _ = unroll(s27, 1, reset_value=1)
        from repro.circuit import GateType

        assert expanded0.gates["t0__G5"].gate_type is GateType.CONST0
        assert expanded1.gates["t0__G5"].gate_type is GateType.CONST1


class TestSequenceGenerator:
    FRAMES = 2

    @pytest.fixture(scope="class")
    def ground_truth(self, s27):
        sequences = all_sequences(s27, self.FRAMES)
        truth = {}
        for fault in collapse(s27):
            truth[fault] = (
                sequential_detection_word(s27, sequences, fault) != 0
            )
        return truth

    def test_against_exhaustive(self, s27, ground_truth):
        generator = SequenceGenerator(s27, frames=self.FRAMES, backtrack_limit=4000)
        for fault, detectable in ground_truth.items():
            result = generator.generate(fault)
            assert result.status is not Status.ABORTED, str(fault)
            assert result.detected == detectable, str(fault)
            if result.detected:
                assert len(result.sequence) == self.FRAMES
                word = sequential_detection_word(s27, [result.sequence], fault)
                assert word == 1, f"sequence does not detect {fault}"

    def test_longer_budget_detects_more(self, s27):
        fault = Fault("G5", 1)  # a state bit: needs time to matter
        short = SequenceGenerator(s27, frames=1, backtrack_limit=4000).generate(fault)
        longer = SequenceGenerator(s27, frames=4, backtrack_limit=4000).generate(fault)
        assert longer.detected
        # With one frame the stuck state may be masked; whatever the
        # outcome, it must be a sound proof.
        if not short.detected:
            assert short.status is Status.UNTESTABLE

    def test_distinguish(self, s27):
        faults = collapse(s27)
        generator = SequenceGenerator(s27, frames=3, backtrack_limit=4000)
        result = generator.distinguish(faults[0], faults[4])
        if result.detected:
            diffs_a = sequential_output_diffs(s27, [result.sequence], faults[0])
            diffs_b = sequential_output_diffs(s27, [result.sequence], faults[4])
            assert diffs_a != diffs_b

    def test_combinational_rejected(self, c17):
        with pytest.raises(ValueError, match="combinational"):
            SequenceGenerator(c17)


class TestSequentialTestSet:
    def test_s27_full_classification(self, s27):
        faults = collapse(s27)
        sequences, report = sequential_test_set(
            s27, faults, frames=3, random_sequences_count=16, seed=1,
            backtrack_limit=2000,
        )
        assert not report["aborted"]
        assert len(report["detected"]) + len(report["untestable"]) == len(faults)
        for fault in report["detected"]:
            assert sequential_detection_word(s27, sequences, fault), str(fault)


class TestSequentialDiagnosticSet:
    def test_s27_converges(self, s27):
        from repro.atpg import sequential_diagnostic_set

        faults = collapse(s27)
        sequences, report = sequential_diagnostic_set(
            s27, faults, frames=3, random_sequences_count=8, seed=2,
            backtrack_limit=2000,
        )
        assert report["classes_after"] >= report["classes_before"]
        # Every class left unsplit is justified by settled pairs.
        assert not report["aborted_pairs"]
        # The sequences still detect everything the generation detected.
        for fault in report["generation"]["detected"]:
            assert sequential_detection_word(s27, sequences, fault), str(fault)

    def test_equivalent_pairs_truly_equivalent_within_budget(self, s27):
        from repro.atpg import sequential_diagnostic_set

        faults = collapse(s27)
        _, report = sequential_diagnostic_set(
            s27, faults, frames=2, random_sequences_count=8, seed=3,
            backtrack_limit=4000,
        )
        sequences = all_sequences(s27, 2)
        for fault_a, fault_b in report["equivalent_pairs"]:
            diffs_a = [
                sequential_output_diffs(s27, [seq], fault_a)
                for seq in sequences[:256]
            ]
            diffs_b = [
                sequential_output_diffs(s27, [seq], fault_b)
                for seq in sequences[:256]
            ]
            assert diffs_a == diffs_b
