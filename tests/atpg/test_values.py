"""Tests for three-valued logic."""

import itertools

import pytest

from repro.atpg.values import ONE, X, ZERO, evaluate3, not3, to_symbol
from repro.circuit import GateType
from repro.circuit.gates import evaluate_gate

_GATES = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]


class TestAgainstBinary:
    @pytest.mark.parametrize("gate_type", _GATES)
    def test_binary_inputs_match_binary_eval(self, gate_type):
        for bits in itertools.product((0, 1), repeat=3):
            expected = evaluate_gate(gate_type, list(bits), 1)
            assert evaluate3(gate_type, list(bits)) == expected

    def test_not_buf(self):
        assert evaluate3(GateType.NOT, [ZERO]) == ONE
        assert evaluate3(GateType.BUF, [ONE]) == ONE
        assert evaluate3(GateType.NOT, [X]) == X

    def test_constants(self):
        assert evaluate3(GateType.CONST0, []) == ZERO
        assert evaluate3(GateType.CONST1, []) == ONE


class TestXPropagation:
    @pytest.mark.parametrize("gate_type", _GATES)
    def test_x_soundness(self, gate_type):
        """Property: a known 3-valued output must hold for all X completions."""
        for values in itertools.product((ZERO, ONE, X), repeat=2):
            result = evaluate3(gate_type, list(values))
            if result == X:
                continue
            completions = [
                [v if v != X else choice[i] for i, v in enumerate(values)]
                for choice in itertools.product((0, 1), repeat=2)
            ]
            outcomes = {evaluate_gate(gate_type, c, 1) for c in completions}
            assert outcomes == {result}

    @pytest.mark.parametrize("gate_type", _GATES)
    def test_x_completeness(self, gate_type):
        """Property: an X output means both completions are possible."""
        for values in itertools.product((ZERO, ONE, X), repeat=2):
            result = evaluate3(gate_type, list(values))
            if result != X:
                continue
            completions = [
                [v if v != X else choice[i] for i, v in enumerate(values)]
                for choice in itertools.product((0, 1), repeat=2)
            ]
            outcomes = {evaluate_gate(gate_type, c, 1) for c in completions}
            assert outcomes == {0, 1}

    def test_controlling_value_dominates_x(self):
        assert evaluate3(GateType.AND, [ZERO, X]) == ZERO
        assert evaluate3(GateType.OR, [ONE, X]) == ONE
        assert evaluate3(GateType.NAND, [ZERO, X]) == ONE
        assert evaluate3(GateType.NOR, [ONE, X]) == ZERO
        assert evaluate3(GateType.XOR, [ONE, X]) == X


class TestHelpers:
    def test_not3(self):
        assert not3(ZERO) == ONE
        assert not3(ONE) == ZERO
        assert not3(X) == X

    def test_symbols(self):
        assert to_symbol(ONE, ONE) == "1"
        assert to_symbol(ZERO, ZERO) == "0"
        assert to_symbol(ONE, ZERO) == "D"
        assert to_symbol(ZERO, ONE) == "D'"
        assert to_symbol(X, ONE) == "X"

    def test_dff_not_evaluable(self):
        with pytest.raises(ValueError):
            evaluate3(GateType.DFF, [ONE])
