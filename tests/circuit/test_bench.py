"""Tests for the .bench parser and writer."""

import pytest

from repro.circuit import GateType, bench
from repro.circuit.bench import BenchParseError


SAMPLE = """
# a comment line
INPUT(a)
INPUT(b)
OUTPUT(y)
n1 = NAND(a, b)   # trailing comment
y = INV(n1)
"""


class TestParsing:
    def test_parse_sample(self):
        netlist = bench.loads(SAMPLE, "sample")
        assert netlist.name == "sample"
        assert netlist.inputs == ["a", "b"]
        assert netlist.outputs == ["y"]
        assert netlist.gates["n1"].gate_type is GateType.NAND
        assert netlist.gates["y"].gate_type is GateType.NOT  # INV alias

    def test_aliases(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n"
        netlist = bench.loads(text)
        assert netlist.gates["y"].gate_type is GateType.BUF

    def test_case_insensitive_types(self):
        text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = nand(a, b)\n"
        assert bench.loads(text).gates["y"].gate_type is GateType.NAND

    def test_dff_parses(self):
        text = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n"
        netlist = bench.loads(text)
        assert netlist.flip_flops == ["q"]

    def test_unknown_gate_type(self):
        with pytest.raises(BenchParseError, match="unknown gate type"):
            bench.loads("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")

    def test_garbage_line(self):
        with pytest.raises(BenchParseError, match="cannot parse"):
            bench.loads("INPUT(a)\nOUTPUT(a)\nthis is not bench\n")

    def test_line_number_in_error(self):
        with pytest.raises(BenchParseError, match="line 3"):
            bench.loads("INPUT(a)\nOUTPUT(a)\nbogus =\n")

    def test_undriven_reference_fails_validation(self):
        with pytest.raises(BenchParseError if False else Exception):
            bench.loads("INPUT(a)\nOUTPUT(y)\ny = NOT(ghost)\n")


class TestRoundTrip:
    def test_dumps_loads_identity(self, c17):
        text = bench.dumps(c17)
        again = bench.loads(text, c17.name)
        assert sorted(again.gates) == sorted(c17.gates)
        assert again.outputs == c17.outputs
        for name, gate in c17.gates.items():
            assert again.gates[name].gate_type is gate.gate_type
            assert again.gates[name].inputs == gate.inputs

    def test_roundtrip_s27(self, s27):
        again = bench.loads(bench.dumps(s27), "s27")
        assert again.flip_flops == s27.flip_flops
        assert again.stats() == s27.stats()

    def test_file_io(self, tmp_path, c17):
        path = tmp_path / "c17.bench"
        bench.dump(c17, path)
        loaded = bench.load(path)
        assert loaded.name == "c17"
        assert loaded.stats() == c17.stats()
