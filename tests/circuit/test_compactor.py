"""Tests for output response compaction."""

import pytest

from repro.circuit.compactor import (
    compaction_alias_rate,
    grouped_compactor,
    parity_compactor,
)
from repro.sim import TestSet, output_vectors, simulate


class TestParityCompactor:
    def test_width_validation(self, c17):
        with pytest.raises(ValueError):
            parity_compactor(c17, 0)
        with pytest.raises(ValueError):
            parity_compactor(c17, 2)  # c17 has only two outputs

    def test_single_signature_is_parity(self, c17):
        compacted = parity_compactor(c17, 1)
        assert compacted.outputs == ["__sig0"]
        tests = TestSet.exhaustive(c17.inputs)
        words = simulate(compacted, tests)
        original = simulate(c17, tests)
        assert words["__sig0"] == original["22"] ^ original["23"]

    def test_interleaving(self, s27_scan):
        compacted = parity_compactor(s27_scan, 2)
        assert len(compacted.outputs) == 2
        tests = TestSet.random(s27_scan.inputs, 32, seed=1)
        words = simulate(compacted, tests)
        original = simulate(s27_scan, tests)
        outs = s27_scan.outputs
        expected0 = 0
        for net in outs[0::2]:
            expected0 ^= original[net]
        assert words["__sig0"] == expected0

    def test_original_logic_untouched(self, s27_scan):
        compacted = parity_compactor(s27_scan, 2)
        tests = TestSet.random(s27_scan.inputs, 16, seed=2)
        original = simulate(s27_scan, tests)
        words = simulate(compacted, tests)
        for net in s27_scan.gates:
            assert words[net] == original[net]


class TestGroupedCompactor:
    def test_explicit_groups(self, s27_scan):
        outs = s27_scan.outputs
        compacted = grouped_compactor(s27_scan, [outs[:1], outs[1:]])
        assert len(compacted.outputs) == 2
        tests = TestSet.random(s27_scan.inputs, 16, seed=3)
        words = simulate(compacted, tests)
        original = simulate(s27_scan, tests)
        assert words["__sig0"] == original[outs[0]]  # single-member group = BUF

    def test_groups_must_partition(self, s27_scan):
        outs = s27_scan.outputs
        with pytest.raises(ValueError, match="partition"):
            grouped_compactor(s27_scan, [outs[:1], outs[:1]])


class TestAliasing:
    def test_alias_rate_bounds(self, s27_scan):
        compacted = parity_compactor(s27_scan, 1)
        rate = compaction_alias_rate(s27_scan, compacted)
        assert 0.0 <= rate <= 1.0

    def test_narrower_compaction_aliases_at_least_as_much(self, s27_scan):
        wide = parity_compactor(s27_scan, 3)
        narrow = parity_compactor(s27_scan, 1)
        rate_wide = compaction_alias_rate(s27_scan, wide)
        rate_narrow = compaction_alias_rate(s27_scan, narrow)
        # Parity of all outputs cannot alias less than a 3-signature split
        # that refines it... (interleaved groups do not strictly nest, so
        # allow equality-with-slack rather than strict ordering).
        assert rate_narrow >= rate_wide - 1e-9

    def test_no_aliasing_when_groups_are_singletons(self, s27_scan):
        # One group per output = no compaction at all.
        groups = [[net] for net in s27_scan.outputs]
        identity = grouped_compactor(s27_scan, groups)
        assert compaction_alias_rate(s27_scan, identity) == 0.0


class TestDictionaryUnderCompaction:
    def test_resolution_degrades_sizes_shrink(self, s27_scan, s27_faults):
        """The Section 2 remark quantified: m drops, so do sizes; aliasing
        can only lose fault pairs, never gain."""
        from repro.dictionaries import FullDictionary
        from repro.sim import ResponseTable

        tests = TestSet.random(s27_scan.inputs, 24, seed=5)
        compacted = parity_compactor(s27_scan, 2)
        base = ResponseTable.build(s27_scan, s27_faults, tests)
        small = ResponseTable.build(compacted, s27_faults, tests)
        full_base = FullDictionary(base)
        full_small = FullDictionary(small)
        assert full_small.size_bits < full_base.size_bits
        assert (
            full_small.indistinguished_pairs() >= full_base.indistinguished_pairs()
        )
