"""Unit and property tests for bit-parallel gate evaluation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit.gates import (
    CONTROLLED_OUTPUT,
    CONTROLLING_VALUE,
    EVALUATORS,
    GateType,
    evaluate_gate,
)

_SCALAR = {
    GateType.AND: lambda bits: int(all(bits)),
    GateType.NAND: lambda bits: int(not all(bits)),
    GateType.OR: lambda bits: int(any(bits)),
    GateType.NOR: lambda bits: int(not any(bits)),
    GateType.XOR: lambda bits: sum(bits) % 2,
    GateType.XNOR: lambda bits: 1 - sum(bits) % 2,
    GateType.NOT: lambda bits: 1 - bits[0],
    GateType.BUF: lambda bits: bits[0],
}


class TestTruthTables:
    @pytest.mark.parametrize("gate_type", list(_SCALAR))
    def test_two_input_truth_table(self, gate_type):
        if gate_type in (GateType.NOT, GateType.BUF):
            pytest.skip("single-input gate")
        # One pattern per input combination: bit p encodes pattern p.
        a, b = 0b1100, 0b1010
        mask = 0b1111
        word = evaluate_gate(gate_type, [a, b], mask)
        for pattern in range(4):
            bits = [(a >> pattern) & 1, (b >> pattern) & 1]
            assert (word >> pattern) & 1 == _SCALAR[gate_type](bits)

    @pytest.mark.parametrize("gate_type", [GateType.NOT, GateType.BUF])
    def test_single_input_truth_table(self, gate_type):
        mask = 0b11
        word = evaluate_gate(gate_type, [0b10], mask)
        for pattern in range(2):
            assert (word >> pattern) & 1 == _SCALAR[gate_type]([(0b10 >> pattern) & 1])

    def test_constants(self):
        mask = 0b111
        assert evaluate_gate(GateType.CONST0, [], mask) == 0
        assert evaluate_gate(GateType.CONST1, [], mask) == mask

    def test_input_and_dff_not_evaluable(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.INPUT, [], 1)
        with pytest.raises(ValueError):
            evaluate_gate(GateType.DFF, [1], 1)


@given(
    gate_type=st.sampled_from(sorted(_SCALAR, key=lambda g: g.value)),
    rows=st.lists(st.integers(min_value=0, max_value=(1 << 16) - 1), min_size=1, max_size=4),
)
def test_bit_parallel_matches_scalar(gate_type, rows):
    """Property: word evaluation equals per-pattern scalar evaluation."""
    if gate_type in (GateType.NOT, GateType.BUF):
        rows = rows[:1]
    mask = (1 << 16) - 1
    word = evaluate_gate(gate_type, rows, mask)
    for pattern in range(16):
        bits = [(r >> pattern) & 1 for r in rows]
        assert (word >> pattern) & 1 == _SCALAR[gate_type](bits)


@given(rows=st.lists(st.integers(min_value=0, max_value=255), min_size=2, max_size=4))
def test_outputs_stay_within_mask(rows):
    """Property: no evaluator produces bits outside the pattern mask."""
    mask = 255
    for gate_type in _SCALAR:
        operands = rows[:1] if gate_type in (GateType.NOT, GateType.BUF) else rows
        assert 0 <= evaluate_gate(gate_type, operands, mask) <= mask


class TestGateTypeMetadata:
    def test_controlling_values_consistent(self):
        for gate_type, value in CONTROLLING_VALUE.items():
            rows = [value, 0b0]  # second input varies over patterns 0/1
            mask = 0b11
            word = evaluate_gate(gate_type, [mask if value else 0, 0b10], mask)
            expected = CONTROLLED_OUTPUT[gate_type]
            assert word == (mask if expected else 0)

    def test_min_max_inputs(self):
        assert GateType.AND.min_inputs == 2
        assert GateType.AND.max_inputs == -1
        assert GateType.NOT.max_inputs == 1
        assert GateType.INPUT.min_inputs == 0

    def test_sequential_and_constant_flags(self):
        assert GateType.DFF.is_sequential
        assert not GateType.AND.is_sequential
        assert GateType.CONST0.is_constant
        assert GateType.CONST1.is_constant
        assert not GateType.OR.is_constant
