"""Tests for the synthetic benchmark generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import GateType, GeneratorSpec, generate_netlist


class TestSpecValidation:
    def test_rejects_zero_inputs(self):
        with pytest.raises(ValueError, match="primary input"):
            GeneratorSpec("x", 0, 1, 0, 10, seed=1)

    def test_rejects_zero_outputs(self):
        with pytest.raises(ValueError, match="primary output"):
            GeneratorSpec("x", 1, 0, 0, 10, seed=1)

    def test_rejects_negative_flip_flops(self):
        with pytest.raises(ValueError, match="flip-flop"):
            GeneratorSpec("x", 1, 1, -1, 10, seed=1)

    def test_rejects_too_few_gates(self):
        with pytest.raises(ValueError, match="too small"):
            GeneratorSpec("x", 2, 3, 3, 4, seed=1)


class TestGeneration:
    def test_interface_counts(self):
        spec = GeneratorSpec("g", n_inputs=6, n_outputs=4, n_flip_flops=3, n_gates=40, seed=7)
        netlist = generate_netlist(spec)
        stats = netlist.stats()
        assert stats["inputs"] == 6
        assert stats["outputs"] == 4
        assert stats["flip_flops"] == 3
        assert stats["gates"] >= 40

    def test_deterministic_in_seed(self):
        spec = GeneratorSpec("g", 4, 2, 1, 25, seed=3)
        a = generate_netlist(spec)
        b = generate_netlist(spec)
        assert [(g.name, g.gate_type, g.inputs) for g in a] == [
            (g.name, g.gate_type, g.inputs) for g in b
        ]

    def test_different_seeds_differ(self):
        base = dict(n_inputs=4, n_outputs=2, n_flip_flops=1, n_gates=25)
        a = generate_netlist(GeneratorSpec("a", seed=1, **base))
        b = generate_netlist(GeneratorSpec("b", seed=2, **base))
        gates_a = [(g.gate_type, g.inputs) for g in a]
        gates_b = [(g.gate_type, g.inputs) for g in b]
        assert gates_a != gates_b

    def test_every_logic_gate_is_observable(self):
        """Every gate must reach a PO or a flip-flop D input."""
        spec = GeneratorSpec("g", 5, 3, 2, 50, seed=11)
        netlist = generate_netlist(spec)
        observable = set(netlist.outputs)
        for ff in netlist.flip_flops:
            observable.add(netlist.gates[ff].inputs[0])
        fanout = netlist.fanout_map()
        for gate in netlist:
            if gate.gate_type in (GateType.INPUT, GateType.DFF):
                continue
            # A gate is observable when it is an observation point itself
            # or has fan-out (transitively leading to one, by construction).
            assert gate.name in observable or fanout[gate.name], gate.name

    def test_depth_is_bounded(self):
        spec = GeneratorSpec("g", 8, 4, 4, 200, seed=5)
        netlist = generate_netlist(spec)
        # Layered construction: depth stays near the 2.5*log2 target, far
        # below the chain worst case.
        assert netlist.stats()["depth"] < 40


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n_gates=st.integers(min_value=10, max_value=80),
)
def test_generated_netlists_always_validate(seed, n_gates):
    """Property: generation never produces a structurally invalid netlist."""
    spec = GeneratorSpec("prop", 4, 3, 2, max(n_gates, 5 + 3), seed=seed)
    netlist = generate_netlist(spec)
    netlist.validate()
    assert netlist.stats()["outputs"] == 3
