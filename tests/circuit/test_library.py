"""Tests for the embedded circuit library and proxy registry."""

import pytest

from repro.circuit import PROXY_SPECS, available_circuits, load_circuit


class TestEmbedded:
    def test_c17_stats(self, c17):
        stats = c17.stats()
        assert stats["inputs"] == 5
        assert stats["outputs"] == 2
        assert stats["flip_flops"] == 0
        assert stats["gates"] == 6

    def test_s27_stats(self, s27):
        stats = s27.stats()
        assert stats["inputs"] == 4
        assert stats["outputs"] == 1
        assert stats["flip_flops"] == 3
        assert stats["gates"] == 13  # 10 logic gates + 3 DFFs

    def test_s27_output(self, s27):
        assert s27.outputs == ["G17"]


class TestProxies:
    def test_unknown_circuit(self):
        with pytest.raises(KeyError, match="unknown circuit"):
            load_circuit("sNaN")

    def test_available_lists_everything(self):
        names = available_circuits()
        assert "c17" in names and "s27" in names
        assert set(PROXY_SPECS) <= set(names)

    def test_proxy_interface_matches_spec(self):
        for name in ("p208", "p386"):
            spec = PROXY_SPECS[name]
            netlist = load_circuit(name)
            stats = netlist.stats()
            assert stats["inputs"] == spec.n_inputs
            assert stats["outputs"] == spec.n_outputs
            assert stats["flip_flops"] == spec.n_flip_flops
            # Merge gates may add a few on top of the requested count.
            assert stats["gates"] >= spec.n_gates
            assert stats["gates"] <= spec.n_gates + spec.n_gates // 2

    def test_proxy_deterministic(self):
        first = load_circuit("p298")
        second = load_circuit("p298")
        assert sorted(first.gates) == sorted(second.gates)
        for name, gate in first.gates.items():
            assert second.gates[name].inputs == gate.inputs
            assert second.gates[name].gate_type is gate.gate_type
