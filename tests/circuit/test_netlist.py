"""Tests for the Netlist data structure."""

import pytest

from repro.circuit import GateType, Netlist, NetlistError, from_gates


def small_netlist() -> Netlist:
    return from_gates(
        "small",
        inputs=["a", "b", "c"],
        gates=[
            ("g1", GateType.AND, ["a", "b"]),
            ("g2", GateType.NOT, ["c"]),
            ("g3", GateType.OR, ["g1", "g2"]),
        ],
        outputs=["g3"],
    )


class TestConstruction:
    def test_basic_counts(self):
        netlist = small_netlist()
        assert netlist.inputs == ["a", "b", "c"]
        assert netlist.outputs == ["g3"]
        assert netlist.num_gates == 3
        assert len(netlist) == 6
        assert "g1" in netlist
        assert "nope" not in netlist

    def test_double_drive_rejected(self):
        netlist = Netlist()
        netlist.add_input("a")
        with pytest.raises(NetlistError, match="driven twice"):
            netlist.add_input("a")

    def test_double_output_rejected(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_output("a")
        with pytest.raises(NetlistError, match="declared twice"):
            netlist.add_output("a")

    def test_bad_fanin_count(self):
        netlist = Netlist()
        netlist.add_input("a")
        with pytest.raises(NetlistError, match="inputs"):
            netlist.add_gate("g", GateType.AND, ["a"])
        with pytest.raises(NetlistError, match="inputs"):
            netlist.add_gate("g2", GateType.NOT, ["a", "a"])


class TestValidation:
    def test_undriven_net(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("g", GateType.NOT, ["ghost"])
        netlist.add_output("g")
        with pytest.raises(NetlistError, match="undriven"):
            netlist.validate()

    def test_missing_output(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_output("ghost")
        with pytest.raises(NetlistError, match="not driven"):
            netlist.validate()

    def test_no_outputs(self):
        netlist = Netlist()
        netlist.add_input("a")
        with pytest.raises(NetlistError, match="no primary outputs"):
            netlist.validate()

    def test_combinational_cycle_detected(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("x", GateType.AND, ["a", "y"])
        netlist.add_gate("y", GateType.NOT, ["x"])
        netlist.add_output("y")
        with pytest.raises(NetlistError, match="cycle"):
            netlist.validate()

    def test_sequential_loop_through_dff_is_legal(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("q", GateType.DFF, ["d"])
        netlist.add_gate("d", GateType.AND, ["a", "q"])
        netlist.add_output("d")
        netlist.validate()
        assert not netlist.is_combinational


class TestAnalysis:
    def test_topological_order(self):
        netlist = small_netlist()
        order = netlist.topological_order()
        position = {net: i for i, net in enumerate(order)}
        for gate in netlist:
            for fanin in gate.inputs:
                assert position[fanin] < position[gate.name]

    def test_levels(self):
        netlist = small_netlist()
        levels = netlist.levelize()
        assert levels["a"] == 0
        assert levels["g1"] == 1
        assert levels["g3"] == 2
        assert netlist.stats()["depth"] == 2

    def test_fanout_map(self):
        netlist = small_netlist()
        fanout = netlist.fanout_map()
        assert fanout["a"] == ("g1",)
        assert fanout["g3"] == ()

    def test_cones(self):
        netlist = small_netlist()
        assert netlist.output_cone("a") == {"a", "g1", "g3"}
        assert netlist.input_cone("g3") == {"a", "b", "c", "g1", "g2", "g3"}
        assert netlist.input_cone("g1") == {"a", "b", "g1"}

    def test_output_cone_stops_at_dff(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("q", GateType.DFF, ["d"])
        netlist.add_gate("d", GateType.AND, ["a", "q"])
        netlist.add_output("d")
        assert "q" not in netlist.output_cone("d")
        assert "d" in netlist.output_cone("a")

    def test_caches_invalidated_on_add(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("g", GateType.NOT, ["a"])
        netlist.add_output("g")
        assert len(netlist.topological_order()) == 2
        netlist.add_gate("h", GateType.NOT, ["g"])
        assert len(netlist.topological_order()) == 3


class TestEditing:
    def test_copy_is_independent(self):
        netlist = small_netlist()
        clone = netlist.copy("clone")
        clone.add_gate("extra", GateType.NOT, ["g3"])
        assert "extra" not in netlist
        assert clone.name == "clone"
        assert netlist.outputs == clone.outputs

    def test_with_line_tied(self):
        netlist = small_netlist()
        tied = netlist.with_line_tied("g1", 1)
        assert tied.gates["g1"].gate_type is GateType.CONST1
        assert netlist.gates["g1"].gate_type is GateType.AND
        tied.validate()

    def test_with_line_tied_rejects_bad_args(self):
        netlist = small_netlist()
        with pytest.raises(NetlistError):
            netlist.with_line_tied("ghost", 0)
        with pytest.raises(ValueError):
            netlist.with_line_tied("g1", 2)

    def test_repr_mentions_counts(self):
        assert "inputs=3" in repr(small_netlist())
