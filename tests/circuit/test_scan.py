"""Tests for the full-scan transformation."""

import pytest

from repro.circuit import GateType, full_scan, prepare_for_test
from repro.sim import TestSet, simulate


class TestFullScan:
    def test_s27_becomes_combinational(self, s27):
        scanned, info = full_scan(s27)
        assert scanned.is_combinational
        assert set(info.pseudo_inputs) == {"G5", "G6", "G7"}
        assert len(info.pseudo_outputs) == 3
        assert info.original_outputs == 1

    def test_inputs_extended(self, s27):
        scanned, info = full_scan(s27)
        assert set(scanned.inputs) == set(s27.inputs) | set(info.pseudo_inputs)
        # True POs come first, pseudo POs after.
        assert scanned.outputs[: info.original_outputs] == s27.outputs

    def test_pseudo_po_not_duplicated(self):
        # A DFF whose D net is already a primary output must not be added twice.
        from repro.circuit import Netlist

        netlist = Netlist("dup")
        netlist.add_input("a")
        netlist.add_gate("d", GateType.NOT, ["a"])
        netlist.add_gate("q", GateType.DFF, ["d"])
        netlist.add_gate("y", GateType.AND, ["q", "a"])
        netlist.add_output("d")
        netlist.add_output("y")
        scanned, info = full_scan(netlist)
        assert scanned.outputs.count("d") == 1
        assert info.pseudo_outputs == ("d",)

    def test_combinational_logic_preserved(self, s27):
        """The scan view computes the same next-state/output functions."""
        scanned, info = full_scan(s27)
        tests = TestSet.random(scanned.inputs, 32, seed=1)
        values = simulate(scanned, tests)
        # G17 = NOT(G11): holds on every pattern.
        mask = (1 << 32) - 1
        assert values["G17"] == mask ^ values["G11"]

    def test_prepare_for_test_passthrough(self, c17):
        prepared = prepare_for_test(c17)
        assert prepared.is_combinational
        assert sorted(prepared.gates) == sorted(c17.gates)
        prepared.add_gate("scratch", GateType.NOT, ["22"])
        assert "scratch" not in c17  # must be a copy

    def test_prepare_for_test_scans_sequential(self, s27):
        prepared = prepare_for_test(s27)
        assert prepared.is_combinational
        assert len(prepared.inputs) == 7
