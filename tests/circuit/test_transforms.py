"""Tests for netlist transforms: constant sweeping, pruning, decomposition."""

import pytest

from repro.circuit import GateType, from_gates, generate_netlist, full_scan
from repro.circuit.transforms import (
    decompose_to_two_input,
    remove_dangling,
    sweep_constants,
)
from repro.sim import TestSet, output_words
from tests.conftest import tiny_spec


def assert_equivalent(a, b, seed=0):
    """Both netlists compute the same outputs on random vectors."""
    assert list(a.inputs) == list(b.inputs)
    assert list(a.outputs) == list(b.outputs)
    tests = TestSet.random(a.inputs, 64, seed=seed)
    assert output_words(a, tests) == output_words(b, tests)


class TestSweepConstants:
    def test_controlling_constant_kills_gate(self):
        netlist = from_gates(
            "k",
            inputs=["a", "b"],
            gates=[
                ("k0", GateType.CONST0, []),
                ("g", GateType.AND, ["a", "k0"]),
                ("y", GateType.OR, ["g", "b"]),
            ],
            outputs=["y"],
        )
        swept = sweep_constants(netlist)
        assert swept.gates["g"].gate_type is GateType.CONST0
        assert swept.gates["y"].gate_type is GateType.BUF
        assert_equivalent(netlist, swept)

    def test_noncontrolling_constant_dropped_from_fanin(self):
        netlist = from_gates(
            "k",
            inputs=["a", "b"],
            gates=[
                ("k1", GateType.CONST1, []),
                ("y", GateType.AND, ["a", "k1", "b"]),
            ],
            outputs=["y"],
        )
        swept = sweep_constants(netlist)
        assert swept.gates["y"].inputs == ("a", "b")
        assert_equivalent(netlist, swept)

    def test_nand_with_all_noncontrolling_constants(self):
        netlist = from_gates(
            "k",
            inputs=["a"],
            gates=[
                ("k1", GateType.CONST1, []),
                ("n", GateType.NAND, ["k1", "k1"]),
                ("y", GateType.OR, ["a", "n"]),
            ],
            outputs=["y"],
        )
        swept = sweep_constants(netlist)
        assert swept.gates["n"].gate_type is GateType.CONST0
        assert_equivalent(netlist, swept)

    def test_xor_parity_folding(self):
        netlist = from_gates(
            "x",
            inputs=["a", "b"],
            gates=[
                ("k1", GateType.CONST1, []),
                ("y", GateType.XOR, ["a", "k1", "b"]),
            ],
            outputs=["y"],
        )
        swept = sweep_constants(netlist)
        assert swept.gates["y"].gate_type is GateType.XNOR
        assert swept.gates["y"].inputs == ("a", "b")
        assert_equivalent(netlist, swept)

    def test_xor_single_survivor(self):
        netlist = from_gates(
            "x",
            inputs=["a"],
            gates=[
                ("k1", GateType.CONST1, []),
                ("y", GateType.XOR, ["a", "k1"]),
            ],
            outputs=["y"],
        )
        swept = sweep_constants(netlist)
        assert swept.gates["y"].gate_type is GateType.NOT
        assert_equivalent(netlist, swept)

    def test_not_of_constant(self):
        netlist = from_gates(
            "n",
            inputs=["a"],
            gates=[
                ("k0", GateType.CONST0, []),
                ("i", GateType.NOT, ["k0"]),
                ("y", GateType.AND, ["a", "i"]),
            ],
            outputs=["y"],
        )
        swept = sweep_constants(netlist)
        assert swept.gates["i"].gate_type is GateType.CONST1
        assert swept.gates["y"].gate_type is GateType.BUF
        assert_equivalent(netlist, swept)

    def test_no_constants_is_identity(self, c17):
        swept = sweep_constants(c17)
        assert_equivalent(c17, swept)
        assert sorted(swept.gates) == sorted(c17.gates)


class TestRemoveDangling:
    def test_drops_unobservable_logic(self):
        netlist = from_gates(
            "d",
            inputs=["a", "b"],
            gates=[
                ("used", GateType.AND, ["a", "b"]),
                ("dead", GateType.OR, ["a", "b"]),
                ("dead2", GateType.NOT, ["dead"]),
            ],
            outputs=["used"],
        )
        pruned = remove_dangling(netlist)
        assert "dead" not in pruned
        assert "dead2" not in pruned
        assert_equivalent(netlist, pruned)

    def test_keeps_flip_flop_cones(self, s27):
        pruned = remove_dangling(s27)
        assert sorted(pruned.gates) == sorted(s27.gates)

    def test_keeps_interface_inputs(self):
        netlist = from_gates(
            "d",
            inputs=["a", "unused"],
            gates=[("y", GateType.BUF, ["a"])],
            outputs=["y"],
        )
        pruned = remove_dangling(netlist)
        assert "unused" in pruned.inputs


class TestDecompose:
    def test_wide_gates_become_two_input(self):
        netlist = from_gates(
            "w",
            inputs=["a", "b", "c", "d", "e"],
            gates=[("y", GateType.NAND, ["a", "b", "c", "d", "e"])],
            outputs=["y"],
        )
        decomposed = decompose_to_two_input(netlist)
        for gate in decomposed:
            if gate.gate_type is not GateType.INPUT:
                assert len(gate.inputs) <= 2
        assert decomposed.gates["y"].gate_type is GateType.NAND
        assert_equivalent(netlist, decomposed)

    @pytest.mark.parametrize(
        "kind", [GateType.AND, GateType.OR, GateType.XOR, GateType.NOR, GateType.XNOR]
    )
    def test_all_families(self, kind):
        netlist = from_gates(
            "w",
            inputs=["a", "b", "c", "d"],
            gates=[("y", kind, ["a", "b", "c", "d"])],
            outputs=["y"],
        )
        decomposed = decompose_to_two_input(netlist)
        assert_equivalent(netlist, decomposed)

    def test_narrow_gates_untouched(self, c17):
        decomposed = decompose_to_two_input(c17)
        assert sorted(decomposed.gates) == sorted(c17.gates)

    def test_random_circuits_equivalent(self):
        for seed in range(3):
            netlist, _ = full_scan(generate_netlist(tiny_spec(seed + 700, gates=30)))
            assert_equivalent(netlist, decompose_to_two_input(netlist), seed=seed)

    def test_composition_of_transforms(self):
        for seed in range(2):
            netlist, _ = full_scan(generate_netlist(tiny_spec(seed + 800, gates=30)))
            transformed = decompose_to_two_input(
                remove_dangling(sweep_constants(netlist))
            )
            assert_equivalent(netlist, transformed, seed=seed)
