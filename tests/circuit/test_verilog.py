"""Tests for structural Verilog I/O."""

import pytest

from repro.circuit import GateType, from_gates
from repro.circuit import verilog
from repro.circuit.verilog import VerilogParseError
from repro.sim import TestSet, output_words


SAMPLE = """
// a comment
module sample (a, b, clk_q, y);
  input a, b;
  output y;
  wire n1, n2;
  /* block
     comment */
  nand u1 (n1, a, b);
  not  u2 (n2, n1);
  dff  u3 (clk_q, n2);
  and  u4 (y, clk_q, a);
endmodule
"""


class TestParsing:
    def test_parse_sample(self):
        netlist = verilog.loads(SAMPLE)
        assert netlist.name == "sample"
        assert netlist.inputs == ["a", "b"]
        assert netlist.outputs == ["y"]
        assert netlist.gates["n1"].gate_type is GateType.NAND
        assert netlist.gates["clk_q"].gate_type is GateType.DFF
        assert netlist.flip_flops == ["clk_q"]

    def test_instance_label_optional(self):
        text = "module m (a, y);\ninput a;\noutput y;\nnot (y, a);\nendmodule\n"
        netlist = verilog.loads(text)
        assert netlist.gates["y"].gate_type is GateType.NOT

    def test_no_module(self):
        with pytest.raises(VerilogParseError, match="no module"):
            verilog.loads("wire x;")

    def test_single_port_instance_rejected(self):
        text = "module m (a, y);\ninput a;\noutput y;\nbuf (y);\nendmodule\n"
        with pytest.raises(VerilogParseError, match="output and inputs"):
            verilog.loads(text)

    def test_vector_nets_rejected(self):
        text = "module m (a, y);\ninput [3:0] a;\noutput y;\nbuf (y, a);\nendmodule\n"
        with pytest.raises(VerilogParseError, match="unsupported net name"):
            verilog.loads(text)


class TestRoundTrip:
    def test_functional_identity_c17(self, c17):
        again = verilog.loads(verilog.dumps(c17), "c17")
        tests = TestSet.exhaustive(c17.inputs)
        assert output_words(again, tests) == output_words(c17, tests)

    def test_structural_identity_s27(self, s27):
        again = verilog.loads(verilog.dumps(s27), "s27")
        assert sorted(again.gates) == sorted(s27.gates)
        for name, gate in s27.gates.items():
            assert again.gates[name].gate_type is gate.gate_type
            assert again.gates[name].inputs == gate.inputs
        assert again.outputs == s27.outputs

    def test_file_io(self, tmp_path, c17):
        path = tmp_path / "c17.v"
        verilog.dump(c17, path)
        assert verilog.load(path).stats() == c17.stats()

    def test_constants_not_serialisable(self):
        netlist = from_gates(
            "k",
            inputs=["a"],
            gates=[("k1", GateType.CONST1, []), ("y", GateType.AND, ["a", "k1"])],
            outputs=["y"],
        )
        with pytest.raises(Exception, match="constant"):
            verilog.dumps(netlist)

    def test_identifier_sanitised(self):
        netlist = from_gates(
            "8weird name!", ["a"], [("y", GateType.BUF, ["a"])], ["y"]
        )
        text = verilog.dumps(netlist)
        assert text.startswith("module m_8weird_name_")

    def test_bench_to_verilog_bridge(self, s27):
        """bench -> Netlist -> Verilog -> Netlist keeps behaviour (scan view)."""
        from repro.circuit import full_scan
        from repro.sim import simulate

        scanned, _ = full_scan(s27)
        again, _ = full_scan(verilog.loads(verilog.dumps(s27), "s27"))
        tests = TestSet.random(scanned.inputs, 32, seed=1)
        assert simulate(again, tests) == simulate(scanned, tests)
